//! Cost-based query optimizer.
//!
//! A Selinger-style planner: per-table access-path selection (sequential
//! scan vs B-tree index scan) followed by dynamic-programming join ordering
//! over left-deep trees, with hash, merge and index-nested-loop join
//! methods. All cost formulas use the knobs' planner constants
//! (`seq_page_cost`, `random_page_cost`, `cpu_*_cost`, `effective_cache_size`,
//! `work_mem`), so configuration changes move plan choices exactly the way
//! they do in PostgreSQL — the behaviour λ-Tune's generated configurations
//! exploit (paper §6.3: lowering `random_page_cost` and raising
//! `effective_cache_size` "motivate the query optimizer to use indexes more
//! often").

use crate::catalog::{Catalog, PAGE_SIZE};
use crate::knobs::KnobSet;
use crate::physical::IndexCatalog;
use crate::plan::{Plan, PlanNode, PlanOp};
use crate::stats::{extract, Estimator, FilterKind, QueryPredicates};
use lt_common::{ColumnId, TableId};
use lt_sql::ast::Query;
use std::collections::HashMap;

/// Maximum number of relations planned with exact DP; beyond this the
/// planner falls back to a greedy heuristic (PostgreSQL's GEQO analogue).
const DP_RELATION_LIMIT: usize = 13;

/// The query planner.
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
    knobs: &'a KnobSet,
    indexes: &'a IndexCatalog,
    est: Estimator<'a>,
}

/// One candidate access path / partial join result during planning.
#[derive(Debug, Clone)]
struct Candidate {
    node: PlanNode,
    /// Tables covered by this candidate.
    tables: u64,
}

impl<'a> Optimizer<'a> {
    /// Creates a planner over the given catalog, knobs and index set.
    /// `stats_seed` fixes the misestimation pattern of the underlying
    /// estimator (shared with the execution model for consistency).
    pub fn new(
        catalog: &'a Catalog,
        knobs: &'a KnobSet,
        indexes: &'a IndexCatalog,
        stats_seed: u64,
    ) -> Self {
        let quality = match knobs.dbms() {
            crate::knobs::Dbms::Postgres => {
                Estimator::quality_from_stats_target(knobs.get_f64("default_statistics_target"))
            }
            crate::knobs::Dbms::Mysql => 0.0,
        };
        let est = Estimator::new(catalog, stats_seed).with_stats_quality(quality);
        Optimizer {
            catalog,
            knobs,
            indexes,
            est,
        }
    }

    /// Plans a query. Queries referencing no known table produce a trivial
    /// constant plan.
    pub fn plan(&self, query: &Query) -> Plan {
        let preds = extract(query, self.catalog);
        self.plan_extracted(&preds)
    }

    /// Plans from already-extracted predicates (used by the facade to avoid
    /// re-extraction).
    pub fn plan_extracted(&self, preds: &QueryPredicates) -> Plan {
        if preds.tables.is_empty() {
            let root = PlanNode::leaf(PlanOp::Limit { rows: 1 }, 1.0, 0.01, 8.0);
            return Plan {
                root,
                join_costs: Vec::new(),
            };
        }
        let mut join_costs = Vec::new();
        let base: Vec<Candidate> = preds
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| Candidate {
                node: self.best_access_path(*t, preds),
                tables: 1 << i,
            })
            .collect();
        let joined = if preds.tables.len() <= DP_RELATION_LIMIT {
            self.dp_join(&base, preds, &mut join_costs)
        } else {
            self.greedy_join(base, preds, &mut join_costs)
        };
        let mut root = joined.node;
        root = self.maybe_gather(root);
        root = self.finalize(root, preds);
        Plan { root, join_costs }
    }

    // ---- access paths ----

    /// Planner's view of the fraction of random page fetches that miss the
    /// cache, derived from `effective_cache_size` relative to the database
    /// size (larger assumed cache → cheaper index scans).
    fn planner_miss_fraction(&self) -> f64 {
        let cache = self.knobs.planner_cache_bytes() as f64;
        let data = self.catalog.total_bytes() as f64;
        (1.0 - cache / (cache + data)).clamp(0.05, 1.0)
    }

    /// Effective per-page cost of a random fetch under the cache assumption.
    fn effective_random_page_cost(&self) -> f64 {
        let spc = self.knobs.seq_page_cost();
        let rpc = self.knobs.random_page_cost();
        spc + (rpc - spc).max(0.0) * self.planner_miss_fraction()
    }

    fn seq_scan_cost(&self, table: TableId) -> f64 {
        let t = self.catalog.table(table);
        let pages = t.pages(self.catalog) as f64;
        let rows = t.rows as f64;
        pages * self.knobs.seq_page_cost() + rows * self.knobs.cpu_tuple_cost()
    }

    fn index_scan_cost(&self, table: TableId, selectivity: f64) -> f64 {
        let t = self.catalog.table(table);
        let rows = t.rows as f64;
        let pages = t.pages(self.catalog) as f64;
        let fetched_rows = (selectivity * rows).max(1.0);
        // Heap pages touched: one random fetch per row, capped by the heap.
        let heap_pages = fetched_rows.min(pages);
        let descent = (rows.max(2.0)).log2() * self.knobs.cpu_index_tuple_cost() * 10.0;
        descent
            + fetched_rows * self.knobs.cpu_index_tuple_cost()
            + heap_pages * self.effective_random_page_cost()
            + fetched_rows * self.knobs.cpu_tuple_cost()
    }

    /// Chooses the cheapest access path for one base table given its filter
    /// terms and the available indexes.
    fn best_access_path(&self, table: TableId, preds: &QueryPredicates) -> PlanNode {
        let t = self.catalog.table(table);
        let rows = t.rows as f64;
        let width = t.row_width(self.catalog) as f64;
        let empty = Vec::new();
        let terms = preds.filters.get(&table).unwrap_or(&empty);
        let sel = self.est.estimated_table_selectivity(terms);
        let out_rows = (rows * sel).max(1.0);

        let seq = PlanNode::leaf(
            PlanOp::SeqScan {
                table,
                selectivity: sel,
            },
            out_rows,
            self.seq_scan_cost(table),
            width,
        );

        // An index is usable when its leading column carries a sargable
        // filter; the index lookup covers that term's selectivity and the
        // remaining terms filter residually.
        let mut best = seq;
        for term in terms {
            if !sargable(term.kind) {
                continue;
            }
            let Some(index) = self.indexes.with_leading_column(term.column) else {
                continue;
            };
            if index.table != table {
                continue;
            }
            let term_sel = self.est.estimated_table_selectivity(&[*term]);
            let cost = self.index_scan_cost(table, term_sel);
            if cost < best.est_cost {
                best = PlanNode::leaf(
                    PlanOp::IndexScan {
                        table,
                        index: index.id,
                        selectivity: sel,
                    },
                    out_rows,
                    cost,
                    width,
                );
            }
        }
        best
    }

    // ---- join planning ----

    /// Join edges connecting a covered set to a new base table; returns
    /// every `(outer key, inner key)` pair plus the combined selectivity of
    /// all connecting edges.
    fn connection(
        &self,
        covered: u64,
        next: usize,
        preds: &QueryPredicates,
    ) -> Option<(Vec<(ColumnId, ColumnId)>, f64)> {
        let next_table = preds.tables[next];
        let mut keys: Vec<(ColumnId, ColumnId)> = Vec::new();
        let mut sel = 1.0;
        for edge in &preds.joins {
            let lt = self.catalog.column(edge.left).table;
            let rt = self.catalog.column(edge.right).table;
            let l_idx = preds.tables.iter().position(|t| *t == lt);
            let r_idx = preds.tables.iter().position(|t| *t == rt);
            let (Some(li), Some(ri)) = (l_idx, r_idx) else {
                continue;
            };
            let l_in = covered & (1 << li) != 0;
            let r_in = covered & (1 << ri) != 0;
            if l_in && rt == next_table {
                keys.push((edge.left, edge.right));
                sel *= self.est.estimated_join_selectivity(*edge);
            } else if r_in && lt == next_table {
                keys.push((edge.right, edge.left));
                sel *= self.est.estimated_join_selectivity(*edge);
            }
        }
        if keys.is_empty() {
            None
        } else {
            Some((keys, sel))
        }
    }

    /// Costs the best join method for `outer ⋈ inner` and builds the node.
    fn join_node(
        &self,
        outer: &PlanNode,
        inner: &PlanNode,
        keys: Option<(Vec<(ColumnId, ColumnId)>, f64)>,
        join_costs: &mut Vec<(ColumnId, ColumnId, f64)>,
    ) -> PlanNode {
        let out_width = outer.width + inner.width;
        let Some((keys, sel)) = keys else {
            // Cartesian product: rows multiply; heavily penalized.
            let rows = (outer.est_rows * inner.est_rows).max(1.0);
            let cost = outer.est_cost + inner.est_cost + rows * self.knobs.cpu_tuple_cost() * 4.0;
            return PlanNode {
                op: PlanOp::CrossJoin,
                children: vec![outer.clone(), inner.clone()],
                est_rows: rows,
                est_cost: cost,
                width: out_width,
            };
        };
        let (okey, ikey) = keys[0];
        let out_rows = (outer.est_rows * inner.est_rows * sel).max(1.0);
        let cpu_op = self.knobs.cpu_tuple_cost() * 0.25;

        // Hash join: build on the smaller input (we put the build side
        // second, matching PlanOp's convention).
        let (probe, build) = if outer.est_rows >= inner.est_rows {
            (outer, inner)
        } else {
            (inner, outer)
        };
        let build_bytes = build.est_rows * build.width;
        let spills = build_bytes > self.knobs.work_mem_bytes() as f64;
        let mut hash_cost = probe.est_cost
            + build.est_cost
            + build.est_rows * cpu_op * 2.0
            + probe.est_rows * cpu_op
            + out_rows * self.knobs.cpu_tuple_cost() * 0.5;
        if spills {
            let spill_pages = (build_bytes + probe.est_rows * probe.width) / PAGE_SIZE as f64;
            hash_cost += 2.0 * spill_pages * self.knobs.seq_page_cost();
        }

        // Index nested loop: inner side must be a bare scan of a table with
        // an index on the inner join key.
        let nl = self.index_nestloop(outer, inner, &keys, out_rows, out_width);

        // Merge join: sort both inputs (ignoring interesting orders).
        let sort_cost = |n: &PlanNode| {
            let r = n.est_rows.max(2.0);
            r * r.log2() * cpu_op * 2.0
        };
        let merge_cost = outer.est_cost
            + inner.est_cost
            + sort_cost(outer)
            + sort_cost(inner)
            + (outer.est_rows + inner.est_rows) * cpu_op
            + out_rows * self.knobs.cpu_tuple_cost() * 0.5;

        let hash_node = PlanNode {
            op: PlanOp::HashJoin {
                keys: keys.clone(),
                spills,
            },
            children: vec![probe.clone(), build.clone()],
            est_rows: out_rows,
            est_cost: hash_cost,
            width: out_width,
        };
        let merge_node = PlanNode {
            op: PlanOp::MergeJoin { keys: keys.clone() },
            children: vec![outer.clone(), inner.clone()],
            est_rows: out_rows,
            est_cost: merge_cost,
            width: out_width,
        };

        let mut best = if hash_cost <= merge_cost {
            hash_node
        } else {
            merge_node
        };
        if let Some(nl_node) = nl {
            if nl_node.est_cost < best.est_cost {
                best = nl_node;
            }
        }
        let incremental = (best.est_cost - outer.est_cost - inner.est_cost).max(0.0);
        for (l, r) in &keys {
            join_costs.push((*l, *r, incremental));
        }
        let _ = (okey, ikey);
        best
    }

    fn index_nestloop(
        &self,
        outer: &PlanNode,
        inner: &PlanNode,
        keys: &[(ColumnId, ColumnId)],
        out_rows: f64,
        out_width: f64,
    ) -> Option<PlanNode> {
        let (_okey, ikey) = keys[0];
        // Inner must be a base-table scan (not an intermediate join).
        let inner_table = match inner.op {
            PlanOp::SeqScan { table, .. } | PlanOp::IndexScan { table, .. } => table,
            _ => return None,
        };
        if self.catalog.column(ikey).table != inner_table {
            return None;
        }
        let index = self.indexes.with_leading_column(ikey)?;
        let t = self.catalog.table(inner_table);
        let inner_rows = t.rows as f64;
        let matches_per_probe = (inner_rows / self.catalog.column(ikey).ndv.max(1.0)).max(1.0);
        let descent = (inner_rows.max(2.0)).log2() * self.knobs.cpu_index_tuple_cost() * 10.0;
        let per_probe = descent
            + matches_per_probe
                * (self.knobs.cpu_index_tuple_cost()
                    + self.effective_random_page_cost()
                    + self.knobs.cpu_tuple_cost());
        let cost = outer.est_cost + outer.est_rows * per_probe;
        let lookup_sel = (matches_per_probe / inner_rows).clamp(1e-12, 1.0);
        let inner_leaf = PlanNode::leaf(
            PlanOp::IndexScan {
                table: inner_table,
                index: index.id,
                selectivity: lookup_sel,
            },
            matches_per_probe,
            per_probe,
            inner.width,
        );
        Some(PlanNode {
            op: PlanOp::NestLoopJoin {
                keys: keys.to_vec(),
                inner_index: Some(index.id),
            },
            children: vec![outer.clone(), inner_leaf],
            est_rows: out_rows,
            est_cost: cost,
            width: out_width,
        })
    }

    /// Exact DP over connected subsets (left-deep trees).
    fn dp_join(
        &self,
        base: &[Candidate],
        preds: &QueryPredicates,
        join_costs: &mut Vec<(ColumnId, ColumnId, f64)>,
    ) -> Candidate {
        let n = base.len();
        if n == 1 {
            return base[0].clone();
        }
        let mut best: HashMap<u64, Candidate> = HashMap::new();
        for c in base {
            best.insert(c.tables, c.clone());
        }
        for size in 2..=n {
            for mask in 1u64..(1 << n) {
                if mask.count_ones() as usize != size {
                    continue;
                }
                let mut best_for_mask: Option<Candidate> = None;
                for (next, base_entry) in base.iter().enumerate() {
                    if mask & (1 << next) == 0 {
                        continue;
                    }
                    let rest = mask & !(1 << next);
                    let Some(left) = best.get(&rest) else {
                        continue;
                    };
                    // Cross joins are never enumerated here: a subset with no
                    // connecting edge gets no DP entry, so a connected join
                    // graph can only produce edge-linked plans. Disconnected
                    // graphs are handled after the DP by cross-joining the
                    // per-component winners.
                    let Some(keys) = self.connection(rest, next, preds) else {
                        continue;
                    };
                    let mut scratch = Vec::new();
                    let node =
                        self.join_node(&left.node, &base_entry.node, Some(keys), &mut scratch);
                    if best_for_mask
                        .as_ref()
                        .map(|b| node.est_cost < b.node.est_cost)
                        .unwrap_or(true)
                    {
                        best_for_mask = Some(Candidate { node, tables: mask });
                    }
                }
                if let Some(b) = best_for_mask {
                    best.insert(mask, b);
                }
            }
        }
        let full = (1u64 << n) - 1;
        let winner = match best.remove(&full) {
            Some(w) => w,
            None => {
                // The join graph is disconnected: every connected component
                // has a DP winner (single tables are base entries), and the
                // only way to combine components is a Cartesian product.
                let mut comps = self.components(n, preds).into_iter();
                let first = comps.next().expect("at least one component");
                let mut acc = best.remove(&first).expect("component winner exists");
                for comp in comps {
                    let right = best.remove(&comp).expect("component winner exists");
                    let mut scratch = Vec::new();
                    let node = self.join_node(&acc.node, &right.node, None, &mut scratch);
                    acc = Candidate {
                        node,
                        tables: acc.tables | comp,
                    };
                }
                acc
            }
        };
        self.collect_join_costs(&winner.node, preds, join_costs);
        winner
    }

    /// Connected components of the join graph, as bitmasks over
    /// `preds.tables` indices, ordered by their lowest table index.
    fn components(&self, n: usize, preds: &QueryPredicates) -> Vec<u64> {
        let mut adj = vec![0u64; n];
        for edge in &preds.joins {
            let lt = self.catalog.column(edge.left).table;
            let rt = self.catalog.column(edge.right).table;
            let li = preds.tables.iter().position(|t| *t == lt);
            let ri = preds.tables.iter().position(|t| *t == rt);
            let (Some(li), Some(ri)) = (li, ri) else {
                continue;
            };
            if li != ri {
                adj[li] |= 1 << ri;
                adj[ri] |= 1 << li;
            }
        }
        let mut seen = 0u64;
        let mut comps = Vec::new();
        for start in 0..n {
            if seen & (1 << start) != 0 {
                continue;
            }
            let mut comp = 1u64 << start;
            loop {
                let mut grown = comp;
                for (i, a) in adj.iter().enumerate() {
                    if comp & (1 << i) != 0 {
                        grown |= a;
                    }
                }
                if grown == comp {
                    break;
                }
                comp = grown;
            }
            seen |= comp;
            comps.push(comp);
        }
        comps
    }

    /// Greedy fallback for very wide joins: repeatedly merge the pair with
    /// the smallest result cost.
    fn greedy_join(
        &self,
        mut cands: Vec<Candidate>,
        preds: &QueryPredicates,
        join_costs: &mut Vec<(ColumnId, ColumnId, f64)>,
    ) -> Candidate {
        while cands.len() > 1 {
            // A connected pair always beats a cross join, whatever the
            // costs; cross joins only happen once the remaining candidates
            // are mutually disconnected (separate join-graph components).
            let mut best: Option<(usize, usize, PlanNode, bool)> = None;
            for i in 0..cands.len() {
                for j in 0..cands.len() {
                    if i == j {
                        continue;
                    }
                    let keys = self.connection_between(cands[i].tables, cands[j].tables, preds);
                    let connected = keys.is_some();
                    if !connected && best.as_ref().is_some_and(|(_, _, _, c)| *c) {
                        continue;
                    }
                    let mut scratch = Vec::new();
                    let node = self.join_node(&cands[i].node, &cands[j].node, keys, &mut scratch);
                    let better = match &best {
                        None => true,
                        Some((_, _, b, best_conn)) => {
                            (connected && !best_conn)
                                || (connected == *best_conn && node.est_cost < b.est_cost)
                        }
                    };
                    if better {
                        best = Some((i, j, node, connected));
                    }
                }
            }
            let (i, j, node, _) = best.expect("at least one pair exists");
            let tables = cands[i].tables | cands[j].tables;
            let (lo, hi) = if i < j { (i, j) } else { (j, i) };
            cands.swap_remove(hi);
            cands.swap_remove(lo);
            cands.push(Candidate { node, tables });
        }
        let winner = cands.pop().expect("one candidate remains");
        self.collect_join_costs(&winner.node, preds, join_costs);
        winner
    }

    fn connection_between(
        &self,
        left_set: u64,
        right_set: u64,
        preds: &QueryPredicates,
    ) -> Option<(Vec<(ColumnId, ColumnId)>, f64)> {
        let mut keys: Vec<(ColumnId, ColumnId)> = Vec::new();
        let mut sel = 1.0;
        for edge in &preds.joins {
            let lt = self.catalog.column(edge.left).table;
            let rt = self.catalog.column(edge.right).table;
            let li = preds.tables.iter().position(|t| *t == lt);
            let ri = preds.tables.iter().position(|t| *t == rt);
            let (Some(li), Some(ri)) = (li, ri) else {
                continue;
            };
            let l_left = left_set & (1 << li) != 0;
            let r_right = right_set & (1 << ri) != 0;
            let l_right = right_set & (1 << li) != 0;
            let r_left = left_set & (1 << ri) != 0;
            if l_left && r_right {
                keys.push((edge.left, edge.right));
                sel *= self.est.estimated_join_selectivity(*edge);
            } else if l_right && r_left {
                keys.push((edge.right, edge.left));
                sel *= self.est.estimated_join_selectivity(*edge);
            }
        }
        if keys.is_empty() {
            None
        } else {
            Some((keys, sel))
        }
    }

    /// Re-derives per-join-condition incremental costs from the final tree
    /// (the DP explores many candidates; only the winner's joins count).
    fn collect_join_costs(
        &self,
        node: &PlanNode,
        _preds: &QueryPredicates,
        out: &mut Vec<(ColumnId, ColumnId, f64)>,
    ) {
        node.visit(&mut |n| {
            let child_cost: f64 = n.children.iter().map(|c| c.est_cost).sum();
            match &n.op {
                PlanOp::HashJoin { keys, .. }
                | PlanOp::MergeJoin { keys }
                | PlanOp::NestLoopJoin { keys, .. } => {
                    let incremental = (n.est_cost - child_cost).max(0.0);
                    for (l, r) in keys {
                        out.push((*l, *r, incremental));
                    }
                }
                _ => {}
            }
        });
    }

    // ---- post-join operators ----

    /// Wraps the plan in a Gather when parallel workers are configured and
    /// the input is large enough to benefit (PostgreSQL's
    /// `min_parallel_table_scan_size` analogue).
    fn maybe_gather(&self, node: PlanNode) -> PlanNode {
        let workers = self.knobs.parallel_workers();
        if workers == 0 {
            return node;
        }
        let biggest_pages = node
            .scanned_tables()
            .iter()
            .map(|t| self.catalog.table(*t).pages(self.catalog))
            .max()
            .unwrap_or(0);
        if biggest_pages < 1024 {
            return node;
        }
        let speedup = 1.0 + 0.7 * workers as f64;
        let est_rows = node.est_rows;
        let width = node.width;
        let cost = node.est_cost / speedup + 100.0 * workers as f64 * self.knobs.cpu_tuple_cost();
        PlanNode {
            op: PlanOp::Gather { workers },
            children: vec![node],
            est_rows,
            est_cost: cost,
            width,
        }
    }

    fn finalize(&self, mut node: PlanNode, preds: &QueryPredicates) -> PlanNode {
        let cpu_op = self.knobs.cpu_tuple_cost() * 0.25;
        if preds.has_aggregates || preds.group_by_columns > 0 {
            let grouped = preds.group_by_columns > 0;
            let in_rows = node.est_rows;
            let out_rows = if grouped {
                (in_rows * 0.1).max(1.0)
            } else {
                1.0
            };
            let cost = node.est_cost + in_rows * cpu_op * 2.0;
            let width = node.width.min(64.0);
            node = PlanNode {
                op: PlanOp::Aggregate { grouped },
                children: vec![node],
                est_rows: out_rows,
                est_cost: cost,
                width,
            };
        }
        if preds.order_by_columns > 0 {
            let rows = node.est_rows.max(2.0);
            let bytes = rows * node.width;
            let spills = bytes > self.knobs.work_mem_bytes() as f64;
            let mut cost = node.est_cost + rows * rows.log2() * cpu_op;
            if spills {
                cost += 2.0 * (bytes / PAGE_SIZE as f64) * self.knobs.seq_page_cost();
            }
            let est_rows = node.est_rows;
            let width = node.width;
            node = PlanNode {
                op: PlanOp::Sort { spills },
                children: vec![node],
                est_rows,
                est_cost: cost,
                width,
            };
        }
        if let Some(limit) = preds.limit {
            let est_rows = node.est_rows.min(limit as f64);
            let cost = node.est_cost;
            let width = node.width;
            node = PlanNode {
                op: PlanOp::Limit { rows: limit },
                children: vec![node],
                est_rows,
                est_cost: cost,
                width,
            };
        }
        node
    }
}

/// Filter kinds an index lookup can serve.
fn sargable(kind: FilterKind) -> bool {
    matches!(
        kind,
        FilterKind::Equality
            | FilterKind::Range
            | FilterKind::Between
            | FilterKind::InList(_)
            | FilterKind::LikePrefix
            | FilterKind::SemiJoin
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knobs::{Dbms, KnobSet};
    use lt_sql::parse_query;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table("lineitem", 6_000_000)
            .primary_key("l_orderkey", 8)
            .foreign_key("l_partkey", 8, 200_000.0)
            .column("l_shipdate", 4, 2_500.0)
            .column("l_extendedprice", 8, 900_000.0)
            .finish();
        c.add_table("orders", 1_500_000)
            .primary_key("o_orderkey", 8)
            .foreign_key("o_custkey", 8, 150_000.0)
            .column("o_orderdate", 4, 2_400.0)
            .finish();
        c.add_table("customer", 150_000)
            .primary_key("c_custkey", 8)
            .column("c_mktsegment", 10, 5.0)
            .finish();
        c
    }

    fn plan_sql(c: &Catalog, knobs: &KnobSet, idx: &IndexCatalog, sql: &str) -> Plan {
        let q = parse_query(sql).unwrap();
        Optimizer::new(c, knobs, idx, 42).plan(&q)
    }

    #[test]
    fn single_table_seq_scan_by_default() {
        let c = catalog();
        let knobs = KnobSet::defaults(Dbms::Postgres);
        let idx = IndexCatalog::new();
        let p = plan_sql(
            &c,
            &knobs,
            &idx,
            "select * from customer where c_mktsegment = 'A'",
        );
        assert!(
            matches!(p.root.op, PlanOp::SeqScan { .. }),
            "{}",
            p.explain()
        );
    }

    #[test]
    fn index_scan_when_selective_and_cheap_random_io() {
        let c = catalog();
        let mut knobs = KnobSet::defaults(Dbms::Postgres);
        knobs.set_text("random_page_cost", "1.1").unwrap();
        knobs.set_text("effective_cache_size", "45GB").unwrap();
        let mut idx = IndexCatalog::new();
        let col = c.resolve_column(None, "o_orderkey").unwrap();
        let t = c.table_by_name("orders").unwrap();
        idx.add(t, vec![col], None);
        let p = plan_sql(
            &c,
            &knobs,
            &idx,
            "select * from orders where o_orderkey = 42",
        );
        // Highly selective equality + index + cheap random IO ⇒ index scan.
        let has_index_scan = p.root.used_indexes().len() == 1;
        assert!(has_index_scan, "{}", p.explain());
    }

    #[test]
    fn high_random_page_cost_discourages_index() {
        let c = catalog();
        let mut knobs = KnobSet::defaults(Dbms::Postgres);
        knobs.set_text("random_page_cost", "1000").unwrap();
        knobs.set_text("effective_cache_size", "8kB").unwrap();
        let mut idx = IndexCatalog::new();
        let col = c.resolve_column(None, "l_shipdate").unwrap();
        let t = c.table_by_name("lineitem").unwrap();
        idx.add(t, vec![col], None);
        // A between filter touches ~12% of rows; with absurd random IO cost
        // the seq scan must win.
        let p = plan_sql(
            &c,
            &knobs,
            &idx,
            "select * from lineitem where l_shipdate between date '1994-01-01' and date '1994-03-01'",
        );
        assert!(p.root.used_indexes().is_empty(), "{}", p.explain());
    }

    #[test]
    fn join_plan_covers_all_tables() {
        let c = catalog();
        let knobs = KnobSet::defaults(Dbms::Postgres);
        let idx = IndexCatalog::new();
        let p = plan_sql(
            &c,
            &knobs,
            &idx,
            "select * from lineitem l, orders o, customer cu \
             where l.l_orderkey = o.o_orderkey and o.o_custkey = cu.c_custkey",
        );
        let tables = p.root.scanned_tables();
        assert_eq!(tables.len(), 3, "{}", p.explain());
        // Two join conditions → two join cost entries.
        assert_eq!(p.join_costs.len(), 2, "{:?}", p.join_costs);
    }

    #[test]
    fn work_mem_affects_spill_flag() {
        let c = catalog();
        let mut small = KnobSet::defaults(Dbms::Postgres);
        small.set_text("work_mem", "64kB").unwrap();
        let mut big = KnobSet::defaults(Dbms::Postgres);
        big.set_text("work_mem", "8GB").unwrap();
        let idx = IndexCatalog::new();
        let sql = "select * from lineitem, orders where l_orderkey = o_orderkey";
        let p_small = plan_sql(&c, &small, &idx, sql);
        let p_big = plan_sql(&c, &big, &idx, sql);
        let spill_of = |p: &Plan| {
            let mut spilled = false;
            p.root.visit(&mut |n| {
                if let PlanOp::HashJoin { spills, .. } = n.op {
                    spilled |= spills;
                }
            });
            spilled
        };
        // With 8GB of work memory nothing spills; the big plan must also be
        // cheaper.
        assert!(!spill_of(&p_big), "{}", p_big.explain());
        assert!(p_big.total_cost() <= p_small.total_cost());
    }

    #[test]
    fn aggregates_sort_and_limit_are_added() {
        let c = catalog();
        let knobs = KnobSet::defaults(Dbms::Postgres);
        let idx = IndexCatalog::new();
        let p = plan_sql(
            &c,
            &knobs,
            &idx,
            "select o_orderdate, count(*) from orders group by o_orderdate \
             order by o_orderdate limit 10",
        );
        let text = p.explain();
        assert!(text.contains("Limit"), "{text}");
        assert!(text.contains("Sort"), "{text}");
        assert!(text.contains("Aggregate"), "{text}");
    }

    #[test]
    fn parallel_workers_add_gather() {
        let c = catalog();
        let mut knobs = KnobSet::defaults(Dbms::Postgres);
        knobs
            .set_text("max_parallel_workers_per_gather", "4")
            .unwrap();
        let idx = IndexCatalog::new();
        let p = plan_sql(&c, &knobs, &idx, "select count(*) from lineitem");
        assert!(p.explain().contains("Gather"), "{}", p.explain());

        let mut no_par = KnobSet::defaults(Dbms::Postgres);
        no_par
            .set_text("max_parallel_workers_per_gather", "0")
            .unwrap();
        let p2 = plan_sql(&c, &no_par, &idx, "select count(*) from lineitem");
        assert!(!p2.explain().contains("Gather"), "{}", p2.explain());
    }

    #[test]
    fn nestloop_with_index_for_fk_join() {
        let c = catalog();
        let mut knobs = KnobSet::defaults(Dbms::Postgres);
        knobs.set_text("random_page_cost", "1.1").unwrap();
        knobs.set_text("effective_cache_size", "45GB").unwrap();
        let mut idx = IndexCatalog::new();
        let t = c.table_by_name("customer").unwrap();
        let col = c.resolve_column(None, "c_custkey").unwrap();
        idx.add(t, vec![col], None);
        // Small filtered orders side probing customer by PK: NL-index wins.
        let p = plan_sql(
            &c,
            &knobs,
            &idx,
            "select * from orders, customer where o_custkey = c_custkey \
             and o_orderdate = date '1995-01-01'",
        );
        let mut has_nl = false;
        p.root.visit(&mut |n| {
            if matches!(
                n.op,
                PlanOp::NestLoopJoin {
                    inner_index: Some(_),
                    ..
                }
            ) {
                has_nl = true;
            }
        });
        assert!(has_nl, "{}", p.explain());
    }

    #[test]
    fn query_without_known_tables_yields_trivial_plan() {
        let c = catalog();
        let knobs = KnobSet::defaults(Dbms::Postgres);
        let idx = IndexCatalog::new();
        let p = plan_sql(&c, &knobs, &idx, "select * from unknown_table");
        assert_eq!(p.root.node_count(), 1);
    }

    #[test]
    fn plans_are_deterministic() {
        let c = catalog();
        let knobs = KnobSet::defaults(Dbms::Postgres);
        let idx = IndexCatalog::new();
        let sql = "select * from lineitem, orders, customer \
                   where l_orderkey = o_orderkey and o_custkey = c_custkey";
        let p1 = plan_sql(&c, &knobs, &idx, sql);
        let p2 = plan_sql(&c, &knobs, &idx, sql);
        assert_eq!(p1, p2);
    }
}
