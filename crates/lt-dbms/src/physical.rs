//! Physical design: secondary B-tree indexes.
//!
//! Indexes are the physical-design dimension λ-Tune tunes alongside system
//! parameters. The [`IndexCatalog`] tracks which indexes exist at any point
//! in time; the evaluator creates them lazily (paper §5.1) and drops them
//! when switching configurations.

use crate::catalog::{Catalog, PAGE_SIZE};
use lt_common::{ColumnId, Fingerprint, FxHasher, IndexId, TableId};
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// A (materialized or hypothetical) B-tree index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Index {
    /// Catalog-wide id (assigned by the [`IndexCatalog`]).
    pub id: IndexId,
    /// Indexed table.
    pub table: TableId,
    /// Key columns, leading column first.
    pub columns: Vec<ColumnId>,
    /// Index name (generated when the script does not provide one).
    pub name: String,
}

impl Index {
    /// The leading key column (drives lookup applicability).
    pub fn leading_column(&self) -> ColumnId {
        self.columns[0]
    }

    /// Estimated size of the index in pages (key width + 12-byte overhead
    /// per entry, PostgreSQL-like fill factor of 90%).
    pub fn pages(&self, catalog: &Catalog) -> u64 {
        let rows = catalog.table(self.table).rows;
        let key_width: u64 = self
            .columns
            .iter()
            .map(|c| catalog.column(*c).width as u64)
            .sum();
        let entry = key_width + 12;
        let per_page = ((PAGE_SIZE * 9 / 10) / entry.max(1)).max(1);
        rows.div_ceil(per_page)
    }

    /// Index size in bytes.
    pub fn bytes(&self, catalog: &Catalog) -> u64 {
        self.pages(catalog) * PAGE_SIZE
    }
}

/// The set of indexes that currently exist (or are being considered
/// hypothetically, for what-if optimization à la Dexter/DB2 Advisor).
#[derive(Debug, Clone, Default)]
pub struct IndexCatalog {
    indexes: BTreeMap<IndexId, Index>,
    next_id: u32,
    /// Bumped on every mutation; invalidates plan-cache entries keyed on the
    /// previous physical design.
    epoch: u64,
    /// Content fingerprint over (table, key columns) of every index, kept in
    /// sync on mutation. Two catalogs with identical index sets share a
    /// fingerprint, so what-if planning against a hypothetical catalog that
    /// matches the materialized one re-hits the same cache entries.
    fingerprint: Fingerprint,
}

impl PartialEq for IndexCatalog {
    fn eq(&self, other: &Self) -> bool {
        // Equality is content equality; the epoch is bookkeeping.
        self.indexes == other.indexes
    }
}

impl IndexCatalog {
    /// Empty index catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an index over `columns` of `table`. Returns the existing id
    /// if an identical index (same table, same key columns) already exists —
    /// creating a duplicate index is a no-op, like `IF NOT EXISTS`.
    pub fn add(&mut self, table: TableId, columns: Vec<ColumnId>, name: Option<String>) -> IndexId {
        assert!(!columns.is_empty(), "an index needs at least one column");
        if let Some(existing) = self.find(table, &columns) {
            return existing;
        }
        let id = IndexId(self.next_id);
        self.next_id += 1;
        let name = name.unwrap_or_else(|| format!("idx_{}_{}", table.0, id.0));
        self.indexes.insert(
            id,
            Index {
                id,
                table,
                columns,
                name,
            },
        );
        self.touch();
        id
    }

    /// Monotone mutation counter: any `add`/`remove`/`clear` that changes
    /// the catalog bumps it, signalling plan-cache invalidation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Fingerprint of the current index contents (see field docs).
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// Canonical fingerprint of the indexes on the given tables only.
    ///
    /// Plans depend solely on the indexes over the query's own tables, so
    /// keying the plan cache on this (rather than the whole-catalog
    /// fingerprint) stops lazy index creation on *unrelated* tables between
    /// tuning rounds from invalidating every cached plan. Unlike the global
    /// fingerprint this one hashes the index *ids* too: cached plans embed
    /// [`IndexId`]s, so a key match must guarantee that every id resolves to
    /// the same physical index. Ids are stable once assigned, so growing the
    /// catalog elsewhere still leaves this fingerprint untouched.
    pub fn fingerprint_for_tables(&self, tables: &[TableId]) -> Fingerprint {
        let mut h = FxHasher::new();
        for idx in self.indexes.values().filter(|i| tables.contains(&i.table)) {
            idx.id.hash(&mut h);
            idx.table.hash(&mut h);
            idx.columns.hash(&mut h);
        }
        Fingerprint(h.finish())
    }

    fn touch(&mut self) {
        self.epoch += 1;
        let mut h = FxHasher::new();
        for idx in self.indexes.values() {
            idx.table.hash(&mut h);
            idx.columns.hash(&mut h);
        }
        self.fingerprint = Fingerprint(h.finish());
    }

    /// Finds an index with exactly these key columns.
    pub fn find(&self, table: TableId, columns: &[ColumnId]) -> Option<IndexId> {
        self.indexes
            .values()
            .find(|i| i.table == table && i.columns == columns)
            .map(|i| i.id)
    }

    /// Removes an index. Returns whether it existed.
    pub fn remove(&mut self, id: IndexId) -> bool {
        let existed = self.indexes.remove(&id).is_some();
        if existed {
            self.touch();
        }
        existed
    }

    /// Drops every index.
    pub fn clear(&mut self) {
        if !self.indexes.is_empty() {
            self.indexes.clear();
            self.touch();
        }
    }

    /// Looks up an index by id.
    pub fn get(&self, id: IndexId) -> Option<&Index> {
        self.indexes.get(&id)
    }

    /// All indexes, in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Index> {
        self.indexes.values()
    }

    /// Number of indexes.
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// True when no index exists.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    /// Indexes on a given table.
    pub fn on_table(&self, table: TableId) -> impl Iterator<Item = &Index> {
        self.indexes.values().filter(move |i| i.table == table)
    }

    /// The best index whose *leading* column is `column`, if any.
    pub fn with_leading_column(&self, column: ColumnId) -> Option<&Index> {
        self.indexes.values().find(|i| i.leading_column() == column)
    }

    /// Total size of all indexes in bytes.
    pub fn total_bytes(&self, catalog: &Catalog) -> u64 {
        self.indexes.values().map(|i| i.bytes(catalog)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table("orders", 1_500_000)
            .primary_key("o_orderkey", 8)
            .foreign_key("o_custkey", 8, 100_000.0)
            .finish();
        c.add_table("lineitem", 6_000_000)
            .primary_key("l_orderkey", 8)
            .finish();
        c
    }

    #[test]
    fn add_and_find() {
        let c = catalog();
        let t = c.table_by_name("orders").unwrap();
        let col = c.resolve_column(None, "o_custkey").unwrap();
        let mut idx = IndexCatalog::new();
        let id = idx.add(t, vec![col], None);
        assert_eq!(idx.find(t, &[col]), Some(id));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get(id).unwrap().leading_column(), col);
    }

    #[test]
    fn duplicate_add_is_idempotent() {
        let c = catalog();
        let t = c.table_by_name("orders").unwrap();
        let col = c.resolve_column(None, "o_custkey").unwrap();
        let mut idx = IndexCatalog::new();
        let a = idx.add(t, vec![col], None);
        let b = idx.add(t, vec![col], Some("other_name".into()));
        assert_eq!(a, b);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn remove_and_clear() {
        let c = catalog();
        let t = c.table_by_name("orders").unwrap();
        let k = c.resolve_column(None, "o_orderkey").unwrap();
        let f = c.resolve_column(None, "o_custkey").unwrap();
        let mut idx = IndexCatalog::new();
        let a = idx.add(t, vec![k], None);
        idx.add(t, vec![f], None);
        assert!(idx.remove(a));
        assert!(!idx.remove(a));
        assert_eq!(idx.len(), 1);
        idx.clear();
        assert!(idx.is_empty());
    }

    #[test]
    fn index_size_scales_with_rows() {
        let c = catalog();
        let t = c.table_by_name("orders").unwrap();
        let k = c.resolve_column(None, "o_orderkey").unwrap();
        let mut idx = IndexCatalog::new();
        let id = idx.add(t, vec![k], None);
        let pages = idx.get(id).unwrap().pages(&c);
        // 8-byte key + 12 overhead = 20 bytes/entry; ~368 entries/page.
        assert!(pages > 3_000 && pages < 5_000, "pages={pages}");
    }

    #[test]
    fn epoch_bumps_on_every_mutation_and_fingerprint_tracks_content() {
        let c = catalog();
        let t = c.table_by_name("orders").unwrap();
        let k = c.resolve_column(None, "o_orderkey").unwrap();
        let mut idx = IndexCatalog::new();
        let e0 = idx.epoch();
        let f0 = idx.fingerprint();
        let id = idx.add(t, vec![k], None);
        assert!(idx.epoch() > e0);
        assert_ne!(idx.fingerprint(), f0);
        let f1 = idx.fingerprint();
        // Duplicate add is a no-op: neither epoch nor fingerprint moves.
        let e1 = idx.epoch();
        idx.add(t, vec![k], None);
        assert_eq!(idx.epoch(), e1);
        // Remove then re-add: epoch keeps climbing, but the content
        // fingerprint returns to its previous value.
        idx.remove(id);
        assert!(idx.epoch() > e1);
        assert_eq!(idx.fingerprint(), f0);
        idx.add(t, vec![k], None);
        assert_eq!(idx.fingerprint(), f1);
        // An independent catalog with the same content fingerprints equal.
        let mut other = IndexCatalog::new();
        other.add(t, vec![k], Some("different_name".into()));
        assert_eq!(other.fingerprint(), idx.fingerprint());
    }

    #[test]
    fn fingerprint_for_tables_is_id_sensitive() {
        // Plans embed IndexIds, so the per-query fingerprint must distinguish
        // two catalogs whose content matches but whose ids were assigned
        // differently (e.g. one of them removed and re-created an index).
        let c = catalog();
        let t = c.table_by_name("orders").unwrap();
        let k = c.resolve_column(None, "o_orderkey").unwrap();
        let mut a = IndexCatalog::new();
        a.add(t, vec![k], None); // id 0
        let mut b = IndexCatalog::new();
        let first = b.add(t, vec![k], None);
        b.remove(first);
        b.add(t, vec![k], None); // same content, id 1
        assert_ne!(
            a.fingerprint_for_tables(&[t]),
            b.fingerprint_for_tables(&[t])
        );
    }

    #[test]
    fn fingerprint_for_tables_ignores_unrelated_indexes() {
        let c = catalog();
        let orders = c.table_by_name("orders").unwrap();
        let lineitem = c.table_by_name("lineitem").unwrap();
        let ok = c.resolve_column(None, "o_orderkey").unwrap();
        let lk = c.resolve_column(None, "l_orderkey").unwrap();
        let mut idx = IndexCatalog::new();
        idx.add(orders, vec![ok], None);
        let before = idx.fingerprint_for_tables(&[orders]);
        // An index on a table the query never touches must not move the
        // per-query fingerprint (the whole point: no spurious plan-cache
        // invalidation from lazy index creation elsewhere).
        idx.add(lineitem, vec![lk], None);
        assert_eq!(idx.fingerprint_for_tables(&[orders]), before);
        assert_ne!(idx.fingerprint(), before);
        // But an index on a referenced table does.
        let fk = c.resolve_column(None, "o_custkey").unwrap();
        idx.add(orders, vec![fk], None);
        assert_ne!(idx.fingerprint_for_tables(&[orders]), before);
        // Empty table list ⇒ stable empty fingerprint.
        assert_eq!(
            idx.fingerprint_for_tables(&[]),
            IndexCatalog::new().fingerprint_for_tables(&[])
        );
    }

    #[test]
    fn with_leading_column_matches_first_key_only() {
        let c = catalog();
        let t = c.table_by_name("orders").unwrap();
        let k = c.resolve_column(None, "o_orderkey").unwrap();
        let f = c.resolve_column(None, "o_custkey").unwrap();
        let mut idx = IndexCatalog::new();
        idx.add(t, vec![k, f], None);
        assert!(idx.with_leading_column(k).is_some());
        assert!(idx.with_leading_column(f).is_none());
    }
}
