//! Predicate extraction and selectivity estimation.
//!
//! This module plays the role of PostgreSQL's `clauselist_selectivity`: it
//! walks a parsed query, resolves column references against the catalog and
//! produces (a) per-table filter terms with estimated selectivities and
//! (b) the equality join graph. Subqueries are flattened into the same
//! predicate set — adequate for cost attribution, which is all the tuners
//! consume.
//!
//! Estimated and *true* selectivities differ by a deterministic,
//! per-predicate misestimation factor, reproducing the estimate errors that
//! make benchmarks like JOB hard for real optimizers.

use crate::catalog::Catalog;
use lt_common::{ColumnId, FxHasher, TableId};
use lt_sql::ast::{BinOp, Expr, Query, TableRef};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hasher;

/// Kind of a single-table filter predicate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterKind {
    /// `col = literal`
    Equality,
    /// `col <> literal`
    Inequality,
    /// `col < / <= / > / >= literal`
    Range,
    /// `col BETWEEN a AND b`
    Between,
    /// `col LIKE 'prefix%'`
    LikePrefix,
    /// `col LIKE '%infix%'`
    LikeContains,
    /// `col IN (v1 … vn)` with n values
    InList(u32),
    /// `col IS NULL`
    IsNull,
    /// `col IS NOT NULL`
    IsNotNull,
    /// `col IN (SELECT …)` — semi-join treated as a filter
    SemiJoin,
    /// `col NOT IN (SELECT …)` / `NOT EXISTS` — anti-join
    AntiJoin,
}

/// One extracted filter term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterTerm {
    /// Filtered column.
    pub column: ColumnId,
    /// Predicate shape.
    pub kind: FilterKind,
}

/// One equality join edge between base-table columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinEdge {
    /// One side.
    pub left: ColumnId,
    /// Other side.
    pub right: ColumnId,
}

impl JoinEdge {
    /// Canonical ordering so `(a,b)` equals `(b,a)` after normalization.
    pub fn normalized(self) -> JoinEdge {
        if self.left <= self.right {
            self
        } else {
            JoinEdge {
                left: self.right,
                right: self.left,
            }
        }
    }
}

/// All predicates extracted from one query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryPredicates {
    /// Base tables referenced anywhere in the query (deduplicated).
    pub tables: Vec<TableId>,
    /// Filter terms grouped by table.
    pub filters: BTreeMap<TableId, Vec<FilterTerm>>,
    /// Equality join edges (deduplicated, normalized).
    pub joins: Vec<JoinEdge>,
    /// Number of GROUP BY expressions (0 = scalar aggregate or none).
    pub group_by_columns: usize,
    /// Number of ORDER BY expressions.
    pub order_by_columns: usize,
    /// True if any aggregate function appears in the select list.
    pub has_aggregates: bool,
    /// LIMIT, if present.
    pub limit: Option<u64>,
}

/// Extracts predicates from a query, resolving names against the catalog.
///
/// Unresolvable column references (e.g. aliases of derived tables) are
/// skipped: they cannot drive index decisions anyway.
pub fn extract(query: &Query, catalog: &Catalog) -> QueryPredicates {
    let mut out = QueryPredicates::default();
    walk_query(query, catalog, &mut out);
    out.tables.sort_unstable();
    out.tables.dedup();
    let mut joins: Vec<JoinEdge> = out.joins.iter().map(|j| j.normalized()).collect();
    joins.sort_by_key(|j| (j.left, j.right));
    joins.dedup();
    out.joins = joins;
    out.group_by_columns = query.group_by.len();
    out.order_by_columns = query.order_by.len();
    out.has_aggregates = query.select.iter().any(|s| contains_aggregate(&s.expr));
    out.limit = query.limit;
    out
}

fn contains_aggregate(expr: &Expr) -> bool {
    match expr {
        Expr::Func { name, args, .. } => {
            matches!(name.as_str(), "sum" | "count" | "avg" | "min" | "max")
                || args.iter().any(contains_aggregate)
        }
        Expr::Binary { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        Expr::Unary { expr, .. } => contains_aggregate(expr),
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            operand.as_deref().map(contains_aggregate).unwrap_or(false)
                || branches
                    .iter()
                    .any(|(w, t)| contains_aggregate(w) || contains_aggregate(t))
                || else_branch
                    .as_deref()
                    .map(contains_aggregate)
                    .unwrap_or(false)
        }
        Expr::Extract { from, .. } => contains_aggregate(from),
        _ => false,
    }
}

struct Scope {
    /// alias (lower-case) → table id
    bindings: HashMap<String, TableId>,
}

fn scope_of(query: &Query, catalog: &Catalog) -> Scope {
    let mut bindings = HashMap::new();
    for t in &query.from {
        if let TableRef::Table { name, .. } = t {
            if let Some(tid) = catalog.table_by_name(name) {
                bindings.insert(t.binding().to_ascii_lowercase(), tid);
            }
        }
    }
    Scope { bindings }
}

fn resolve(col: &lt_sql::ast::ColumnRef, scope: &Scope, catalog: &Catalog) -> Option<ColumnId> {
    match &col.qualifier {
        Some(q) => {
            let key = q.to_ascii_lowercase();
            // Alias of this scope, or a base-table name directly.
            if let Some(tid) = scope.bindings.get(&key) {
                let table_name = &catalog.table(*tid).name;
                catalog.resolve_column(Some(table_name), &col.column).ok()
            } else {
                catalog
                    .resolve_column(Some(&key), &col.column)
                    .ok()
                    .or_else(|| {
                        // Correlated reference to an outer scope: benchmark
                        // column names are globally unique, resolve bare.
                        catalog.resolve_column(None, &col.column).ok()
                    })
            }
        }
        None => catalog.resolve_column(None, &col.column).ok(),
    }
}

fn walk_query(query: &Query, catalog: &Catalog, out: &mut QueryPredicates) {
    let scope = scope_of(query, catalog);
    for t in &query.from {
        match t {
            TableRef::Table { name, .. } => {
                if let Some(tid) = catalog.table_by_name(name) {
                    out.tables.push(tid);
                }
            }
            TableRef::Derived { query, .. } => walk_query(query, catalog, out),
        }
    }
    if let Some(f) = &query.filter {
        walk_pred(f, &scope, catalog, out);
    }
    if let Some(h) = &query.having {
        walk_pred(h, &scope, catalog, out);
    }
}

fn push_filter(out: &mut QueryPredicates, catalog: &Catalog, col: ColumnId, kind: FilterKind) {
    let table = catalog.column(col).table;
    out.filters
        .entry(table)
        .or_default()
        .push(FilterTerm { column: col, kind });
}

fn walk_pred(expr: &Expr, scope: &Scope, catalog: &Catalog, out: &mut QueryPredicates) {
    match expr {
        Expr::Binary { left, op, right } => match op {
            BinOp::And | BinOp::Or => {
                walk_pred(left, scope, catalog, out);
                walk_pred(right, scope, catalog, out);
            }
            op if op.is_comparison() => {
                let lc = as_column(left).and_then(|c| resolve(c, scope, catalog));
                let rc = as_column(right).and_then(|c| resolve(c, scope, catalog));
                match (lc, rc) {
                    (Some(l), Some(r)) if *op == BinOp::Eq => {
                        out.joins.push(JoinEdge { left: l, right: r });
                    }
                    (Some(l), None) => {
                        push_filter(out, catalog, l, cmp_kind(*op));
                        walk_subqueries(right, catalog, out);
                    }
                    (None, Some(r)) => {
                        push_filter(out, catalog, r, cmp_kind(*op));
                        walk_subqueries(left, catalog, out);
                    }
                    _ => {
                        walk_subqueries(left, catalog, out);
                        walk_subqueries(right, catalog, out);
                    }
                }
            }
            _ => {}
        },
        Expr::Unary { expr, .. } => walk_pred(expr, scope, catalog, out),
        Expr::Between { expr, .. } => {
            if let Some(c) = as_column(expr).and_then(|c| resolve(c, scope, catalog)) {
                push_filter(out, catalog, c, FilterKind::Between);
            }
        }
        Expr::Like {
            expr,
            pattern,
            negated: _,
        } => {
            if let Some(c) = as_column(expr).and_then(|c| resolve(c, scope, catalog)) {
                let kind = match pattern.as_ref() {
                    Expr::Literal(lt_sql::ast::Literal::String(p)) if !p.starts_with('%') => {
                        FilterKind::LikePrefix
                    }
                    _ => FilterKind::LikeContains,
                };
                push_filter(out, catalog, c, kind);
            }
        }
        Expr::InList { expr, list, .. } => {
            if let Some(c) = as_column(expr).and_then(|c| resolve(c, scope, catalog)) {
                push_filter(out, catalog, c, FilterKind::InList(list.len() as u32));
            }
        }
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => {
            // `col IN (SELECT inner_col FROM …)` is a semi-join: when both
            // sides resolve to base columns we record a join edge, exactly
            // how a real optimizer would decorrelate it. Otherwise fall back
            // to a coarse semi/anti-join filter on the outer column.
            let outer = as_column(expr).and_then(|c| resolve(c, scope, catalog));
            let inner = single_select_column(query, catalog);
            match (outer, inner) {
                // Anti-joins (`NOT IN`) cost like joins too; the edge keeps
                // the inner table connected in the join graph.
                (Some(o), Some(i)) => {
                    out.joins.push(JoinEdge { left: o, right: i });
                }
                (Some(o), None) => {
                    let kind = if *negated {
                        FilterKind::AntiJoin
                    } else {
                        FilterKind::SemiJoin
                    };
                    push_filter(out, catalog, o, kind);
                }
                _ => {}
            }
            walk_query(query, catalog, out);
        }
        Expr::IsNull { expr, negated } => {
            if let Some(c) = as_column(expr).and_then(|c| resolve(c, scope, catalog)) {
                let kind = if *negated {
                    FilterKind::IsNotNull
                } else {
                    FilterKind::IsNull
                };
                push_filter(out, catalog, c, kind);
            }
        }
        Expr::Exists { query, .. } => walk_query(query, catalog, out),
        Expr::Subquery(q) => walk_query(q, catalog, out),
        _ => {}
    }
}

fn walk_subqueries(expr: &Expr, catalog: &Catalog, out: &mut QueryPredicates) {
    match expr {
        Expr::Subquery(q) => walk_query(q, catalog, out),
        Expr::Binary { left, right, .. } => {
            walk_subqueries(left, catalog, out);
            walk_subqueries(right, catalog, out);
        }
        Expr::Unary { expr, .. } => walk_subqueries(expr, catalog, out),
        _ => {}
    }
}

/// Resolves the single projected column of an IN-subquery, if it has one.
fn single_select_column(query: &Query, catalog: &Catalog) -> Option<ColumnId> {
    if query.select.len() != 1 {
        return None;
    }
    let scope = scope_of(query, catalog);
    as_column(&query.select[0].expr).and_then(|c| resolve(c, &scope, catalog))
}

fn as_column(expr: &Expr) -> Option<&lt_sql::ast::ColumnRef> {
    match expr {
        Expr::Column(c) => Some(c),
        _ => None,
    }
}

fn cmp_kind(op: BinOp) -> FilterKind {
    match op {
        BinOp::Eq => FilterKind::Equality,
        BinOp::NotEq => FilterKind::Inequality,
        _ => FilterKind::Range,
    }
}

// ---- selectivity model ----

/// PostgreSQL-flavoured default selectivities.
fn base_selectivity(term: &FilterTerm, catalog: &Catalog) -> f64 {
    let ndv = catalog.column(term.column).ndv.max(1.0);
    match term.kind {
        FilterKind::Equality => 1.0 / ndv,
        FilterKind::Inequality => 1.0 - 1.0 / ndv,
        FilterKind::Range => 1.0 / 3.0,
        FilterKind::Between => 0.12,
        FilterKind::LikePrefix => 0.05,
        FilterKind::LikeContains => 0.02,
        FilterKind::InList(n) => ((n as f64) / ndv).min(1.0),
        FilterKind::IsNull => 0.01,
        FilterKind::IsNotNull => 0.99,
        FilterKind::SemiJoin => 0.5,
        FilterKind::AntiJoin => 0.5,
    }
    .clamp(1e-9, 1.0)
}

/// Deterministic misestimation factor for a predicate: the *true*
/// selectivity is `estimate * factor`, `factor ∈ [1/3, 3]`, fixed per
/// (column, kind, workload seed). This is how the simulator reproduces the
/// cardinality-estimation errors real optimizers suffer on JOB.
fn misestimation(term: &FilterTerm, seed: u64) -> f64 {
    let mut h = seed
        ^ (term.column.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (kind_tag(term.kind) as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 31;
    // Map to [-1, 1] then to a log-scale factor in [1/3, 3].
    let unit = ((h % 10_000) as f64) / 5_000.0 - 1.0;
    3f64.powf(unit)
}

fn kind_tag(kind: FilterKind) -> u32 {
    match kind {
        FilterKind::Equality => 0,
        FilterKind::Inequality => 1,
        FilterKind::Range => 2,
        FilterKind::Between => 3,
        FilterKind::LikePrefix => 4,
        FilterKind::LikeContains => 5,
        FilterKind::InList(_) => 6,
        FilterKind::IsNull => 7,
        FilterKind::IsNotNull => 8,
        FilterKind::SemiJoin => 9,
        FilterKind::AntiJoin => 10,
    }
}

/// Fingerprint of a filter-term conjunction: every field that enters the
/// selectivity computation (column, predicate shape, IN-list arity), in
/// term order. Used as the memo key for per-(table, predicate-set)
/// selectivity lookups.
fn terms_key(terms: &[FilterTerm]) -> u64 {
    let mut h = FxHasher::new();
    for t in terms {
        h.write_u32(t.column.0);
        h.write_u32(kind_tag(t.kind));
        if let FilterKind::InList(n) = t.kind {
            h.write_u32(n);
        }
    }
    h.finish()
}

/// Selectivity estimator over a catalog.
///
/// `estimated_*` methods return what the planner believes; `true_*` methods
/// apply the misestimation factors and return what "really" happens. Both
/// are deterministic for a given `seed`.
///
/// Table-selectivity lookups are memoized per instance: the join planner
/// re-derives the same conjunction selectivities for every access path and
/// the executor for every scan node, and the result is a pure function of
/// (terms, seed, stats quality). The memo is interior-mutable so the
/// planner's `&self` methods stay immutable.
#[derive(Debug, Clone)]
pub struct Estimator<'a> {
    catalog: &'a Catalog,
    seed: u64,
    /// Statistics quality in [0, 1]: 0 = default `ANALYZE` detail, 1 =
    /// maximal histograms. Higher quality moves the planner's estimates
    /// toward the true selectivities (see [`Estimator::with_stats_quality`]).
    stats_quality: f64,
    /// Memo for [`Estimator::estimated_table_selectivity`], keyed by
    /// [`terms_key`].
    est_memo: RefCell<HashMap<u64, f64>>,
    /// Memo for [`Estimator::true_table_selectivity`].
    true_memo: RefCell<HashMap<u64, f64>>,
}

impl<'a> Estimator<'a> {
    /// New estimator; `seed` fixes the misestimation pattern.
    pub fn new(catalog: &'a Catalog, seed: u64) -> Self {
        Estimator {
            catalog,
            seed,
            stats_quality: 0.0,
            est_memo: RefCell::new(HashMap::new()),
            true_memo: RefCell::new(HashMap::new()),
        }
    }

    /// Sets the statistics quality, the simulator's model of
    /// `default_statistics_target`: with quality `q`, the planner's
    /// estimate interpolates geometrically between the textbook default
    /// (`q = 0`) and the true selectivity (`q = 1`) — finer histograms
    /// shrink estimation error without eliminating it.
    pub fn with_stats_quality(mut self, quality: f64) -> Self {
        self.stats_quality = quality.clamp(0.0, 1.0);
        // Estimates depend on the quality; any memoized values are stale.
        self.est_memo.get_mut().clear();
        self
    }

    /// Maps a `default_statistics_target` value to a quality in [0, 1]
    /// (100 is PostgreSQL's default → 0; 10000 is the maximum → 1).
    pub fn quality_from_stats_target(target: f64) -> f64 {
        (target.max(1.0) / 100.0).log10().clamp(0.0, 2.0) / 2.0
    }

    /// Planner-estimated selectivity of the conjunction of `terms`
    /// (independence assumption), improved toward the truth by the
    /// statistics quality.
    pub fn estimated_table_selectivity(&self, terms: &[FilterTerm]) -> f64 {
        let key = terms_key(terms);
        if let Some(v) = self.est_memo.borrow().get(&key) {
            return *v;
        }
        let sel = terms
            .iter()
            .map(|t| {
                let base = base_selectivity(t, self.catalog);
                let mis = misestimation(t, self.seed);
                base * mis.powf(self.stats_quality)
            })
            .product::<f64>()
            .clamp(1e-9, 1.0);
        self.est_memo.borrow_mut().insert(key, sel);
        sel
    }

    /// "True" selectivity: estimate perturbed per predicate.
    pub fn true_table_selectivity(&self, terms: &[FilterTerm]) -> f64 {
        let key = terms_key(terms);
        if let Some(v) = self.true_memo.borrow().get(&key) {
            return *v;
        }
        let sel = terms
            .iter()
            .map(|t| (base_selectivity(t, self.catalog) * misestimation(t, self.seed)).min(1.0))
            .product::<f64>()
            .clamp(1e-9, 1.0);
        self.true_memo.borrow_mut().insert(key, sel);
        sel
    }

    /// Planner-estimated selectivity of an equality join (System-R style:
    /// `1 / max(ndv_left, ndv_right)`).
    pub fn estimated_join_selectivity(&self, edge: JoinEdge) -> f64 {
        let l = self.catalog.column(edge.left).ndv.max(1.0);
        let r = self.catalog.column(edge.right).ndv.max(1.0);
        (1.0 / l.max(r)).clamp(1e-12, 1.0)
    }

    /// "True" join selectivity (perturbed like filters, but milder:
    /// factor ∈ [1/2, 2]).
    pub fn true_join_selectivity(&self, edge: JoinEdge) -> f64 {
        let e = self.estimated_join_selectivity(edge);
        let n = edge.normalized();
        let mut h = self.seed
            ^ (n.left.0 as u64).wrapping_mul(0xA24B_AED4_963E_E407)
            ^ (n.right.0 as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25);
        h = (h ^ (h >> 28)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let unit = ((h % 10_000) as f64) / 5_000.0 - 1.0;
        (e * 2f64.powf(unit)).clamp(1e-12, 1.0)
    }

    /// Underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        self.catalog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_sql::parse_query;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table("lineitem", 6_000_000)
            .primary_key("l_orderkey", 8)
            .foreign_key("l_partkey", 8, 200_000.0)
            .column("l_shipdate", 4, 2_500.0)
            .column("l_quantity", 8, 50.0)
            .finish();
        c.add_table("orders", 1_500_000)
            .primary_key("o_orderkey", 8)
            .column("o_orderpriority", 15, 5.0)
            .finish();
        c
    }

    #[test]
    fn extract_joins_and_filters() {
        let c = catalog();
        let q = parse_query(
            "select * from lineitem l, orders o \
             where l.l_orderkey = o.o_orderkey and l.l_quantity < 24 \
             and o.o_orderpriority = '1-URGENT'",
        )
        .unwrap();
        let p = extract(&q, &c);
        assert_eq!(p.tables.len(), 2);
        assert_eq!(p.joins.len(), 1);
        let li = c.table_by_name("lineitem").unwrap();
        let or = c.table_by_name("orders").unwrap();
        assert_eq!(p.filters[&li].len(), 1);
        assert_eq!(p.filters[&li][0].kind, FilterKind::Range);
        assert_eq!(p.filters[&or][0].kind, FilterKind::Equality);
    }

    #[test]
    fn extract_between_like_inlist() {
        let c = catalog();
        let q = parse_query(
            "select * from lineitem where l_shipdate between date '1994-01-01' and \
             date '1995-01-01' and l_quantity in (1, 2, 3)",
        )
        .unwrap();
        let p = extract(&q, &c);
        let li = c.table_by_name("lineitem").unwrap();
        let kinds: Vec<FilterKind> = p.filters[&li].iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&FilterKind::Between));
        assert!(kinds.contains(&FilterKind::InList(3)));
    }

    #[test]
    fn symmetric_joins_dedupe() {
        let c = catalog();
        let q = parse_query(
            "select * from lineitem, orders where l_orderkey = o_orderkey \
             and o_orderkey = l_orderkey",
        )
        .unwrap();
        let p = extract(&q, &c);
        assert_eq!(p.joins.len(), 1);
    }

    #[test]
    fn subquery_tables_are_flattened() {
        let c = catalog();
        let q = parse_query(
            "select * from orders where o_orderkey in (select l_orderkey from lineitem \
             where l_quantity > 40)",
        )
        .unwrap();
        let p = extract(&q, &c);
        assert_eq!(p.tables.len(), 2);
        // The IN-subquery decorrelates into a join edge connecting orders
        // to lineitem.
        assert_eq!(p.joins.len(), 1);
        let or = c.table_by_name("orders").unwrap();
        assert!(!p.filters.contains_key(&or));
    }

    #[test]
    fn selectivity_bounds() {
        let c = catalog();
        let est = Estimator::new(&c, 7);
        let col = c.resolve_column(None, "o_orderpriority").unwrap();
        let term = FilterTerm {
            column: col,
            kind: FilterKind::Equality,
        };
        let s = est.estimated_table_selectivity(&[term]);
        assert!((s - 0.2).abs() < 1e-9, "1/5 distinct values, got {s}");
        let t = est.true_table_selectivity(&[term]);
        assert!(t > 0.0 && t <= 1.0);
        // Misestimation is bounded by 3x either way.
        assert!(t / s <= 3.0 + 1e-9 && s / t <= 3.0 + 1e-9, "s={s} t={t}");
    }

    #[test]
    fn misestimation_is_deterministic() {
        let c = catalog();
        let est1 = Estimator::new(&c, 7);
        let est2 = Estimator::new(&c, 7);
        let col = c.resolve_column(None, "l_shipdate").unwrap();
        let term = FilterTerm {
            column: col,
            kind: FilterKind::Between,
        };
        assert_eq!(
            est1.true_table_selectivity(&[term]),
            est2.true_table_selectivity(&[term])
        );
        let est3 = Estimator::new(&c, 8);
        // A different seed *may* coincide, but for these constants it doesn't.
        assert_ne!(
            est1.true_table_selectivity(&[term]),
            est3.true_table_selectivity(&[term])
        );
    }

    #[test]
    fn join_selectivity_uses_larger_ndv() {
        let c = catalog();
        let est = Estimator::new(&c, 7);
        let l = c.resolve_column(None, "l_orderkey").unwrap();
        let o = c.resolve_column(None, "o_orderkey").unwrap();
        let s = est.estimated_join_selectivity(JoinEdge { left: l, right: o });
        assert!((s - 1.0 / 6_000_000.0).abs() < 1e-15);
    }

    #[test]
    fn aggregate_detection() {
        let c = catalog();
        let q = parse_query("select sum(l_quantity) from lineitem group by l_shipdate").unwrap();
        let p = extract(&q, &c);
        assert!(p.has_aggregates);
        assert_eq!(p.group_by_columns, 1);
    }
}
