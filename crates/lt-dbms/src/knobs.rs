//! Configuration-knob registry for the simulated PostgreSQL and MySQL.
//!
//! The registry mirrors the subset of PostgreSQL 12 / MySQL 8 parameters
//! that matter for OLAP performance (the same parameters the paper's best
//! configurations touch, Table 5). A [`KnobSet`] holds concrete values,
//! validates assignments against each knob's definition and exposes
//! *semantic* accessors (buffer pool size, work memory, parallel workers,
//! optimizer page costs) that the optimizer and execution model consume —
//! so those components are DBMS-agnostic.

use crate::hardware::{format_bytes, parse_bytes, GIB, KIB, MIB};
use lt_common::{LtError, Result};
use std::collections::BTreeMap;
use std::fmt;

/// Target database system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dbms {
    /// PostgreSQL 12-like system.
    Postgres,
    /// MySQL 8 (InnoDB)-like system.
    Mysql,
}

impl Dbms {
    /// Human-readable product name, as used in prompts.
    pub fn name(self) -> &'static str {
        match self {
            Dbms::Postgres => "PostgreSQL",
            Dbms::Mysql => "MySQL",
        }
    }

    /// Both supported systems.
    pub fn all() -> [Dbms; 2] {
        [Dbms::Postgres, Dbms::Mysql]
    }
}

impl fmt::Display for Dbms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Broad category of a knob (used in Table 5's "Category" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobCategory {
    /// Memory allocation.
    Memory,
    /// Query-optimizer cost constants / hints.
    Optimizer,
    /// I/O subsystem behaviour.
    Io,
    /// Parallel query execution.
    Parallelism,
    /// WAL / logging behaviour.
    Logging,
}

impl fmt::Display for KnobCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            KnobCategory::Memory => "Memory",
            KnobCategory::Optimizer => "Optimizer",
            KnobCategory::Io => "IO",
            KnobCategory::Parallelism => "Parallelism",
            KnobCategory::Logging => "Logging",
        };
        f.write_str(s)
    }
}

/// A concrete knob value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KnobValue {
    /// Byte quantity (`shared_buffers = 16GB`).
    Bytes(u64),
    /// Floating-point quantity (`random_page_cost = 1.1`).
    Float(f64),
    /// Integer quantity (`max_parallel_workers_per_gather = 4`).
    Int(i64),
    /// Boolean (`jit = on`).
    Bool(bool),
}

impl KnobValue {
    /// Numeric view, used for range checks and distance metrics.
    pub fn as_f64(self) -> f64 {
        match self {
            KnobValue::Bytes(b) => b as f64,
            KnobValue::Float(f) => f,
            KnobValue::Int(i) => i as f64,
            KnobValue::Bool(b) => {
                if b {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

impl fmt::Display for KnobValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnobValue::Bytes(b) => f.write_str(&format_bytes(*b)),
            KnobValue::Float(v) => write!(f, "{v}"),
            KnobValue::Int(i) => write!(f, "{i}"),
            KnobValue::Bool(b) => f.write_str(if *b { "on" } else { "off" }),
        }
    }
}

/// Static definition of one tunable parameter.
#[derive(Debug, Clone)]
pub struct KnobDef {
    /// Parameter name as written in configuration scripts.
    pub name: &'static str,
    /// Broad category.
    pub category: KnobCategory,
    /// System default value.
    pub default: KnobValue,
    /// Smallest accepted numeric value.
    pub min: f64,
    /// Largest accepted numeric value.
    pub max: f64,
    /// One-line description (shown in docs and hint mining).
    pub description: &'static str,
}

impl KnobDef {
    const fn bytes(
        name: &'static str,
        category: KnobCategory,
        default: u64,
        min: u64,
        max: u64,
        description: &'static str,
    ) -> Self {
        KnobDef {
            name,
            category,
            default: KnobValue::Bytes(default),
            min: min as f64,
            max: max as f64,
            description,
        }
    }

    const fn float(
        name: &'static str,
        category: KnobCategory,
        default: f64,
        min: f64,
        max: f64,
        description: &'static str,
    ) -> Self {
        KnobDef {
            name,
            category,
            default: KnobValue::Float(default),
            min,
            max,
            description,
        }
    }

    const fn int(
        name: &'static str,
        category: KnobCategory,
        default: i64,
        min: i64,
        max: i64,
        description: &'static str,
    ) -> Self {
        KnobDef {
            name,
            category,
            default: KnobValue::Int(default),
            min: min as f64,
            max: max as f64,
            description,
        }
    }

    const fn boolean(
        name: &'static str,
        category: KnobCategory,
        default: bool,
        description: &'static str,
    ) -> Self {
        KnobDef {
            name,
            category,
            default: KnobValue::Bool(default),
            min: 0.0,
            max: 1.0,
            description,
        }
    }

    /// Parses a textual value (`'16GB'`, `1.1`, `on`) into this knob's type,
    /// clamping to the legal range like PostgreSQL does for out-of-range
    /// settings at the edge of validity.
    pub fn parse_value(&self, text: &str) -> Result<KnobValue> {
        let t = text.trim().trim_matches('\'').trim_matches('"').trim();
        let parsed = match self.default {
            KnobValue::Bytes(_) => parse_bytes(t).map(KnobValue::Bytes),
            KnobValue::Float(_) => t.parse::<f64>().ok().map(KnobValue::Float),
            KnobValue::Int(_) => t
                .parse::<i64>()
                .ok()
                .or_else(|| t.parse::<f64>().ok().map(|f| f.round() as i64))
                .map(KnobValue::Int),
            KnobValue::Bool(_) => match t.to_ascii_lowercase().as_str() {
                "on" | "true" | "yes" | "1" => Some(KnobValue::Bool(true)),
                "off" | "false" | "no" | "0" => Some(KnobValue::Bool(false)),
                _ => None,
            },
        };
        let value = parsed.ok_or_else(|| {
            LtError::Config(format!("invalid value {text:?} for knob {}", self.name))
        })?;
        Ok(self.clamp(value))
    }

    /// Clamps a value into the knob's legal range, preserving its type.
    pub fn clamp(&self, value: KnobValue) -> KnobValue {
        let v = value.as_f64().clamp(self.min, self.max);
        match self.default {
            KnobValue::Bytes(_) => KnobValue::Bytes(v as u64),
            KnobValue::Float(_) => KnobValue::Float(v),
            KnobValue::Int(_) => KnobValue::Int(v as i64),
            KnobValue::Bool(_) => KnobValue::Bool(v >= 0.5),
        }
    }
}

/// PostgreSQL 12 knob definitions (OLAP-relevant subset).
pub fn postgres_knobs() -> &'static [KnobDef] {
    use KnobCategory::*;
    const DEFS: &[KnobDef] = &[
        KnobDef::bytes(
            "shared_buffers",
            Memory,
            128 * MIB,
            128 * KIB,
            512 * GIB,
            "Size of the shared buffer pool caching table and index pages.",
        ),
        KnobDef::bytes(
            "work_mem",
            Memory,
            4 * MIB,
            64 * KIB,
            64 * GIB,
            "Memory per sort/hash operation before spilling to disk.",
        ),
        KnobDef::bytes(
            "maintenance_work_mem",
            Memory,
            64 * MIB,
            1024 * KIB,
            64 * GIB,
            "Memory for maintenance operations such as CREATE INDEX.",
        ),
        KnobDef::bytes(
            "temp_buffers",
            Memory,
            8 * MIB,
            800 * KIB,
            16 * GIB,
            "Per-session buffers for temporary tables.",
        ),
        KnobDef::bytes(
            "effective_cache_size",
            Optimizer,
            4 * GIB,
            8 * KIB,
            512 * GIB,
            "Planner's assumption about total cache available to one query.",
        ),
        KnobDef::float(
            "random_page_cost",
            Optimizer,
            4.0,
            0.01,
            1000.0,
            "Planner cost of a non-sequential page fetch.",
        ),
        KnobDef::float(
            "seq_page_cost",
            Optimizer,
            1.0,
            0.01,
            1000.0,
            "Planner cost of a sequential page fetch.",
        ),
        KnobDef::float(
            "cpu_tuple_cost",
            Optimizer,
            0.01,
            0.0001,
            100.0,
            "Planner cost of processing one tuple.",
        ),
        KnobDef::float(
            "cpu_index_tuple_cost",
            Optimizer,
            0.005,
            0.0001,
            100.0,
            "Planner cost of processing one index entry.",
        ),
        KnobDef::float(
            "cpu_operator_cost",
            Optimizer,
            0.0025,
            0.0001,
            100.0,
            "Planner cost of processing one operator or function call.",
        ),
        KnobDef::int(
            "default_statistics_target",
            Optimizer,
            100,
            1,
            10000,
            "Statistics detail level collected by ANALYZE.",
        ),
        KnobDef::boolean(
            "jit",
            Optimizer,
            true,
            "Just-in-time compilation of expressions.",
        ),
        KnobDef::int(
            "effective_io_concurrency",
            Io,
            1,
            0,
            1000,
            "Number of concurrent asynchronous I/O requests.",
        ),
        KnobDef::int(
            "max_parallel_workers_per_gather",
            Parallelism,
            2,
            0,
            64,
            "Workers a single Gather node may launch.",
        ),
        KnobDef::int(
            "max_parallel_workers",
            Parallelism,
            8,
            0,
            128,
            "Total parallel workers available to the system.",
        ),
        KnobDef::int(
            "max_worker_processes",
            Parallelism,
            8,
            0,
            128,
            "Background worker process limit.",
        ),
        KnobDef::float(
            "checkpoint_completion_target",
            Logging,
            0.5,
            0.0,
            1.0,
            "Fraction of the checkpoint interval used to spread writes.",
        ),
        KnobDef::bytes(
            "wal_buffers",
            Logging,
            16 * MIB,
            32 * KIB,
            2 * GIB,
            "Shared memory for WAL not yet written to disk.",
        ),
        KnobDef::bytes(
            "max_wal_size",
            Logging,
            GIB,
            2 * MIB,
            1024 * GIB,
            "Maximum WAL size between automatic checkpoints.",
        ),
    ];
    DEFS
}

/// MySQL 8 (InnoDB) knob definitions (OLAP-relevant subset).
pub fn mysql_knobs() -> &'static [KnobDef] {
    use KnobCategory::*;
    const DEFS: &[KnobDef] = &[
        KnobDef::bytes(
            "innodb_buffer_pool_size",
            Memory,
            128 * MIB,
            5 * MIB,
            512 * GIB,
            "Size of the InnoDB buffer pool caching table and index pages.",
        ),
        KnobDef::bytes(
            "sort_buffer_size",
            Memory,
            256 * KIB,
            32 * KIB,
            16 * GIB,
            "Per-session buffer for sorts before spilling.",
        ),
        KnobDef::bytes(
            "join_buffer_size",
            Memory,
            256 * KIB,
            128 * KIB,
            16 * GIB,
            "Per-join buffer for block nested-loop and hash joins.",
        ),
        KnobDef::bytes(
            "tmp_table_size",
            Memory,
            16 * MIB,
            1024,
            64 * GIB,
            "Maximum size of in-memory temporary tables.",
        ),
        KnobDef::bytes(
            "max_heap_table_size",
            Memory,
            16 * MIB,
            16 * KIB,
            64 * GIB,
            "Maximum size of user-created MEMORY tables.",
        ),
        KnobDef::bytes(
            "read_rnd_buffer_size",
            Memory,
            256 * KIB,
            1024,
            2 * GIB,
            "Buffer for reading rows in sorted order after a sort.",
        ),
        KnobDef::bytes(
            "innodb_log_file_size",
            Logging,
            48 * MIB,
            4 * MIB,
            512 * GIB,
            "Size of each InnoDB redo log file.",
        ),
        KnobDef::int(
            "innodb_flush_log_at_trx_commit",
            Logging,
            1,
            0,
            2,
            "Durability/throughput trade-off for redo flushing.",
        ),
        KnobDef::int(
            "innodb_io_capacity",
            Io,
            200,
            100,
            100_000,
            "I/O operations per second available to background tasks.",
        ),
        KnobDef::int(
            "innodb_read_io_threads",
            Io,
            4,
            1,
            64,
            "Background read I/O threads.",
        ),
        KnobDef::int(
            "innodb_write_io_threads",
            Io,
            4,
            1,
            64,
            "Background write I/O threads.",
        ),
        KnobDef::int(
            "innodb_parallel_read_threads",
            Parallelism,
            4,
            1,
            256,
            "Threads for parallel clustered-index reads.",
        ),
        KnobDef::int(
            "innodb_thread_concurrency",
            Parallelism,
            0,
            0,
            1000,
            "Concurrent thread limit inside InnoDB (0 = unlimited).",
        ),
        KnobDef::int(
            "table_open_cache",
            Memory,
            4000,
            1,
            500_000,
            "Number of table definitions kept open.",
        ),
        KnobDef::int(
            "optimizer_search_depth",
            Optimizer,
            62,
            0,
            62,
            "Join-order search depth of the optimizer.",
        ),
        KnobDef::boolean(
            "innodb_adaptive_hash_index",
            Optimizer,
            true,
            "Adaptive hash index on frequently accessed pages.",
        ),
    ];
    DEFS
}

/// Returns the knob definitions for a DBMS.
pub fn knob_defs(dbms: Dbms) -> &'static [KnobDef] {
    match dbms {
        Dbms::Postgres => postgres_knobs(),
        Dbms::Mysql => mysql_knobs(),
    }
}

/// Looks up one knob definition by name (case-insensitive).
pub fn knob_def(dbms: Dbms, name: &str) -> Option<&'static KnobDef> {
    knob_defs(dbms)
        .iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
}

/// A full assignment of values to every knob of one DBMS.
#[derive(Debug, Clone, PartialEq)]
pub struct KnobSet {
    dbms: Dbms,
    values: BTreeMap<&'static str, KnobValue>,
}

impl KnobSet {
    /// All-defaults knob set for a DBMS.
    pub fn defaults(dbms: Dbms) -> Self {
        let values = knob_defs(dbms)
            .iter()
            .map(|d| (d.name, d.default))
            .collect();
        KnobSet { dbms, values }
    }

    /// The DBMS this knob set belongs to.
    pub fn dbms(&self) -> Dbms {
        self.dbms
    }

    /// Sets a knob from a textual value. Unknown knobs and malformed values
    /// are errors (the script applier decides whether to skip or abort).
    pub fn set_text(&mut self, name: &str, value: &str) -> Result<()> {
        let def = knob_def(self.dbms, name)
            .ok_or_else(|| LtError::Config(format!("unknown knob {name}")))?;
        let v = def.parse_value(value)?;
        self.values.insert(def.name, v);
        Ok(())
    }

    /// Sets a knob from a typed value (clamped to the legal range).
    pub fn set(&mut self, name: &str, value: KnobValue) -> Result<()> {
        let def = knob_def(self.dbms, name)
            .ok_or_else(|| LtError::Config(format!("unknown knob {name}")))?;
        self.values.insert(def.name, def.clamp(value));
        Ok(())
    }

    /// Reads a knob value. Panics on unknown names (program error: every
    /// registered knob always has a value).
    pub fn get(&self, name: &str) -> KnobValue {
        let def = knob_def(self.dbms, name)
            .unwrap_or_else(|| panic!("unknown knob {name} for {}", self.dbms));
        self.values[def.name]
    }

    /// Knob value as f64.
    pub fn get_f64(&self, name: &str) -> f64 {
        self.get(name).as_f64()
    }

    /// Names of knobs whose value differs from the default.
    pub fn non_default(&self) -> Vec<(&'static str, KnobValue)> {
        knob_defs(self.dbms)
            .iter()
            .filter(|d| self.values[d.name] != d.default)
            .map(|d| (d.name, self.values[d.name]))
            .collect()
    }

    // ---- semantic accessors consumed by the optimizer and executor ----

    /// Bytes of DBMS-managed buffer pool.
    pub fn buffer_pool_bytes(&self) -> u64 {
        match self.dbms {
            Dbms::Postgres => self.get_f64("shared_buffers") as u64,
            Dbms::Mysql => self.get_f64("innodb_buffer_pool_size") as u64,
        }
    }

    /// Bytes one sort/hash operation may use before spilling.
    pub fn work_mem_bytes(&self) -> u64 {
        match self.dbms {
            Dbms::Postgres => self.get_f64("work_mem") as u64,
            Dbms::Mysql => {
                (self.get_f64("join_buffer_size") + self.get_f64("sort_buffer_size")) as u64
            }
        }
    }

    /// Bytes available to maintenance operations (index builds).
    pub fn maintenance_mem_bytes(&self) -> u64 {
        match self.dbms {
            Dbms::Postgres => self.get_f64("maintenance_work_mem") as u64,
            Dbms::Mysql => (2.0 * self.get_f64("sort_buffer_size")) as u64,
        }
    }

    /// Cache size the *optimizer* assumes (may differ from reality).
    pub fn planner_cache_bytes(&self) -> u64 {
        match self.dbms {
            Dbms::Postgres => self.get_f64("effective_cache_size") as u64,
            Dbms::Mysql => self.buffer_pool_bytes(),
        }
    }

    /// Parallel workers one query may use (in addition to the leader).
    pub fn parallel_workers(&self) -> u32 {
        match self.dbms {
            Dbms::Postgres => {
                let per_gather = self.get_f64("max_parallel_workers_per_gather") as u32;
                let total = self.get_f64("max_parallel_workers") as u32;
                per_gather.min(total)
            }
            Dbms::Mysql => (self.get_f64("innodb_parallel_read_threads") as u32).saturating_sub(1),
        }
    }

    /// Effective I/O concurrency (prefetch depth).
    pub fn io_concurrency(&self) -> u32 {
        match self.dbms {
            Dbms::Postgres => self.get_f64("effective_io_concurrency") as u32,
            Dbms::Mysql => (self.get_f64("innodb_io_capacity") as u32 / 200).max(1),
        }
    }

    /// Planner cost of a random page fetch.
    pub fn random_page_cost(&self) -> f64 {
        match self.dbms {
            Dbms::Postgres => self.get_f64("random_page_cost"),
            // MySQL 8 exposes engine costs elsewhere; we model its planner
            // with a fixed ratio, which also captures that MySQL's optimizer
            // is less tunable than PostgreSQL's.
            Dbms::Mysql => 4.0,
        }
    }

    /// Planner cost of a sequential page fetch.
    pub fn seq_page_cost(&self) -> f64 {
        match self.dbms {
            Dbms::Postgres => self.get_f64("seq_page_cost"),
            Dbms::Mysql => 1.0,
        }
    }

    /// Planner cost of processing one tuple.
    pub fn cpu_tuple_cost(&self) -> f64 {
        match self.dbms {
            Dbms::Postgres => self.get_f64("cpu_tuple_cost"),
            Dbms::Mysql => 0.01,
        }
    }

    /// Planner cost of processing one index entry.
    pub fn cpu_index_tuple_cost(&self) -> f64 {
        match self.dbms {
            Dbms::Postgres => self.get_f64("cpu_index_tuple_cost"),
            Dbms::Mysql => 0.005,
        }
    }

    /// Fingerprint over exactly the knob-derived inputs the optimizer
    /// consumes, so the plan cache is invalidated by planner-relevant knob
    /// changes only — executor-side knobs (I/O concurrency, logging, buffer
    /// pool) can move freely without evicting plans.
    pub fn planner_fingerprint(&self) -> lt_common::Fingerprint {
        use std::hash::{Hash, Hasher};
        let mut h = lt_common::FxHasher::new();
        (self.dbms as u8).hash(&mut h);
        self.seq_page_cost().to_bits().hash(&mut h);
        self.random_page_cost().to_bits().hash(&mut h);
        self.cpu_tuple_cost().to_bits().hash(&mut h);
        self.cpu_index_tuple_cost().to_bits().hash(&mut h);
        self.planner_cache_bytes().hash(&mut h);
        self.work_mem_bytes().hash(&mut h);
        self.parallel_workers().hash(&mut h);
        if self.dbms == Dbms::Postgres {
            self.get_f64("default_statistics_target")
                .to_bits()
                .hash(&mut h);
        }
        lt_common::Fingerprint(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_every_knob() {
        for dbms in Dbms::all() {
            let set = KnobSet::defaults(dbms);
            for def in knob_defs(dbms) {
                assert_eq!(set.get(def.name), def.default, "{}", def.name);
            }
            assert!(set.non_default().is_empty());
        }
    }

    #[test]
    fn set_text_parses_units_and_clamps() {
        let mut set = KnobSet::defaults(Dbms::Postgres);
        set.set_text("shared_buffers", "'16GB'").unwrap();
        assert_eq!(set.get("shared_buffers"), KnobValue::Bytes(16 * GIB));
        set.set_text("random_page_cost", "1.1").unwrap();
        assert_eq!(set.get("random_page_cost"), KnobValue::Float(1.1));
        // Below minimum → clamped up.
        set.set_text("work_mem", "1kB").unwrap();
        assert_eq!(set.get("work_mem"), KnobValue::Bytes(64 * KIB));
    }

    #[test]
    fn unknown_knob_is_an_error() {
        let mut set = KnobSet::defaults(Dbms::Postgres);
        assert!(set.set_text("innodb_buffer_pool_size", "1GB").is_err());
        let mut set = KnobSet::defaults(Dbms::Mysql);
        assert!(set.set_text("shared_buffers", "1GB").is_err());
    }

    #[test]
    fn invalid_value_is_an_error() {
        let mut set = KnobSet::defaults(Dbms::Postgres);
        assert!(set.set_text("work_mem", "lots").is_err());
        assert!(set.set_text("jit", "maybe").is_err());
    }

    #[test]
    fn bool_parsing() {
        let mut set = KnobSet::defaults(Dbms::Postgres);
        set.set_text("jit", "off").unwrap();
        assert_eq!(set.get("jit"), KnobValue::Bool(false));
        set.set_text("jit", "ON").unwrap();
        assert_eq!(set.get("jit"), KnobValue::Bool(true));
    }

    #[test]
    fn non_default_lists_changes() {
        let mut set = KnobSet::defaults(Dbms::Postgres);
        set.set_text("work_mem", "1GB").unwrap();
        set.set_text("random_page_cost", "1.1").unwrap();
        let nd = set.non_default();
        assert_eq!(nd.len(), 2);
        assert!(nd.iter().any(|(n, _)| *n == "work_mem"));
    }

    #[test]
    fn semantic_accessors_follow_dbms() {
        let mut pg = KnobSet::defaults(Dbms::Postgres);
        pg.set_text("shared_buffers", "8GB").unwrap();
        assert_eq!(pg.buffer_pool_bytes(), 8 * GIB);

        let mut my = KnobSet::defaults(Dbms::Mysql);
        my.set_text("innodb_buffer_pool_size", "8GB").unwrap();
        assert_eq!(my.buffer_pool_bytes(), 8 * GIB);
        // MySQL's planner page-cost ratio is fixed.
        assert_eq!(my.random_page_cost(), 4.0);
    }

    #[test]
    fn parallel_workers_respects_global_cap() {
        let mut pg = KnobSet::defaults(Dbms::Postgres);
        pg.set_text("max_parallel_workers_per_gather", "16")
            .unwrap();
        pg.set_text("max_parallel_workers", "4").unwrap();
        assert_eq!(pg.parallel_workers(), 4);
    }

    #[test]
    fn planner_fingerprint_tracks_planner_knobs_only() {
        let base = KnobSet::defaults(Dbms::Postgres).planner_fingerprint();
        // A planner knob moves the fingerprint…
        let mut planner = KnobSet::defaults(Dbms::Postgres);
        planner.set_text("random_page_cost", "1.1").unwrap();
        assert_ne!(planner.planner_fingerprint(), base);
        // …an executor-only knob does not…
        let mut exec = KnobSet::defaults(Dbms::Postgres);
        exec.set_text("effective_io_concurrency", "200").unwrap();
        exec.set_text("wal_buffers", "64MB").unwrap();
        assert_eq!(exec.planner_fingerprint(), base);
        // …and the two DBMS flavours never collide.
        assert_ne!(KnobSet::defaults(Dbms::Mysql).planner_fingerprint(), base);
    }

    #[test]
    fn knob_lookup_is_case_insensitive() {
        assert!(knob_def(Dbms::Postgres, "SHARED_BUFFERS").is_some());
        assert!(knob_def(Dbms::Postgres, "no_such_knob").is_none());
    }

    #[test]
    fn every_knob_definition_is_internally_consistent() {
        for dbms in Dbms::all() {
            for def in knob_defs(dbms) {
                assert!(def.min <= def.max, "{}: min > max", def.name);
                let d = def.default.as_f64();
                assert!(
                    d >= def.min && d <= def.max,
                    "{}: default {d} outside [{}, {}]",
                    def.name,
                    def.min,
                    def.max
                );
                assert!(!def.description.is_empty(), "{}: no description", def.name);
                assert_eq!(def.name, def.name.to_ascii_lowercase(), "{}", def.name);
            }
        }
    }

    #[test]
    fn knob_names_are_unique_per_dbms() {
        for dbms in Dbms::all() {
            let mut names: Vec<&str> = knob_defs(dbms).iter().map(|d| d.name).collect();
            let before = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), before);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(KnobValue::Bytes(16 * GIB).to_string(), "16GB");
        assert_eq!(KnobValue::Float(1.1).to_string(), "1.1");
        assert_eq!(KnobValue::Bool(true).to_string(), "on");
        assert_eq!(Dbms::Postgres.to_string(), "PostgreSQL");
        assert_eq!(KnobCategory::Io.to_string(), "IO");
    }
}
