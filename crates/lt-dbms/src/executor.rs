//! Execution-time model: converts a physical plan into simulated seconds.
//!
//! The model walks the plan tree bottom-up, recomputing *true* cardinalities
//! (the planner's estimates perturbed by deterministic misestimation
//! factors, see [`crate::stats`]) and charging three resources:
//!
//! * **I/O** — page reads priced by where the page lives: DBMS buffer pool,
//!   OS page cache, or disk. The buffer-pool hit fraction grows with
//!   `shared_buffers` / `innodb_buffer_pool_size`; random disk reads are
//!   amortized by `effective_io_concurrency`.
//! * **CPU** — per-tuple work, divided by the parallel speedup when the
//!   plan has a `Gather`.
//! * **Spills** — hash joins and sorts whose *true* input exceeds work
//!   memory pay temp-file write+read passes, which is where default
//!   configurations (4 MB `work_mem`) lose most of their time on OLAP.
//!
//! A small multiplicative noise term (deterministic in the seed, the query,
//! the configuration fingerprint and an execution counter) reproduces
//! run-to-run variance without breaking reproducibility.

use crate::catalog::{Catalog, PAGE_SIZE};
use crate::hardware::Hardware;
use crate::knobs::KnobSet;
use crate::physical::{Index, IndexCatalog};
use crate::plan::{Plan, PlanNode, PlanOp};
use crate::stats::{Estimator, QueryPredicates};
use lt_common::{secs, Secs};

/// Seconds to read one 8 KiB page from the DBMS buffer pool.
const T_PAGE_BUFFER: f64 = 1.0e-6;
/// Seconds to read one page from the OS page cache.
const T_PAGE_OS: f64 = 6.0e-6;
/// Seconds to read one page sequentially from disk.
const T_PAGE_DISK_SEQ: f64 = 8.0e-5;
/// Seconds to read one page randomly from disk (before I/O concurrency).
const T_PAGE_DISK_RAND: f64 = 3.2e-4;
/// Seconds to write+read one page of spill temp data (sequential, often
/// partially cached).
const T_PAGE_SPILL: f64 = 2.5e-5;
/// Seconds of CPU to process one tuple in a scan.
const T_TUPLE_SCAN: f64 = 9.0e-8;
/// Seconds of CPU to hash/probe one tuple.
const T_TUPLE_HASH: f64 = 1.4e-7;
/// Seconds of CPU per tuple-comparison in a sort (per log₂ level).
const T_TUPLE_SORT: f64 = 6.0e-8;
/// Seconds of CPU to aggregate one tuple.
const T_TUPLE_AGG: f64 = 7.0e-8;
/// Seconds per index B-tree descent.
const T_INDEX_DESCENT: f64 = 1.2e-6;
/// Parallel startup cost per worker.
const T_WORKER_STARTUP: f64 = 0.01;
/// Global calibration factor aligning simulated magnitudes with the
/// paper's testbed (per-query seconds on TPC-H SF1, minutes-scale index
/// builds on IMDB-sized tables).
const TIME_SCALE: f64 = 5.0;

/// The cost model's unit constants, gathered into a value so they can be
/// *calibrated*: `lt-store`'s `store_bench` measures real executions of the
/// same plans and fits multipliers over these defaults (see
/// [`CostConstants::scaled`]). [`Default`] reproduces the historical
/// constants exactly, so every existing simulation is bit-for-bit
/// unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConstants {
    /// Seconds to read one 8 KiB page from the DBMS buffer pool.
    pub t_page_buffer: f64,
    /// Seconds to read one page from the OS page cache.
    pub t_page_os: f64,
    /// Seconds to read one page sequentially from disk.
    pub t_page_disk_seq: f64,
    /// Seconds to read one page randomly from disk (before I/O concurrency).
    pub t_page_disk_rand: f64,
    /// Seconds to write+read one page of spill temp data.
    pub t_page_spill: f64,
    /// Seconds of CPU to process one tuple in a scan.
    pub t_tuple_scan: f64,
    /// Seconds of CPU to hash/probe one tuple.
    pub t_tuple_hash: f64,
    /// Seconds of CPU per tuple-comparison in a sort (per log₂ level).
    pub t_tuple_sort: f64,
    /// Seconds of CPU to aggregate one tuple.
    pub t_tuple_agg: f64,
    /// Seconds per index B-tree descent.
    pub t_index_descent: f64,
    /// Parallel startup cost per worker.
    pub t_worker_startup: f64,
    /// Global calibration factor.
    pub time_scale: f64,
}

impl Default for CostConstants {
    fn default() -> Self {
        CostConstants {
            t_page_buffer: T_PAGE_BUFFER,
            t_page_os: T_PAGE_OS,
            t_page_disk_seq: T_PAGE_DISK_SEQ,
            t_page_disk_rand: T_PAGE_DISK_RAND,
            t_page_spill: T_PAGE_SPILL,
            t_tuple_scan: T_TUPLE_SCAN,
            t_tuple_hash: T_TUPLE_HASH,
            t_tuple_sort: T_TUPLE_SORT,
            t_tuple_agg: T_TUPLE_AGG,
            t_index_descent: T_INDEX_DESCENT,
            t_worker_startup: T_WORKER_STARTUP,
            time_scale: TIME_SCALE,
        }
    }
}

impl CostConstants {
    /// Defaults with three calibration multipliers applied: `io_mult`
    /// scales every page-read constant, `cpu_mult` every per-tuple
    /// constant (and the index descent), `spill_mult` the temp-file page
    /// cost. This is the three-parameter family `store_bench` fits.
    pub fn scaled(io_mult: f64, cpu_mult: f64, spill_mult: f64) -> Self {
        let d = CostConstants::default();
        CostConstants {
            t_page_buffer: d.t_page_buffer * io_mult,
            t_page_os: d.t_page_os * io_mult,
            t_page_disk_seq: d.t_page_disk_seq * io_mult,
            t_page_disk_rand: d.t_page_disk_rand * io_mult,
            t_page_spill: d.t_page_spill * spill_mult,
            t_tuple_scan: d.t_tuple_scan * cpu_mult,
            t_tuple_hash: d.t_tuple_hash * cpu_mult,
            t_tuple_sort: d.t_tuple_sort * cpu_mult,
            t_tuple_agg: d.t_tuple_agg * cpu_mult,
            t_index_descent: d.t_index_descent * cpu_mult,
            t_worker_startup: d.t_worker_startup,
            time_scale: d.time_scale,
        }
    }
}

/// Per-operator profile entry produced by
/// [`ExecutionModel::profile`] (the simulator's `EXPLAIN ANALYZE`).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeProfile {
    /// Depth in the plan tree (root = 0).
    pub depth: usize,
    /// Operator name.
    pub op: &'static str,
    /// Planner-estimated output rows.
    pub est_rows: f64,
    /// "Actual" output rows under the true selectivities.
    pub actual_rows: f64,
    /// Simulated seconds attributed to this subtree.
    pub seconds: f64,
}

/// The execution-time model. Cheap to construct; holds only seeds and the
/// (possibly calibrated) cost constants.
#[derive(Debug, Clone, Copy)]
pub struct ExecutionModel {
    /// Seed controlling misestimation factors (shared with the optimizer's
    /// estimator so both see the same "reality").
    pub stats_seed: u64,
    /// Seed controlling run-to-run noise.
    pub noise_seed: u64,
    /// Unit cost constants (defaults unless calibrated).
    pub costs: CostConstants,
}

/// Everything the model needs to price a query execution.
pub struct ExecutionContext<'a> {
    /// Schema and statistics.
    pub catalog: &'a Catalog,
    /// Active configuration.
    pub knobs: &'a KnobSet,
    /// Materialized indexes (for sizing; plan already references them).
    pub indexes: &'a IndexCatalog,
    /// Machine.
    pub hardware: &'a Hardware,
}

impl ExecutionModel {
    /// New model with the given seeds and default cost constants.
    pub fn new(stats_seed: u64, noise_seed: u64) -> Self {
        ExecutionModel {
            stats_seed,
            noise_seed,
            costs: CostConstants::default(),
        }
    }

    /// Replaces the cost constants (calibration).
    pub fn with_costs(mut self, costs: CostConstants) -> Self {
        self.costs = costs;
        self
    }

    /// In-place variant of [`ExecutionModel::with_costs`], for calibration
    /// passes that adjust a live model between measurements.
    pub fn set_costs(&mut self, costs: CostConstants) {
        self.costs = costs;
    }

    /// Simulated wall-clock time of running `plan`.
    ///
    /// `query_tag` identifies the query (for noise), `exec_counter`
    /// distinguishes repeated executions, `config_fingerprint` the active
    /// configuration.
    pub fn execution_time(
        &self,
        plan: &Plan,
        preds: &QueryPredicates,
        ctx: &ExecutionContext<'_>,
        query_tag: u64,
        config_fingerprint: u64,
        exec_counter: u64,
    ) -> Secs {
        let est = Estimator::new(ctx.catalog, self.stats_seed);
        let mut walker = Walker {
            model: self,
            ctx,
            est: &est,
            preds,
            profile: None,
        };
        let (_, mut time) = walker.node_time(&plan.root, 0);
        // Multiplicative noise in ±6%, deterministic.
        let h = mix(self
            .noise_seed
            .wrapping_add(query_tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(config_fingerprint.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            .wrapping_add(exec_counter.wrapping_mul(0x1656_67B1_9E37_79F9)));
        let unit = ((h % 10_000) as f64) / 5_000.0 - 1.0;
        time *= (1.0 + 0.06 * unit) * self.costs.time_scale;
        secs(time.max(1e-4))
    }

    /// Profiles a plan like `EXPLAIN ANALYZE`: per-operator estimated vs
    /// "actual" rows and attributed time, in pre-order. Pure — does not
    /// charge any clock.
    pub fn profile(
        &self,
        plan: &Plan,
        preds: &QueryPredicates,
        ctx: &ExecutionContext<'_>,
    ) -> Vec<NodeProfile> {
        let est = Estimator::new(ctx.catalog, self.stats_seed);
        let mut walker = Walker {
            model: self,
            ctx,
            est: &est,
            preds,
            profile: Some(Vec::new()),
        };
        walker.node_time(&plan.root, 0);
        walker.profile.take().unwrap_or_default()
    }

    /// Simulated time to build a B-tree index: heap scan + external sort +
    /// index write, accelerated by maintenance memory.
    pub fn index_build_time(&self, index: &Index, ctx: &ExecutionContext<'_>) -> Secs {
        let table = ctx.catalog.table(index.table);
        let heap_pages = table.pages(ctx.catalog) as f64;
        let rows = table.rows as f64;
        let read = heap_pages * self.page_time_seq(ctx);
        let maintenance = ctx.knobs.maintenance_mem_bytes() as f64;
        let boost = (maintenance / (64.0 * 1024.0 * 1024.0))
            .clamp(1.0, 16.0)
            .sqrt();
        // External sort dominates builds on large tables (a default-config
        // B-tree build over tens of millions of rows takes minutes).
        let sort = rows * rows.max(2.0).log2() * (2.0 * self.costs.t_tuple_sort) / boost;
        let write = index.pages(ctx.catalog) as f64 * self.costs.t_page_os;
        secs(((read + sort + write) * self.costs.time_scale).max(1e-3))
    }

    /// Simulated time to drop an index (catalog-only, near-instant).
    pub fn index_drop_time(&self) -> Secs {
        secs(0.05)
    }

    /// Simulated time to apply a knob change and restart/reload the system.
    pub fn reconfigure_time(&self, changed_knobs: usize) -> Secs {
        // A restart dominates; marginally longer with more changes.
        secs(2.0 + 0.1 * changed_knobs as f64)
    }

    // ---- shared page-read pricing ----

    /// Buffer-pool hit fraction given the configured pool vs the hot set.
    fn cache_fractions(&self, ctx: &ExecutionContext<'_>) -> (f64, f64) {
        let data = (ctx.catalog.total_bytes() + ctx.indexes.total_bytes(ctx.catalog)) as f64;
        let pool = ctx.knobs.buffer_pool_bytes() as f64;
        let hit_pool = (pool / data).clamp(0.0, 1.0);
        // The OS caches what the pool doesn't, bounded by free memory.
        let free = (ctx.hardware.memory_bytes as f64 - pool).max(0.0) * 0.6;
        let hit_os = ((free / data).clamp(0.0, 1.0)) * (1.0 - hit_pool);
        (hit_pool, hit_os)
    }

    fn page_time_seq(&self, ctx: &ExecutionContext<'_>) -> f64 {
        let (bp, os) = self.cache_fractions(ctx);
        let disk = (1.0 - bp - os).max(0.0);
        bp * self.costs.t_page_buffer
            + os * self.costs.t_page_os
            + disk * self.costs.t_page_disk_seq
    }

    fn page_time_rand(&self, ctx: &ExecutionContext<'_>) -> f64 {
        let (bp, os) = self.cache_fractions(ctx);
        let disk = (1.0 - bp - os).max(0.0);
        let ioc = ctx.knobs.io_concurrency().max(1) as f64;
        let rand_disk = self.costs.t_page_disk_rand / (1.0 + 0.5 * ioc.ln_1p());
        bp * self.costs.t_page_buffer + os * self.costs.t_page_os + disk * rand_disk
    }
}

struct Walker<'a, 'b> {
    model: &'b ExecutionModel,
    ctx: &'b ExecutionContext<'a>,
    est: &'b Estimator<'a>,
    preds: &'b QueryPredicates,
    /// When set, per-node profiles are collected (EXPLAIN ANALYZE mode).
    profile: Option<Vec<NodeProfile>>,
}

impl Walker<'_, '_> {
    /// Returns (true output rows, simulated seconds) for a subtree.
    fn node_time(&mut self, node: &PlanNode, depth: usize) -> (f64, f64) {
        let slot = self.profile.as_ref().map(|p| p.len());
        if let Some(p) = self.profile.as_mut() {
            p.push(NodeProfile {
                depth,
                op: node.op.name(),
                est_rows: node.est_rows,
                actual_rows: 0.0,
                seconds: 0.0,
            });
        }
        let (rows, time) = self.node_time_inner(node, depth);
        if let (Some(p), Some(slot)) = (self.profile.as_mut(), slot) {
            p[slot].actual_rows = rows;
            p[slot].seconds = time;
        }
        (rows, time)
    }

    fn node_time_inner(&mut self, node: &PlanNode, depth: usize) -> (f64, f64) {
        let c = self.model.costs;
        match &node.op {
            PlanOp::SeqScan { table, .. } => {
                let t = self.ctx.catalog.table(*table);
                let rows = t.rows as f64;
                let pages = t.pages(self.ctx.catalog) as f64;
                let sel = self.true_selectivity(*table);
                let io = pages * self.model.page_time_seq(self.ctx);
                let cpu = rows * c.t_tuple_scan;
                ((rows * sel).max(1.0), io + cpu)
            }
            PlanOp::IndexScan {
                table, selectivity, ..
            } => {
                let t = self.ctx.catalog.table(*table);
                let rows = t.rows as f64;
                let pages = t.pages(self.ctx.catalog) as f64;
                // The planner chose this path for its estimated selectivity;
                // reality may fetch more or fewer heap pages.
                let est_sel = *selectivity;
                let true_sel = (est_sel * self.true_misfactor(*table)).clamp(1e-12, 1.0);
                let fetched = (true_sel * rows).max(1.0);
                let heap_pages = fetched.min(pages);
                let io = c.t_index_descent
                    + heap_pages * self.model.page_time_rand(self.ctx)
                    + fetched * 2.0e-8;
                ((rows * true_sel).max(1.0), io)
            }
            PlanOp::HashJoin { keys, .. } => {
                let (probe_rows, probe_t) = self.node_time(&node.children[0], depth + 1);
                let (build_rows, build_t) = self.node_time(&node.children[1], depth + 1);
                let sel = self.true_join_sel_all(keys);
                let out = (probe_rows * build_rows * sel).max(1.0);
                let mut time = probe_t
                    + build_t
                    + build_rows * c.t_tuple_hash * 2.0
                    + probe_rows * c.t_tuple_hash
                    + out * c.t_tuple_scan;
                let build_bytes = build_rows * node.children[1].width;
                if build_bytes > self.ctx.knobs.work_mem_bytes() as f64 {
                    let spill_bytes = build_bytes + probe_rows * node.children[0].width;
                    time += 2.0 * (spill_bytes / PAGE_SIZE as f64) * c.t_page_spill;
                }
                (out, time)
            }
            PlanOp::MergeJoin { keys } => {
                let (l_rows, l_t) = self.node_time(&node.children[0], depth + 1);
                let (r_rows, r_t) = self.node_time(&node.children[1], depth + 1);
                let sel = self.true_join_sel_all(keys);
                let out = (l_rows * r_rows * sel).max(1.0);
                let sort = |n: f64| n * n.max(2.0).log2() * c.t_tuple_sort;
                let time = l_t
                    + r_t
                    + sort(l_rows)
                    + sort(r_rows)
                    + (l_rows + r_rows) * c.t_tuple_scan
                    + out * c.t_tuple_scan;
                (out, time)
            }
            PlanOp::NestLoopJoin { keys, inner_index } => {
                let (outer_rows, outer_t) = self.node_time(&node.children[0], depth + 1);
                let inner = &node.children[1];
                let inner_table = match inner.op {
                    PlanOp::IndexScan { table, .. } | PlanOp::SeqScan { table, .. } => Some(table),
                    _ => None,
                };
                let sel = self.true_join_sel_all(keys);
                let inner_total_rows = inner_table
                    .map(|t| self.ctx.catalog.table(t).rows as f64)
                    .unwrap_or(inner.est_rows);
                let out = (outer_rows * inner_total_rows * sel).max(1.0);
                let time = if inner_index.is_some() {
                    let matches = (out / outer_rows.max(1.0)).max(1.0);
                    outer_t
                        + outer_rows
                            * (c.t_index_descent + matches * self.model.page_time_rand(self.ctx))
                } else {
                    // Naive repeated scan of the inner side.
                    let (_, inner_t) = self.node_time(inner, depth + 1);
                    outer_t + outer_rows.max(1.0) * inner_t
                };
                (out, time)
            }
            PlanOp::CrossJoin => {
                let (l_rows, l_t) = self.node_time(&node.children[0], depth + 1);
                let (r_rows, r_t) = self.node_time(&node.children[1], depth + 1);
                let out = (l_rows * r_rows).max(1.0);
                (out, l_t + r_t + out * c.t_tuple_scan)
            }
            PlanOp::Sort { .. } => {
                let (rows, t) = self.node_time(&node.children[0], depth + 1);
                let mut time = t + rows * rows.max(2.0).log2() * c.t_tuple_sort;
                let bytes = rows * node.children[0].width;
                if bytes > self.ctx.knobs.work_mem_bytes() as f64 {
                    time += 2.0 * (bytes / PAGE_SIZE as f64) * c.t_page_spill;
                }
                (rows, time)
            }
            PlanOp::Aggregate { grouped } => {
                let (rows, t) = self.node_time(&node.children[0], depth + 1);
                let out = if *grouped { (rows * 0.1).max(1.0) } else { 1.0 };
                (out, t + rows * c.t_tuple_agg)
            }
            PlanOp::Gather { workers } => {
                let (rows, t) = self.node_time(&node.children[0], depth + 1);
                let usable = (*workers).min(self.ctx.hardware.cores.saturating_sub(1)) as f64;
                let speedup = 1.0 + 0.7 * usable;
                (rows, t / speedup + usable * c.t_worker_startup)
            }
            PlanOp::Limit { rows } => match node.children.first() {
                Some(child) => {
                    let (in_rows, t) = self.node_time(child, depth + 1);
                    ((in_rows).min(*rows as f64), t)
                }
                // Table-less queries plan as a bare Limit leaf (constant
                // result); charge one tuple's worth of work.
                None => (node.est_rows.min(*rows as f64), c.t_tuple_scan),
            },
        }
    }

    fn true_selectivity(&self, table: lt_common::TableId) -> f64 {
        match self.preds.filters.get(&table) {
            Some(terms) => self.est.true_table_selectivity(terms),
            None => 1.0,
        }
    }

    /// Ratio of true to estimated selectivity for a table's filter set.
    fn true_misfactor(&self, table: lt_common::TableId) -> f64 {
        match self.preds.filters.get(&table) {
            Some(terms) => {
                let est = self.est.estimated_table_selectivity(terms);
                let tru = self.est.true_table_selectivity(terms);
                (tru / est).clamp(1.0 / 27.0, 27.0)
            }
            None => 1.0,
        }
    }

    /// Combined true selectivity of every equality condition the join
    /// evaluates (independence assumption, matching the planner's).
    fn true_join_sel_all(&self, keys: &[(lt_common::ColumnId, lt_common::ColumnId)]) -> f64 {
        keys.iter()
            .map(|(l, r)| {
                self.est.true_join_selectivity(crate::stats::JoinEdge {
                    left: *l,
                    right: *r,
                })
            })
            .product::<f64>()
            .clamp(1e-18, 1.0)
    }
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knobs::{Dbms, KnobSet};
    use crate::optimizer::Optimizer;
    use crate::stats::extract;
    use lt_sql::parse_query;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table("lineitem", 6_000_000)
            .primary_key("l_orderkey", 8)
            .column("l_shipdate", 4, 2_500.0)
            .column("l_quantity", 8, 50.0)
            .column("l_extendedprice", 8, 900_000.0)
            .column("l_comment", 27, 4_000_000.0)
            .column("l_pad1", 30, 100.0)
            .column("l_pad2", 30, 100.0)
            .finish();
        c.add_table("orders", 1_500_000)
            .primary_key("o_orderkey", 8)
            .column("o_orderdate", 4, 2_400.0)
            .column("o_pad", 60, 100.0)
            .finish();
        c
    }

    fn time_with(knobs: &KnobSet, sql: &str) -> Secs {
        let c = catalog();
        let idx = IndexCatalog::new();
        let hw = Hardware::p3_2xlarge();
        let q = parse_query(sql).unwrap();
        let preds = extract(&q, &c);
        let plan = Optimizer::new(&c, knobs, &idx, 7).plan(&q);
        let model = ExecutionModel::new(7, 11);
        let ctx = ExecutionContext {
            catalog: &c,
            knobs,
            indexes: &idx,
            hardware: &hw,
        };
        model.execution_time(&plan, &preds, &ctx, 1, 0, 0)
    }

    #[test]
    fn join_time_is_positive_and_finite() {
        let knobs = KnobSet::defaults(Dbms::Postgres);
        let t = time_with(
            &knobs,
            "select * from lineitem, orders where l_orderkey = o_orderkey",
        );
        assert!(t > Secs::ZERO && t.is_finite(), "{t}");
    }

    #[test]
    fn bigger_work_mem_speeds_up_hash_joins() {
        let small = KnobSet::defaults(Dbms::Postgres); // 4MB work_mem
        let mut big = KnobSet::defaults(Dbms::Postgres);
        big.set_text("work_mem", "4GB").unwrap();
        let sql = "select * from lineitem, orders where l_orderkey = o_orderkey";
        let t_small = time_with(&small, sql);
        let t_big = time_with(&big, sql);
        assert!(
            t_big < t_small,
            "expected spill avoidance to win: small={t_small} big={t_big}"
        );
    }

    #[test]
    fn bigger_buffer_pool_speeds_up_scans() {
        let small = KnobSet::defaults(Dbms::Postgres); // 128MB shared_buffers
        let mut big = KnobSet::defaults(Dbms::Postgres);
        big.set_text("shared_buffers", "16GB").unwrap();
        let sql = "select count(*) from lineitem";
        assert!(time_with(&big, sql) < time_with(&small, sql));
    }

    #[test]
    fn parallel_workers_speed_up_large_scans() {
        let mut none = KnobSet::defaults(Dbms::Postgres);
        none.set_text("max_parallel_workers_per_gather", "0")
            .unwrap();
        let mut four = KnobSet::defaults(Dbms::Postgres);
        four.set_text("max_parallel_workers_per_gather", "4")
            .unwrap();
        let sql = "select count(*) from lineitem";
        assert!(time_with(&four, sql) < time_with(&none, sql));
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let c = catalog();
        let knobs = KnobSet::defaults(Dbms::Postgres);
        let idx = IndexCatalog::new();
        let hw = Hardware::p3_2xlarge();
        let q = parse_query("select count(*) from orders").unwrap();
        let preds = extract(&q, &c);
        let plan = Optimizer::new(&c, &knobs, &idx, 7).plan(&q);
        let model = ExecutionModel::new(7, 11);
        let ctx = ExecutionContext {
            catalog: &c,
            knobs: &knobs,
            indexes: &idx,
            hardware: &hw,
        };
        let a = model.execution_time(&plan, &preds, &ctx, 5, 9, 0);
        let b = model.execution_time(&plan, &preds, &ctx, 5, 9, 0);
        assert_eq!(a, b);
        let c2 = model.execution_time(&plan, &preds, &ctx, 5, 9, 1);
        // Different execution counter → different (but close) time.
        let ratio = c2 / a;
        assert!(ratio > 0.85 && ratio < 1.15, "ratio {ratio}");
    }

    #[test]
    fn index_build_time_grows_with_table_size() {
        let c = catalog();
        let knobs = KnobSet::defaults(Dbms::Postgres);
        let idx = IndexCatalog::new();
        let hw = Hardware::p3_2xlarge();
        let model = ExecutionModel::new(7, 11);
        let ctx = ExecutionContext {
            catalog: &c,
            knobs: &knobs,
            indexes: &idx,
            hardware: &hw,
        };
        let li = c.table_by_name("lineitem").unwrap();
        let or = c.table_by_name("orders").unwrap();
        let big = Index {
            id: lt_common::IndexId(0),
            table: li,
            columns: vec![c.resolve_column(None, "l_orderkey").unwrap()],
            name: "i1".into(),
        };
        let small = Index {
            id: lt_common::IndexId(1),
            table: or,
            columns: vec![c.resolve_column(None, "o_orderkey").unwrap()],
            name: "i2".into(),
        };
        assert!(model.index_build_time(&big, &ctx) > model.index_build_time(&small, &ctx));
    }

    #[test]
    fn maintenance_work_mem_speeds_up_index_builds() {
        let c = catalog();
        let idx = IndexCatalog::new();
        let hw = Hardware::p3_2xlarge();
        let model = ExecutionModel::new(7, 11);
        let li = c.table_by_name("lineitem").unwrap();
        let index = Index {
            id: lt_common::IndexId(0),
            table: li,
            columns: vec![c.resolve_column(None, "l_orderkey").unwrap()],
            name: "i1".into(),
        };
        let slow_knobs = KnobSet::defaults(Dbms::Postgres);
        let mut fast_knobs = KnobSet::defaults(Dbms::Postgres);
        fast_knobs.set_text("maintenance_work_mem", "4GB").unwrap();
        let slow_ctx = ExecutionContext {
            catalog: &c,
            knobs: &slow_knobs,
            indexes: &idx,
            hardware: &hw,
        };
        let fast_ctx = ExecutionContext {
            catalog: &c,
            knobs: &fast_knobs,
            indexes: &idx,
            hardware: &hw,
        };
        assert!(
            model.index_build_time(&index, &fast_ctx) < model.index_build_time(&index, &slow_ctx)
        );
    }
}
