//! Simulated OLAP database management system.
//!
//! The λ-Tune paper tunes PostgreSQL 12 and MySQL 8 on an EC2 instance. This
//! crate replaces that testbed with a simulator that exposes exactly the
//! surface the tuning algorithms interact with:
//!
//! * a **catalog** with table/column statistics,
//! * a **knob registry** mirroring the relevant PostgreSQL / MySQL
//!   configuration parameters,
//! * a cost-based **optimizer** (Selinger-style dynamic-programming join
//!   ordering + access-path selection) whose choices respond to optimizer
//!   knobs such as `random_page_cost` and `effective_cache_size`,
//! * an **execution-time model** that converts a plan into simulated seconds
//!   as a function of the *resource* knobs (buffer pool, work memory,
//!   parallelism) and charges them to a virtual clock, with support for
//!   timeouts and interrupts,
//! * **configuration scripts** (`ALTER SYSTEM SET` / `SET GLOBAL` /
//!   `CREATE INDEX`) parsed and applied the way a DBA (or an LLM) would
//!   write them.
//!
//! Everything a tuner can observe — `EXPLAIN` cost estimates, wall-clock
//! query times, index-creation times, timeout interrupts — comes out of this
//! crate, so λ-Tune and all baselines run unmodified against it.

pub mod catalog;
pub mod config;
pub mod db;
pub mod executor;
pub mod global_cache;
pub mod hardware;
pub mod knobs;
pub mod optimizer;
pub mod physical;
pub mod plan;
pub mod plan_cache;
pub mod stats;
pub mod target;

pub use catalog::{Catalog, ColumnMeta, TableBuilder, TableMeta};
pub use config::{ConfigCommand, Configuration, IndexSpec};
pub use db::{QueryOutcome, SimDb};
pub use executor::{CostConstants, ExecutionModel};
pub use hardware::Hardware;
pub use knobs::{Dbms, KnobCategory, KnobDef, KnobSet, KnobValue};
pub use optimizer::{
    JoinEnumerator, Optimizer, DEFAULT_DP_RELATION_LIMIT, LEGACY_DP_RELATION_LIMIT,
};
pub use physical::{Index, IndexCatalog};
pub use plan::{PlanNode, PlanOp};
pub use plan_cache::{CacheStats, PlanCache, PlanKey};
pub use target::TuningTarget;
