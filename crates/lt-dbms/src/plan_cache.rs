//! Memoizing plan cache for the simulated DBMS.
//!
//! Planning is pure: the chosen plan depends only on (query, planner-relevant
//! knobs, index set). λ-Tune's selector re-executes the same (configuration,
//! query) pairs across its geometric-timeout rounds and the benchmark matrix
//! replays whole workloads per configuration, so the same planning work used
//! to be redone thousands of times per run. [`PlanCache`] memoizes both the
//! Selinger planning result and the per-query predicate extraction.
//!
//! Entries are keyed by [`PlanKey`] — (query fingerprint, planner-knob
//! fingerprint, index-catalog fingerprint) — so mutations invalidate by
//! *changing the key* rather than by flushing: applying knobs or creating /
//! dropping an index moves the respective fingerprint (see
//! `KnobSet::planner_fingerprint` and `IndexCatalog::fingerprint`, whose
//! epoch bumps on every mutation), while returning to a previously seen
//! configuration re-hits the old entries, which is exactly the selector's
//! access pattern.
//!
//! Interior mutability (`Mutex` + atomics) keeps the read paths usable from
//! `&self` methods (`explain`, what-if planning); `SimDb` is owned per
//! benchmark thread, so the locks are uncontended in practice.

use crate::plan::Plan;
use crate::stats::QueryPredicates;
use lt_common::lru::{cap_from_env, LruMap};
use lt_common::{obs, Fingerprint};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default bound on cached plans per `SimDb`; override with
/// `LT_PLAN_CACHE_CAP`. Sized to hold every (query, configuration) pair a
/// full benchmark-matrix selector run touches with room to spare.
const DEFAULT_PLAN_CAP: usize = 65_536;

/// Cache key: the complete planning context of one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Fingerprint of the query text.
    pub query: u64,
    /// `KnobSet::planner_fingerprint()` of the knobs planned under.
    pub knobs: Fingerprint,
    /// `IndexCatalog::fingerprint()` of the index set planned against.
    pub indexes: Fingerprint,
}

/// Hit/miss counters, snapshot via [`PlanCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Plans served from the cache.
    pub plan_hits: u64,
    /// Plans computed by the optimizer.
    pub plan_misses: u64,
    /// Predicate extractions served from the cache.
    pub extract_hits: u64,
    /// Predicate extractions computed from the AST.
    pub extract_misses: u64,
}

impl CacheStats {
    /// Fraction of planning calls answered from the cache (0 when idle).
    pub fn plan_hit_rate(&self) -> f64 {
        let total = self.plan_hits + self.plan_misses;
        if total == 0 {
            0.0
        } else {
            self.plan_hits as f64 / total as f64
        }
    }
}

/// Memoizes planning and predicate extraction (see module docs).
#[derive(Debug)]
pub struct PlanCache {
    /// `LT_PLAN_CACHE=0` (or `off`) disables memoization entirely — every
    /// call plans from scratch and counts as a miss. Used to measure the
    /// cache-less baseline with an otherwise identical binary.
    enabled: bool,
    /// Bounded LRU (`LT_PLAN_CACHE_CAP`): under fleet load many `SimDb`s
    /// live in one process, so each per-session cache must have a ceiling.
    plans: Mutex<LruMap<PlanKey, Arc<Plan>>>,
    predicates: Mutex<LruMap<u64, Arc<QueryPredicates>>>,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    extract_hits: AtomicU64,
    extract_misses: AtomicU64,
    /// Windowed counters: incremented alongside the cumulative ones,
    /// zeroed by [`PlanCache::take_window`]. Drift detection needs a
    /// *recent* hit rate — a collapse is invisible in cumulative counters
    /// once they are large.
    window: [AtomicU64; 4],
}

impl Default for PlanCache {
    fn default() -> Self {
        let enabled = !matches!(
            std::env::var("LT_PLAN_CACHE").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        );
        let cap = cap_from_env("LT_PLAN_CACHE_CAP", DEFAULT_PLAN_CAP);
        PlanCache {
            enabled,
            plans: Mutex::new(LruMap::new(cap)),
            predicates: Mutex::new(LruMap::new(cap)),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            extract_hits: AtomicU64::new(0),
            extract_misses: AtomicU64::new(0),
            window: Default::default(),
        }
    }
}

/// Indices into [`PlanCache::window`].
const W_PLAN_HIT: usize = 0;
const W_PLAN_MISS: usize = 1;
const W_EXTRACT_HIT: usize = 2;
const W_EXTRACT_MISS: usize = 3;

impl PlanCache {
    /// Empty cache with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty cache bounded to `cap` plans/predicate sets, ignoring the
    /// environment knob. Used by tests that exercise eviction.
    pub fn with_cap(cap: usize) -> Self {
        PlanCache {
            plans: Mutex::new(LruMap::new(cap)),
            predicates: Mutex::new(LruMap::new(cap)),
            ..Self::default()
        }
    }

    /// Returns the plan for `key`, planning via `plan_fn` on a miss.
    pub fn plan_or_insert(&self, key: PlanKey, plan_fn: impl FnOnce() -> Plan) -> Arc<Plan> {
        if !self.enabled {
            self.plan_misses.fetch_add(1, Ordering::Relaxed);
            self.window[W_PLAN_MISS].fetch_add(1, Ordering::Relaxed);
            obs::counter("dbms.plan_cache.miss", 1);
            return Arc::new(plan_fn());
        }
        if let Some(plan) = self.plans.lock().unwrap().get(&key) {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            self.window[W_PLAN_HIT].fetch_add(1, Ordering::Relaxed);
            obs::counter("dbms.plan_cache.hit", 1);
            return Arc::clone(plan);
        }
        // Plan outside the lock: planning can be orders of magnitude more
        // expensive than a map probe, and a poisoned lock on a planner panic
        // would otherwise wedge every later query.
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        self.window[W_PLAN_MISS].fetch_add(1, Ordering::Relaxed);
        obs::counter("dbms.plan_cache.miss", 1);
        let plan = Arc::new(plan_fn());
        let mut plans = self.plans.lock().unwrap();
        if !plans.contains(&key) && plans.insert(key, Arc::clone(&plan)).is_some() {
            obs::counter("dbms.plan_cache.evict", 1);
        }
        plan
    }

    /// Returns the extracted predicates for the query fingerprinted as
    /// `query`, extracting via `extract_fn` on a miss. Extraction depends
    /// only on the query and the (immutable) schema catalog, so the query
    /// fingerprint alone keys it.
    pub fn predicates_or_insert(
        &self,
        query: u64,
        extract_fn: impl FnOnce() -> QueryPredicates,
    ) -> Arc<QueryPredicates> {
        if !self.enabled {
            self.extract_misses.fetch_add(1, Ordering::Relaxed);
            self.window[W_EXTRACT_MISS].fetch_add(1, Ordering::Relaxed);
            obs::counter("dbms.extract_cache.miss", 1);
            return Arc::new(extract_fn());
        }
        if let Some(preds) = self.predicates.lock().unwrap().get(&query) {
            self.extract_hits.fetch_add(1, Ordering::Relaxed);
            self.window[W_EXTRACT_HIT].fetch_add(1, Ordering::Relaxed);
            obs::counter("dbms.extract_cache.hit", 1);
            return Arc::clone(preds);
        }
        self.extract_misses.fetch_add(1, Ordering::Relaxed);
        self.window[W_EXTRACT_MISS].fetch_add(1, Ordering::Relaxed);
        obs::counter("dbms.extract_cache.miss", 1);
        let preds = Arc::new(extract_fn());
        let mut predicates = self.predicates.lock().unwrap();
        if !predicates.contains(&query) && predicates.insert(query, Arc::clone(&preds)).is_some() {
            obs::counter("dbms.extract_cache.evict", 1);
        }
        preds
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            extract_hits: self.extract_hits.load(Ordering::Relaxed),
            extract_misses: self.extract_misses.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the windowed counters accumulated since the last
    /// [`PlanCache::take_window`] (or since construction).
    pub fn window_stats(&self) -> CacheStats {
        CacheStats {
            plan_hits: self.window[W_PLAN_HIT].load(Ordering::Relaxed),
            plan_misses: self.window[W_PLAN_MISS].load(Ordering::Relaxed),
            extract_hits: self.window[W_EXTRACT_HIT].load(Ordering::Relaxed),
            extract_misses: self.window[W_EXTRACT_MISS].load(Ordering::Relaxed),
        }
    }

    /// Returns the windowed counters and resets them to zero, starting the
    /// next window. The cumulative counters are unaffected.
    pub fn take_window(&self) -> CacheStats {
        CacheStats {
            plan_hits: self.window[W_PLAN_HIT].swap(0, Ordering::Relaxed),
            plan_misses: self.window[W_PLAN_MISS].swap(0, Ordering::Relaxed),
            extract_hits: self.window[W_EXTRACT_HIT].swap(0, Ordering::Relaxed),
            extract_misses: self.window[W_EXTRACT_MISS].swap(0, Ordering::Relaxed),
        }
    }

    /// Number of distinct plans currently cached.
    pub fn len(&self) -> usize {
        self.plans.lock().unwrap().len()
    }

    /// True when no plan has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanNode, PlanOp};
    use lt_common::TableId;

    fn leaf(cost: f64) -> Plan {
        Plan {
            root: PlanNode::leaf(
                PlanOp::SeqScan {
                    table: TableId(0),
                    selectivity: 1.0,
                },
                1.0,
                cost,
                8.0,
            ),
            join_costs: Vec::new(),
        }
    }

    fn key(q: u64, k: u64, i: u64) -> PlanKey {
        PlanKey {
            query: q,
            knobs: Fingerprint(k),
            indexes: Fingerprint(i),
        }
    }

    #[test]
    fn hit_returns_cached_plan_without_replanning() {
        let cache = PlanCache::new();
        let a = cache.plan_or_insert(key(1, 2, 3), || leaf(10.0));
        let b = cache.plan_or_insert(key(1, 2, 3), || panic!("must not replan"));
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.plan_hits, s.plan_misses), (1, 1));
        assert!((s.plan_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn any_key_component_change_is_a_miss() {
        let cache = PlanCache::new();
        cache.plan_or_insert(key(1, 2, 3), || leaf(1.0));
        cache.plan_or_insert(key(9, 2, 3), || leaf(2.0));
        cache.plan_or_insert(key(1, 9, 3), || leaf(3.0));
        cache.plan_or_insert(key(1, 2, 9), || leaf(4.0));
        assert_eq!(cache.stats().plan_misses, 4);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn predicate_extraction_is_memoized_per_query() {
        let cache = PlanCache::new();
        let a = cache.predicates_or_insert(7, QueryPredicates::default);
        let b = cache.predicates_or_insert(7, || panic!("must not re-extract"));
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.extract_hits, s.extract_misses), (1, 1));
    }

    #[test]
    fn take_window_resets_window_but_not_cumulative() {
        let cache = PlanCache::new();
        cache.plan_or_insert(key(1, 2, 3), || leaf(1.0));
        cache.plan_or_insert(key(1, 2, 3), || leaf(1.0));
        cache.predicates_or_insert(7, QueryPredicates::default);
        let w = cache.take_window();
        assert_eq!((w.plan_hits, w.plan_misses), (1, 1));
        assert_eq!((w.extract_hits, w.extract_misses), (0, 1));
        // The window restarts empty; cumulative counters keep the history.
        assert_eq!(cache.window_stats(), CacheStats::default());
        assert_eq!(cache.stats().plan_hits, 1);
        assert_eq!(cache.stats().plan_misses, 1);
        // A hit in the next window shows up in both views again.
        cache.plan_or_insert(key(1, 2, 3), || panic!("must not replan"));
        assert_eq!(cache.window_stats().plan_hits, 1);
        assert_eq!(cache.stats().plan_hits, 2);
    }

    #[test]
    fn cap_bounds_cached_plans_and_evicts_coldest() {
        let cache = PlanCache::with_cap(2);
        cache.plan_or_insert(key(1, 0, 0), || leaf(1.0));
        cache.plan_or_insert(key(2, 0, 0), || leaf(2.0));
        cache.plan_or_insert(key(1, 0, 0), || panic!("must not replan")); // refresh 1
        cache.plan_or_insert(key(3, 0, 0), || leaf(3.0)); // evicts 2
        assert_eq!(cache.len(), 2);
        cache.plan_or_insert(key(2, 0, 0), || leaf(2.0)); // re-planned: was evicted
        assert_eq!(cache.stats().plan_misses, 4);
    }

    #[test]
    fn empty_cache_reports_zero_rate() {
        let cache = PlanCache::new();
        assert_eq!(cache.stats().plan_hit_rate(), 0.0);
        assert!(cache.is_empty());
    }
}
