//! Hardware specification of the machine hosting the (simulated) DBMS.
//!
//! λ-Tune's prompt conveys exactly two hardware facts — main memory and CPU
//! core count (paper §3.1) — so that is what we model. The default matches
//! the paper's EC2 `p3.2xlarge` testbed (61 GB RAM, 8 vCPUs).

/// Bytes per gibibyte.
pub const GIB: u64 = 1024 * 1024 * 1024;
/// Bytes per mebibyte.
pub const MIB: u64 = 1024 * 1024;
/// Bytes per kibibyte.
pub const KIB: u64 = 1024;

/// Machine description handed to the tuners and the execution model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hardware {
    /// Main memory in bytes.
    pub memory_bytes: u64,
    /// Number of CPU cores.
    pub cores: u32,
}

impl Hardware {
    /// The paper's testbed: EC2 p3.2xlarge (61 GB RAM, 8 vCPUs).
    pub fn p3_2xlarge() -> Self {
        Hardware {
            memory_bytes: 61 * GIB,
            cores: 8,
        }
    }

    /// A small machine, useful in tests (4 GB, 2 cores).
    pub fn small() -> Self {
        Hardware {
            memory_bytes: 4 * GIB,
            cores: 2,
        }
    }

    /// Memory expressed in whole gibibytes (rounded down).
    pub fn memory_gib(&self) -> u64 {
        self.memory_bytes / GIB
    }
}

impl Default for Hardware {
    fn default() -> Self {
        Self::p3_2xlarge()
    }
}

/// Formats a byte count the way DBAs write knob values (`16GB`, `512MB`,
/// `64kB`); used when rendering configurations and prompts.
pub fn format_bytes(bytes: u64) -> String {
    if bytes >= GIB && bytes.is_multiple_of(GIB) {
        format!("{}GB", bytes / GIB)
    } else if bytes >= MIB && bytes.is_multiple_of(MIB) {
        format!("{}MB", bytes / MIB)
    } else if bytes >= KIB && bytes.is_multiple_of(KIB) {
        format!("{}kB", bytes / KIB)
    } else {
        format!("{bytes}B")
    }
}

/// Parses a byte count in DBA notation: `16GB`, `512MB`, `64kB`, `8192`,
/// case-insensitive units, optional `iB` spelling. A bare number is bytes.
pub fn parse_bytes(text: &str) -> Option<u64> {
    let t = text.trim();
    let split = t
        .find(|c: char| !c.is_ascii_digit() && c != '.')
        .unwrap_or(t.len());
    let (num, unit) = t.split_at(split);
    let value: f64 = num.parse().ok()?;
    let mult = match unit.trim().to_ascii_lowercase().as_str() {
        "b" | "" => 1.0,
        "k" | "kb" | "kib" => KIB as f64,
        "m" | "mb" | "mib" => MIB as f64,
        "g" | "gb" | "gib" => GIB as f64,
        "t" | "tb" | "tib" => (1024 * GIB) as f64,
        _ => return None,
    };
    Some((value * mult) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let h = Hardware::default();
        assert_eq!(h.memory_gib(), 61);
        assert_eq!(h.cores, 8);
    }

    #[test]
    fn format_picks_largest_exact_unit() {
        assert_eq!(format_bytes(16 * GIB), "16GB");
        assert_eq!(format_bytes(512 * MIB), "512MB");
        assert_eq!(format_bytes(64 * KIB), "64kB");
        assert_eq!(format_bytes(100), "100B");
    }

    #[test]
    fn parse_accepts_dba_notation() {
        assert_eq!(parse_bytes("16GB"), Some(16 * GIB));
        assert_eq!(parse_bytes("512mb"), Some(512 * MIB));
        assert_eq!(parse_bytes("64kB"), Some(64 * KIB));
        assert_eq!(parse_bytes("1.5GB"), Some((1.5 * GIB as f64) as u64));
        assert_eq!(parse_bytes("4GiB"), Some(4 * GIB));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_bytes("lots"), None);
        assert_eq!(parse_bytes("12XB"), None);
    }

    #[test]
    fn parse_bare_number_is_bytes() {
        assert_eq!(parse_bytes("8192B"), Some(8192));
        assert_eq!(parse_bytes("8192"), Some(8192));
    }
}
