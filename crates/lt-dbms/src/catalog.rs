//! Table and column catalog with optimizer statistics.
//!
//! The catalog plays the role of `pg_class` / `pg_statistic`: it records row
//! counts, row widths, per-column distinct counts and key properties. Column
//! names are globally unique across all three benchmark schemas (TPC-H,
//! TPC-DS subset, JOB), which lets the analyzer resolve unqualified column
//! references without scoping rules.

use lt_common::{ColumnId, Fingerprint, FxHasher, LtError, Result, TableId};
use std::collections::HashMap;
use std::hash::Hasher;

/// Default page size used by the cost model (PostgreSQL's 8 KiB).
pub const PAGE_SIZE: u64 = 8192;

/// Metadata for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMeta {
    /// Catalog-wide id.
    pub id: ColumnId,
    /// Owning table.
    pub table: TableId,
    /// Column name, lower-cased.
    pub name: String,
    /// Average stored width in bytes.
    pub width: u32,
    /// Number of distinct values (statistics estimate).
    pub ndv: f64,
    /// True when the column is (part of) the primary key.
    pub primary_key: bool,
    /// True when the column references another table's key.
    pub foreign_key: bool,
}

/// Metadata for one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableMeta {
    /// Catalog-wide id.
    pub id: TableId,
    /// Table name, lower-cased.
    pub name: String,
    /// Row count (statistics estimate).
    pub rows: u64,
    /// Columns in declaration order.
    pub columns: Vec<ColumnId>,
}

impl TableMeta {
    /// Total row width in bytes (sum of column widths), given the catalog.
    pub fn row_width(&self, catalog: &Catalog) -> u64 {
        self.columns
            .iter()
            .map(|c| catalog.column(*c).width as u64)
            .sum()
    }

    /// Heap size in pages under [`PAGE_SIZE`].
    pub fn pages(&self, catalog: &Catalog) -> u64 {
        let width = self.row_width(catalog).max(1);
        let per_page = (PAGE_SIZE / width).max(1);
        self.rows.div_ceil(per_page)
    }
}

/// The schema + statistics of one simulated database.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    tables: Vec<TableMeta>,
    columns: Vec<ColumnMeta>,
    table_names: HashMap<String, TableId>,
    column_names: HashMap<String, Vec<ColumnId>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts defining a table. Finish with [`TableBuilder::finish`].
    pub fn add_table(&mut self, name: &str, rows: u64) -> TableBuilder<'_> {
        let id = TableId::from(self.tables.len());
        let lname = name.to_ascii_lowercase();
        self.table_names.insert(lname.clone(), id);
        self.tables.push(TableMeta {
            id,
            name: lname,
            rows,
            columns: Vec::new(),
        });
        TableBuilder {
            catalog: self,
            table: id,
        }
    }

    /// Content fingerprint of the schema and statistics: table names, row
    /// counts and every per-column statistic the optimizer reads. Two
    /// catalogs with equal fingerprints plan identically (at equal seeds),
    /// which is what lets cross-session caches key on it.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = FxHasher::new();
        for t in &self.tables {
            h.write(t.name.as_bytes());
            h.write_u64(t.rows);
            h.write_u64(t.columns.len() as u64);
        }
        for c in &self.columns {
            h.write(c.name.as_bytes());
            h.write_u32(c.width);
            h.write_u64(c.ndv.to_bits());
            h.write_u8(c.primary_key as u8);
            h.write_u8(c.foreign_key as u8);
        }
        Fingerprint(h.finish())
    }

    /// All tables.
    pub fn tables(&self) -> &[TableMeta] {
        &self.tables
    }

    /// All columns.
    pub fn columns(&self) -> &[ColumnMeta] {
        &self.columns
    }

    /// Table metadata by id. Panics on a foreign id (program error).
    pub fn table(&self, id: TableId) -> &TableMeta {
        &self.tables[id.index()]
    }

    /// Column metadata by id. Panics on a foreign id (program error).
    pub fn column(&self, id: ColumnId) -> &ColumnMeta {
        &self.columns[id.index()]
    }

    /// Looks a table up by name (case-insensitive).
    pub fn table_by_name(&self, name: &str) -> Option<TableId> {
        self.table_names.get(&name.to_ascii_lowercase()).copied()
    }

    /// Resolves a column reference. With a qualifier the column must belong
    /// to that table; without one the name must be unambiguous.
    pub fn resolve_column(&self, qualifier: Option<&str>, column: &str) -> Result<ColumnId> {
        let lcol = column.to_ascii_lowercase();
        let candidates = self
            .column_names
            .get(&lcol)
            .ok_or_else(|| LtError::Catalog(format!("unknown column {column}")))?;
        match qualifier {
            Some(q) => {
                let tid = self.table_by_name(q).ok_or_else(|| {
                    LtError::Catalog(format!("unknown table {q} (resolving {q}.{column})"))
                })?;
                candidates
                    .iter()
                    .copied()
                    .find(|c| self.column(*c).table == tid)
                    .ok_or_else(|| LtError::Catalog(format!("table {q} has no column {column}")))
            }
            None => {
                if candidates.len() == 1 {
                    Ok(candidates[0])
                } else {
                    Err(LtError::Catalog(format!("ambiguous column {column}")))
                }
            }
        }
    }

    /// Multiplies every table's row count and column NDV by `factor`,
    /// modelling a larger scale factor of the same schema.
    pub fn scale(&mut self, factor: f64) {
        assert!(factor > 0.0, "scale factor must be positive");
        for t in &mut self.tables {
            t.rows = ((t.rows as f64) * factor).round().max(1.0) as u64;
        }
        for c in &mut self.columns {
            // Key columns scale linearly; categorical columns saturate.
            if c.primary_key || c.foreign_key {
                c.ndv = (c.ndv * factor).max(1.0);
            } else {
                c.ndv = (c.ndv * factor.sqrt()).max(1.0);
            }
        }
    }

    /// Total heap size over all tables in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.pages(self) * PAGE_SIZE).sum()
    }

    /// Rebuilds the name lookup maps (they are derived from the table and
    /// column lists, so any external construction path can restore them).
    pub fn rebuild_lookups(&mut self) {
        self.table_names = self.tables.iter().map(|t| (t.name.clone(), t.id)).collect();
        self.column_names.clear();
        for c in &self.columns {
            self.column_names
                .entry(c.name.clone())
                .or_default()
                .push(c.id);
        }
    }
}

/// Fluent builder for one table's columns.
pub struct TableBuilder<'a> {
    catalog: &'a mut Catalog,
    table: TableId,
}

impl<'a> TableBuilder<'a> {
    /// Adds a plain column.
    pub fn column(self, name: &str, width: u32, ndv: f64) -> Self {
        self.push(name, width, ndv, false, false)
    }

    /// Adds a primary-key column (NDV is forced to the row count).
    pub fn primary_key(self, name: &str, width: u32) -> Self {
        let rows = self.catalog.tables[self.table.index()].rows as f64;
        self.push(name, width, rows.max(1.0), true, false)
    }

    /// Adds a foreign-key column referencing `ndv` distinct parent keys.
    pub fn foreign_key(self, name: &str, width: u32, ndv: f64) -> Self {
        self.push(name, width, ndv, false, true)
    }

    fn push(self, name: &str, width: u32, ndv: f64, pk: bool, fk: bool) -> Self {
        let id = ColumnId::from(self.catalog.columns.len());
        let lname = name.to_ascii_lowercase();
        self.catalog.columns.push(ColumnMeta {
            id,
            table: self.table,
            name: lname.clone(),
            width,
            ndv: ndv.max(1.0),
            primary_key: pk,
            foreign_key: fk,
        });
        self.catalog.column_names.entry(lname).or_default().push(id);
        self.catalog.tables[self.table.index()].columns.push(id);
        self
    }

    /// Finishes the table and returns its id.
    pub fn finish(self) -> TableId {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catalog {
        let mut c = Catalog::new();
        c.add_table("orders", 1_500_000)
            .primary_key("o_orderkey", 8)
            .foreign_key("o_custkey", 8, 100_000.0)
            .column("o_totalprice", 8, 800_000.0)
            .finish();
        c.add_table("customer", 150_000)
            .primary_key("c_custkey", 8)
            .column("c_name", 25, 150_000.0)
            .finish();
        c
    }

    #[test]
    fn builder_registers_tables_and_columns() {
        let c = sample();
        assert_eq!(c.tables().len(), 2);
        assert_eq!(c.columns().len(), 5);
        let t = c.table(c.table_by_name("ORDERS").unwrap());
        assert_eq!(t.rows, 1_500_000);
        assert_eq!(t.columns.len(), 3);
    }

    #[test]
    fn primary_key_ndv_equals_rows() {
        let c = sample();
        let id = c.resolve_column(None, "o_orderkey").unwrap();
        assert_eq!(c.column(id).ndv, 1_500_000.0);
        assert!(c.column(id).primary_key);
    }

    #[test]
    fn resolve_qualified_and_bare() {
        let c = sample();
        let bare = c.resolve_column(None, "c_name").unwrap();
        let qual = c.resolve_column(Some("customer"), "c_name").unwrap();
        assert_eq!(bare, qual);
    }

    #[test]
    fn resolve_errors() {
        let c = sample();
        assert!(c.resolve_column(None, "nope").is_err());
        assert!(c.resolve_column(Some("orders"), "c_name").is_err());
        assert!(c.resolve_column(Some("nope"), "c_name").is_err());
    }

    #[test]
    fn pages_and_width() {
        let c = sample();
        let t = c.table(c.table_by_name("customer").unwrap());
        assert_eq!(t.row_width(&c), 33);
        // 8192 / 33 = 248 rows per page; 150000 / 248 = 605 pages (ceil).
        assert_eq!(t.pages(&c), 150_000u64.div_ceil(8192 / 33));
    }

    #[test]
    fn scale_multiplies_rows_and_key_ndv() {
        let mut c = sample();
        let before = c.table(c.table_by_name("orders").unwrap()).rows;
        c.scale(10.0);
        let t = c.table(c.table_by_name("orders").unwrap());
        assert_eq!(t.rows, before * 10);
        let pk = c.resolve_column(None, "o_orderkey").unwrap();
        assert_eq!(c.column(pk).ndv, 15_000_000.0);
        // Non-key NDV scales sub-linearly.
        let price = c.resolve_column(None, "o_totalprice").unwrap();
        assert!(c.column(price).ndv < 8_000_000.0 * 10.0);
    }

    #[test]
    fn total_bytes_is_positive() {
        let c = sample();
        assert!(c.total_bytes() > 0);
    }
}
