//! Small copyable identifiers for catalog objects and queries.
//!
//! Using `u32` newtypes (instead of interned strings) keeps the hot paths of
//! the optimizer and the DP scheduler allocation-free.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index behind this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                Self(v as u32)
            }
        }
    };
}

id_type!(
    /// Identifies a table in a [`Catalog`](https://docs.rs/lt-dbms).
    TableId,
    "t"
);
id_type!(
    /// Identifies a column, unique across the whole catalog (not per table).
    ColumnId,
    "c"
);
id_type!(
    /// Identifies a query within a workload.
    QueryId,
    "q"
);
id_type!(
    /// Identifies a (possibly hypothetical) index.
    IndexId,
    "i"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(TableId(3).to_string(), "t3");
        assert_eq!(ColumnId(7).to_string(), "c7");
        assert_eq!(QueryId(0).to_string(), "q0");
        assert_eq!(IndexId(12).to_string(), "i12");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(ColumnId(1));
        set.insert(ColumnId(1));
        set.insert(ColumnId(2));
        assert_eq!(set.len(), 2);
        assert!(ColumnId(1) < ColumnId(2));
    }

    #[test]
    fn conversions_roundtrip() {
        let id = QueryId::from(5usize);
        assert_eq!(id.index(), 5);
        assert_eq!(QueryId::from(5u32), id);
    }
}
