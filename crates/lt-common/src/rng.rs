//! Deterministic random number generation.
//!
//! Every stochastic component in the workspace (LLM sampling temperature,
//! baseline tuners' exploration, workload parameter instantiation) takes an
//! explicit seed so that the whole evaluation matrix is reproducible.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a 64-bit seed.
///
/// All randomized components accept a seed and derive their generator through
/// this single function so that a run is reproducible end to end.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label.
///
/// Used to hand independent deterministic streams to subcomponents (e.g. the
/// k-th LLM call in a tuning run) without correlated sampling. This is a
/// 64-bit mix based on SplitMix64, which is statistically adequate for
/// seeding purposes.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u32> = seeded_rng(42).sample_iter(rand::distributions::Standard).take(8).collect();
        let b: Vec<u32> = seeded_rng(42).sample_iter(rand::distributions::Standard).take(8).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<u32> = seeded_rng(1).sample_iter(rand::distributions::Standard).take(8).collect();
        let b: Vec<u32> = seeded_rng(2).sample_iter(rand::distributions::Standard).take(8).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn derived_seeds_are_distinct_across_streams() {
        let parent = 7;
        let s: Vec<u64> = (0..100).map(|i| derive_seed(parent, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
    }

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_ne!(derive_seed(1, 2), derive_seed(2, 1));
    }
}
