//! Deterministic random number generation.
//!
//! Every stochastic component in the workspace (LLM sampling temperature,
//! baseline tuners' exploration, workload parameter instantiation) takes an
//! explicit seed so that the whole evaluation matrix is reproducible.
//!
//! The generator is a self-contained xoshiro256** seeded through SplitMix64
//! (the reference seeding procedure), so the workspace builds with no
//! external crates and every stream is stable across platforms.

use std::ops::{Range, RangeInclusive};

/// A deterministic pseudo-random generator (xoshiro256**).
///
/// Statistically strong and extremely fast; not cryptographically secure,
/// which is irrelevant here — all uses are simulation and exploration.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64, as recommended
    /// by the xoshiro authors (avoids correlated low-entropy states).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform integer in `[0, n)`. Panics when `n == 0`.
    fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below called with empty range");
        // Multiply-shift (Lemire): unbiased enough for simulation purposes
        // and branch-free.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform sample from a range; see [`SampleRange`] for supported types.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform choice of one slice element (None on an empty slice).
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_below(slice.len() as u64) as usize])
        }
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_below((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.gen_below((hi - lo) as u64 + 1) as usize
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut Rng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_below(self.end - self.start)
    }
}

impl SampleRange for Range<u8> {
    type Output = u8;
    fn sample(self, rng: &mut Rng) -> u8 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_below((self.end - self.start) as u64) as u8
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.gen_f64() * (hi - lo)
    }
}

/// Creates a deterministic RNG from a 64-bit seed.
///
/// All randomized components accept a seed and derive their generator through
/// this single function so that a run is reproducible end to end.
pub fn seeded_rng(seed: u64) -> Rng {
    Rng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label.
///
/// Used to hand independent deterministic streams to subcomponents (e.g. the
/// k-th LLM call in a tuning run) without correlated sampling. This is a
/// 64-bit mix based on SplitMix64, which is statistically adequate for
/// seeding purposes.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut r1 = seeded_rng(42);
        let mut r2 = seeded_rng(42);
        let a: Vec<u64> = (0..8).map(|_| r1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| r2.next_u64()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut r1 = seeded_rng(1);
        let mut r2 = seeded_rng(2);
        let a: Vec<u64> = (0..8).map(|_| r1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| r2.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // SplitMix64(0) produces the first four states; the sequence is then
        // fixed forever — guards against accidental algorithm changes.
        let mut r = Rng::seed_from_u64(0);
        let first = r.next_u64();
        let mut r2 = Rng::seed_from_u64(0);
        assert_eq!(first, r2.next_u64());
        // SplitMix64 known values for seed 0.
        let mut probe = Rng::seed_from_u64(0);
        assert_eq!(probe.s[0], 0xE220_A839_7B1D_CDAF);
        assert_eq!(probe.s[1], 0x6E78_9E6A_A1B9_65F4);
        let _ = probe.next_u64();
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut r = seeded_rng(9);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = seeded_rng(5);
        for _ in 0..1000 {
            let a = r.gen_range(3..17usize);
            assert!((3..17).contains(&a));
            let b = r.gen_range(2..=9usize);
            assert!((2..=9).contains(&b));
            let c = r.gen_range(-1.5..=1.5f64);
            assert!((-1.5..=1.5).contains(&c));
            let d = r.gen_range(0..3u8);
            assert!(d < 3);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut r = seeded_rng(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn choose_and_shuffle_are_deterministic() {
        let items = [10, 20, 30, 40, 50];
        let a = *seeded_rng(3).choose(&items).unwrap();
        let b = *seeded_rng(3).choose(&items).unwrap();
        assert_eq!(a, b);
        let mut v1: Vec<u32> = (0..20).collect();
        let mut v2 = v1.clone();
        seeded_rng(8).shuffle(&mut v1);
        seeded_rng(8).shuffle(&mut v2);
        assert_eq!(v1, v2);
        let mut sorted = v1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_on_empty_slice_is_none() {
        let empty: [u8; 0] = [];
        assert!(seeded_rng(1).choose(&empty).is_none());
    }

    #[test]
    fn derived_seeds_are_distinct_across_streams() {
        let parent = 7;
        let s: Vec<u64> = (0..100).map(|i| derive_seed(parent, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
    }

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_ne!(derive_seed(1, 2), derive_seed(2, 1));
    }
}
