//! Minimal JSON value model and writer for benchmark result output.
//!
//! The workspace builds with zero external crates, so the `results/*.json`
//! artifacts are produced by this module instead of `serde_json`. Only what
//! the benchmark binaries need is implemented: building values (via `From`
//! impls and the [`crate::json!`] macro) and deterministic pretty-printing.
//! Object keys keep insertion order; floats print through Rust's shortest
//! round-trip formatting, so equal inputs always produce byte-equal output.

use std::collections::BTreeMap;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also produced by non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A finite double.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Serializes with 2-space indentation and a stable layout.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => write_f64(out, *f),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; follow serde_json's `json!` behaviour.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep whole floats recognizably floating-point.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes a value with 2-space indentation (serde_json-style entry point).
pub fn to_string_pretty(value: &Value) -> String {
    value.to_string_pretty()
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        if v.is_finite() {
            Value::Float(v)
        } else {
            Value::Null
        }
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::from(v as f64)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Int(v as i64)
            }
        })*
    };
}
from_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

// Reference conversions, so `json!` call sites can pass borrowed loop
// variables (e.g. `&f64` from destructured tuple iteration) directly.
macro_rules! from_ref {
    ($($t:ty),*) => {
        $(impl From<&$t> for Value {
            fn from(v: &$t) -> Self {
                Value::from(*v)
            }
        })*
    };
}
from_ref!(bool, f64, f32, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<K: Into<String>, V: Into<Value>> From<BTreeMap<K, V>> for Value {
    fn from(map: BTreeMap<K, V>) -> Self {
        Value::Object(map.into_iter().map(|(k, v)| (k.into(), v.into())).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

/// Builds a [`Value`] from an object/array literal, mirroring the subset of
/// `serde_json::json!` the benchmark binaries use: string-literal keys with
/// expression values, array literals, or a single expression convertible via
/// `From`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::json::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::json::Value::Object(vec![
            $( ($key.to_string(), $crate::json::Value::from($value)) ),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::json::Value::Array(vec![
            $( $crate::json::Value::from($elem) ),*
        ])
    };
    ($other:expr) => { $crate::json::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Value::Null.to_string_pretty(), "null");
        assert_eq!(Value::Bool(true).to_string_pretty(), "true");
        assert_eq!(Value::Int(-3).to_string_pretty(), "-3");
        assert_eq!(Value::Float(1.5).to_string_pretty(), "1.5");
        assert_eq!(Value::Float(2.0).to_string_pretty(), "2.0");
        assert_eq!(Value::from(f64::NAN).to_string_pretty(), "null");
        assert_eq!(Value::from("a\"b\n").to_string_pretty(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = json!({ "z": 1, "a": 2.5, "nested": json!({ "k": "v" }) });
        assert_eq!(
            v.to_string_pretty(),
            "{\n  \"z\": 1,\n  \"a\": 2.5,\n  \"nested\": {\n    \"k\": \"v\"\n  }\n}"
        );
    }

    #[test]
    fn arrays_and_maps_convert() {
        let v = json!({ "xs": vec![1u64, 2, 3] });
        assert!(v.to_string_pretty().contains("\"xs\": [\n    1,\n    2,\n    3\n  ]"));
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2.0f64);
        m.insert("a".to_string(), 1.0f64);
        let v = Value::from(m);
        // BTreeMap iterates sorted, so keys come out sorted.
        assert_eq!(v.to_string_pretty(), "{\n  \"a\": 1.0,\n  \"b\": 2.0\n}");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Value::Array(vec![]).to_string_pretty(), "[]");
        assert_eq!(Value::Object(vec![]).to_string_pretty(), "{}");
    }

    #[test]
    fn deterministic_output() {
        let build = || json!({ "rows": vec![json!({ "q": "q1", "t": 0.25 })], "n": 1 });
        assert_eq!(build().to_string_pretty(), build().to_string_pretty());
    }
}
