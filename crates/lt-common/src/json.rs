//! Minimal JSON value model, writer and parser for benchmark artifacts.
//!
//! The workspace builds with zero external crates, so the `results/*.json`
//! artifacts are produced by this module instead of `serde_json`. Only what
//! the benchmark binaries need is implemented: building values (via `From`
//! impls and the [`crate::json!`] macro), deterministic pretty-printing, and
//! a recursive-descent [`parse`] used by the trace-validation tooling.
//! Object keys keep insertion order; floats print through Rust's shortest
//! round-trip formatting, so equal inputs always produce byte-equal output.

use std::collections::BTreeMap;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also produced by non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A finite double.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array, or `None`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields of an object in insertion order, or `None`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The string content, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content as `f64` (ints widen), or `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The integer content, or `None` (floats do not narrow).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean content, or `None`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a stable layout.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => write_f64(out, *f),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; follow serde_json's `json!` behaviour.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep whole floats recognizably floating-point.
        out.push_str(&format!("{f:.1}"));
    } else {
        let s = format!("{f}");
        // Rust's Display never uses exponent notation, so whole floats at
        // or above 1e15 print without a decimal point and would parse back
        // as integers; restore the marker to keep round trips type-exact.
        let needs_marker = !s.contains('.');
        out.push_str(&s);
        if needs_marker {
            out.push_str(".0");
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes a value with 2-space indentation (serde_json-style entry point).
pub fn to_string_pretty(value: &Value) -> String {
    value.to_string_pretty()
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        if v.is_finite() {
            Value::Float(v)
        } else {
            Value::Null
        }
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::from(v as f64)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Int(v as i64)
            }
        })*
    };
}
from_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

// Reference conversions, so `json!` call sites can pass borrowed loop
// variables (e.g. `&f64` from destructured tuple iteration) directly.
macro_rules! from_ref {
    ($($t:ty),*) => {
        $(impl From<&$t> for Value {
            fn from(v: &$t) -> Self {
                Value::from(*v)
            }
        })*
    };
}
from_ref!(bool, f64, f32, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<K: Into<String>, V: Into<Value>> From<BTreeMap<K, V>> for Value {
    fn from(map: BTreeMap<K, V>) -> Self {
        Value::Object(map.into_iter().map(|(k, v)| (k.into(), v.into())).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

/// Builds a [`Value`] from an object/array literal, mirroring the subset of
/// `serde_json::json!` the benchmark binaries use: string-literal keys with
/// expression values, array literals, or a single expression convertible via
/// `From`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::json::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::json::Value::Object(vec![
            $( ($key.to_string(), $crate::json::Value::from($value)) ),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::json::Value::Array(vec![
            $( $crate::json::Value::from($elem) ),*
        ])
    };
    ($other:expr) => { $crate::json::Value::from($other) };
}

/// Parses a JSON document. Accepts exactly what the writer emits (plus
/// arbitrary standard JSON): the usual scalars, `\uXXXX` escapes with
/// surrogate pairs, nested arrays/objects. Trailing garbage is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

/// Error from [`parse`], with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset at which it went wrong.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences are copied as-is: the input
                    // is a &str, so byte boundaries are already valid.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ascii in \\u escape"))?;
        let value = u32::from_str_radix(digits, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(value)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid float literal"))
        } else {
            // Integers overflowing i64 fall back to f64, like serde_json's
            // arbitrary-precision-off mode.
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err("invalid integer literal")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Value::Null.to_string_pretty(), "null");
        assert_eq!(Value::Bool(true).to_string_pretty(), "true");
        assert_eq!(Value::Int(-3).to_string_pretty(), "-3");
        assert_eq!(Value::Float(1.5).to_string_pretty(), "1.5");
        assert_eq!(Value::Float(2.0).to_string_pretty(), "2.0");
        assert_eq!(Value::from(f64::NAN).to_string_pretty(), "null");
        assert_eq!(Value::from("a\"b\n").to_string_pretty(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = json!({ "z": 1, "a": 2.5, "nested": json!({ "k": "v" }) });
        assert_eq!(
            v.to_string_pretty(),
            "{\n  \"z\": 1,\n  \"a\": 2.5,\n  \"nested\": {\n    \"k\": \"v\"\n  }\n}"
        );
    }

    #[test]
    fn arrays_and_maps_convert() {
        let v = json!({ "xs": vec![1u64, 2, 3] });
        assert!(v
            .to_string_pretty()
            .contains("\"xs\": [\n    1,\n    2,\n    3\n  ]"));
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2.0f64);
        m.insert("a".to_string(), 1.0f64);
        let v = Value::from(m);
        // BTreeMap iterates sorted, so keys come out sorted.
        assert_eq!(v.to_string_pretty(), "{\n  \"a\": 1.0,\n  \"b\": 2.0\n}");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Value::Array(vec![]).to_string_pretty(), "[]");
        assert_eq!(Value::Object(vec![]).to_string_pretty(), "{}");
    }

    #[test]
    fn deterministic_output() {
        let build = || json!({ "rows": vec![json!({ "q": "q1", "t": 0.25 })], "n": 1 });
        assert_eq!(build().to_string_pretty(), build().to_string_pretty());
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let doc = json!({
            "name": "fig6",
            "n": 3,
            "t": 1.25,
            "whole": 2.0,
            "neg": -17,
            "flag": true,
            "none": json!(null),
            "xs": vec![1u64, 2, 3],
            "nested": json!({ "s": "a\"b\n\\c" }),
            "empty_arr": Value::Array(vec![]),
            "empty_obj": Value::Object(vec![]),
        });
        let text = doc.to_string_pretty();
        let parsed = parse(&text).expect("writer output must parse");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_scalars_and_accessors() {
        let v = parse("{\"a\": [1, 2.5, \"x\", null, false], \"b\": -3e2}").unwrap();
        let xs = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(xs[0].as_i64(), Some(1));
        assert_eq!(xs[1].as_f64(), Some(2.5));
        assert_eq!(xs[2].as_str(), Some("x"));
        assert_eq!(xs[3], Value::Null);
        assert_eq!(xs[4].as_bool(), Some(false));
        assert_eq!(v.get("b").and_then(Value::as_f64), Some(-300.0));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_unicode_escapes() {
        let v = parse("\"\\u00e9 \\ud83d\\ude00 caf\u{e9}\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{e9} \u{1F600} caf\u{e9}"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        let err = parse("[1, !]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn parse_int_overflow_widens_to_float() {
        let v = parse("99999999999999999999").unwrap();
        assert!(matches!(v, Value::Float(_)));
    }
}
