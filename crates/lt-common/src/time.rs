//! Virtual time.
//!
//! The paper evaluates configurations under wall-clock timeouts; here the
//! DBMS simulator *charges* simulated seconds to a [`VirtualClock`]. All
//! timeout logic (geometric rounds, configuration-specific budgets) operates
//! on these values, so the selector's bounded-cost guarantee (Theorem 4.3)
//! can be asserted exactly in tests.

use std::cell::Cell;
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A span of virtual time in seconds.
///
/// `Secs` is a thin `f64` wrapper that is totally ordered (NaN is forbidden
/// by construction: every constructor asserts) so it can be used as a key in
/// min/max scans without `partial_cmp().unwrap()` noise at call sites.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Secs(f64);

impl Secs {
    /// Zero seconds.
    pub const ZERO: Secs = Secs(0.0);
    /// Positive infinity; used as the "no timeout yet" sentinel.
    pub const INFINITY: Secs = Secs(f64::INFINITY);

    /// Wraps a raw second count. Panics on NaN (a NaN duration is always a
    /// bug upstream, never meaningful data).
    #[inline]
    pub fn new(v: f64) -> Secs {
        assert!(!v.is_nan(), "Secs cannot be NaN");
        Secs(v)
    }

    /// The raw number of seconds.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// True if this span is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: Secs) -> Secs {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: Secs) -> Secs {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Clamps negative spans to zero (useful for "remaining budget" math).
    #[inline]
    pub fn clamp_non_negative(self) -> Secs {
        if self.0 < 0.0 {
            Secs::ZERO
        } else {
            self
        }
    }
}

impl Eq for Secs {}

impl PartialOrd for Secs {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Secs {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // NaN is excluded by construction, so total order is well-defined.
        self.0.partial_cmp(&other.0).expect("Secs is never NaN")
    }
}

impl Add for Secs {
    type Output = Secs;
    #[inline]
    fn add(self, rhs: Secs) -> Secs {
        Secs::new(self.0 + rhs.0)
    }
}

impl AddAssign for Secs {
    #[inline]
    fn add_assign(&mut self, rhs: Secs) {
        *self = *self + rhs;
    }
}

impl Sub for Secs {
    type Output = Secs;
    #[inline]
    fn sub(self, rhs: Secs) -> Secs {
        Secs::new(self.0 - rhs.0)
    }
}

impl SubAssign for Secs {
    #[inline]
    fn sub_assign(&mut self, rhs: Secs) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Secs {
    type Output = Secs;
    #[inline]
    fn mul(self, rhs: f64) -> Secs {
        Secs::new(self.0 * rhs)
    }
}

impl Div<f64> for Secs {
    type Output = Secs;
    #[inline]
    fn div(self, rhs: f64) -> Secs {
        Secs::new(self.0 / rhs)
    }
}

impl Div<Secs> for Secs {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Secs) -> f64 {
        self.0 / rhs.0
    }
}

impl Neg for Secs {
    type Output = Secs;
    #[inline]
    fn neg(self) -> Secs {
        Secs::new(-self.0)
    }
}

impl Sum for Secs {
    fn sum<I: Iterator<Item = Secs>>(iter: I) -> Secs {
        iter.fold(Secs::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Secs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_infinite() {
            write!(f, "inf")
        } else if let Some(prec) = f.precision() {
            write!(f, "{:.*}s", prec, self.0)
        } else {
            write!(f, "{:.3}s", self.0)
        }
    }
}

/// Convenience constructor: `secs(1.5)` reads better than `Secs::new(1.5)`.
#[inline]
pub fn secs(v: f64) -> Secs {
    Secs::new(v)
}

/// A monotonically advancing virtual clock.
///
/// The DBMS simulator advances this clock as it "executes" queries and
/// builds indexes; the tuners read it to produce optimization-time /
/// best-execution-time trajectories (Figures 3, 4 and 6 of the paper).
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: Cell<f64>,
}

impl VirtualClock {
    /// A clock starting at t = 0.
    pub fn new() -> Self {
        Self {
            now: Cell::new(0.0),
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Secs {
        Secs::new(self.now.get())
    }

    /// Advances the clock by `d`. Panics if `d` is negative or non-finite:
    /// virtual time only moves forward.
    pub fn advance(&self, d: Secs) {
        assert!(
            d.as_f64() >= 0.0 && d.is_finite(),
            "clock can only advance by a finite, non-negative span (got {d})"
        );
        self.now.set(self.now.get() + d.as_f64());
    }

    /// Resets the clock to t = 0 (used between independent tuning runs).
    pub fn reset(&self) {
        self.now.set(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_ordering() {
        let a = secs(2.0);
        let b = secs(3.0);
        assert_eq!(a + b, secs(5.0));
        assert_eq!(b - a, secs(1.0));
        assert_eq!(a * 2.0, secs(4.0));
        assert_eq!(b / 2.0, secs(1.5));
        assert!((b / a - 1.5).abs() < 1e-12);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn infinity_sentinel_orders_above_everything_finite() {
        assert!(Secs::INFINITY > secs(1e18));
        assert!(!Secs::INFINITY.is_finite());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        let _ = Secs::new(f64::NAN);
    }

    #[test]
    fn clamp_non_negative() {
        assert_eq!(secs(-1.0).clamp_non_negative(), Secs::ZERO);
        assert_eq!(secs(1.0).clamp_non_negative(), secs(1.0));
    }

    #[test]
    fn sum_of_spans() {
        let total: Secs = [secs(1.0), secs(2.0), secs(3.5)].into_iter().sum();
        assert_eq!(total, secs(6.5));
    }

    #[test]
    fn clock_advances_monotonically() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), Secs::ZERO);
        clock.advance(secs(1.5));
        clock.advance(secs(0.5));
        assert_eq!(clock.now(), secs(2.0));
        clock.reset();
        assert_eq!(clock.now(), Secs::ZERO);
    }

    #[test]
    #[should_panic(expected = "advance")]
    fn clock_rejects_negative_advance() {
        VirtualClock::new().advance(secs(-1.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(secs(1.2345).to_string(), "1.234s");
        assert_eq!(format!("{:.1}", secs(1.25)), "1.2s");
        assert_eq!(Secs::INFINITY.to_string(), "inf");
    }
}
