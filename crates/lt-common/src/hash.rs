//! Fast, deterministic 64-bit hashing for cache keys and fingerprints.
//!
//! [`FxHasher`] is an FxHash-style multiply-rotate hasher: not DoS-resistant
//! (irrelevant here — inputs are our own queries and knob names) but several
//! times faster than SipHash and, unlike `DefaultHasher`, guaranteed stable
//! across Rust releases, which matters because fingerprints key the plan
//! cache and feed deterministic simulation noise.

use std::hash::{Hash, Hasher};

const ROTATE: u32 = 5;
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style 64-bit hasher.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// Fresh hasher with zero state.
    pub fn new() -> Self {
        FxHasher { hash: 0 }
    }

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Mix in the length so "a" and "a\0" differ.
            self.add(u64::from_le_bytes(buf) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// CRC-32 (IEEE 802.3) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) checksum.
///
/// Unlike [`FxHasher`], this detects torn and bit-flipped bytes reliably,
/// which is what the write-ahead log needs; it is not a general-purpose
/// hash. Matches the polynomial used by zlib/Ethernet, so log files can be
/// checked with standard external tools.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Hashes one `Hash` value through [`FxHasher`].
pub fn hash_one<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// A 64-bit content fingerprint.
///
/// Thin wrapper distinguishing "this u64 identifies content" from arbitrary
/// integers in cache-key signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// Fingerprint of any hashable value.
    pub fn of<T: Hash + ?Sized>(value: &T) -> Self {
        Fingerprint(hash_one(value))
    }

    /// Combines two fingerprints order-dependently.
    pub fn combine(self, other: Fingerprint) -> Self {
        Fingerprint((self.0.rotate_left(ROTATE) ^ other.0).wrapping_mul(SEED))
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_one("hello world"), hash_one("hello world"));
        assert_eq!(hash_one(&(1u64, 2u64)), hash_one(&(1u64, 2u64)));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(hash_one("a"), hash_one("b"));
        assert_ne!(hash_one("a"), hash_one("a\0"));
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
    }

    #[test]
    fn fingerprint_combine_is_order_dependent() {
        let a = Fingerprint::of("a");
        let b = Fingerprint::of("b");
        assert_ne!(a.combine(b), b.combine(a));
        assert_eq!(
            a.combine(b),
            Fingerprint::of("a").combine(Fingerprint::of("b"))
        );
    }

    #[test]
    fn string_hash_spreads_across_lengths() {
        let hashes: Vec<u64> = (0..64).map(|n| hash_one(&"x".repeat(n))).collect();
        let mut dedup = hashes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), hashes.len());
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", Fingerprint(0xABC)), "0000000000000abc");
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }
}
