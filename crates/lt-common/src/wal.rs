//! Zero-dependency framed write-ahead log.
//!
//! This module is the byte-level layer under `lt-serve`'s durable session
//! log: it knows nothing about sessions, only about getting opaque payloads
//! onto disk such that a crash at any instant loses at most the unsynced
//! tail and never corrupts earlier records.
//!
//! # File format
//!
//! ```text
//! magic: 8 bytes          b"LTWAL1\0\n"
//! frame: repeated         [len: u32 LE][crc: u32 LE CRC-32(payload)][payload]
//! ```
//!
//! Readers stop at the first incomplete or checksum-failing frame and report
//! how many trailing bytes were dropped — a torn tail is an expected crash
//! artifact, not an error. Corruption *before* the tail is indistinguishable
//! from a torn tail by design: everything from the first bad frame on is
//! dropped, which is the only safe interpretation without per-record
//! sequence numbers.
//!
//! # Fsync policy
//!
//! [`LogWriter::append`] batches fsyncs: the file is flushed + `fdatasync`'d
//! every `sync_every` records (default 8, `LT_WAL_SYNC_EVERY`). Callers that
//! just acknowledged something to a client call [`LogWriter::sync`]
//! explicitly. `LT_WAL_SYNC=0` disables fsync entirely (for tests and
//! tmpfs CI runners where durability is moot but replay logic still runs).
//!
//! # Crash injection
//!
//! `LT_WAL_CRASH_AT=<n>` makes the process `abort()` immediately after the
//! n-th appended record (1-based) is made durable; with `LT_WAL_CRASH_TORN=1`
//! a deliberately truncated frame is written first, simulating a tear in the
//! middle of a frame write. The crash-injection harness enumerates kill
//! points with these knobs; production never sets them.

use crate::hash::crc32;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Leading magic bytes of every log file.
pub const MAGIC: &[u8; 8] = b"LTWAL1\0\n";

/// Sanity cap on a single record; anything larger is treated as corruption.
pub const MAX_RECORD_BYTES: usize = 1 << 26;

/// Durability and crash-injection knobs, normally read from the environment.
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Whether to fsync at all (`LT_WAL_SYNC`, default on).
    pub sync: bool,
    /// Auto-fsync after this many appended records (`LT_WAL_SYNC_EVERY`).
    pub sync_every: u64,
    /// Abort the process after the n-th append (`LT_WAL_CRASH_AT`, 1-based).
    pub crash_at: Option<u64>,
    /// Write a torn half-frame before crashing (`LT_WAL_CRASH_TORN`).
    pub crash_torn: bool,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            sync: true,
            sync_every: 8,
            crash_at: None,
            crash_torn: false,
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

impl WalOptions {
    /// Reads the `LT_WAL_*` knobs from the environment.
    pub fn from_env() -> WalOptions {
        let mut o = WalOptions::default();
        if let Ok(v) = std::env::var("LT_WAL_SYNC") {
            let v = v.trim();
            o.sync =
                !(v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false"));
        }
        if let Some(n) = env_u64("LT_WAL_SYNC_EVERY") {
            o.sync_every = n.max(1);
        }
        o.crash_at = env_u64("LT_WAL_CRASH_AT").filter(|&n| n > 0);
        o.crash_torn = std::env::var("LT_WAL_CRASH_AT").is_ok()
            && env_u64("LT_WAL_CRASH_TORN").unwrap_or(0) == 1;
        o
    }
}

/// Append handle to a framed log file.
#[derive(Debug)]
pub struct LogWriter {
    file: BufWriter<File>,
    opts: WalOptions,
    appended: u64,
    since_sync: u64,
}

impl LogWriter {
    /// Opens `path` for appending, writing the magic header if the file is
    /// new or empty. The caller is responsible for having truncated any torn
    /// tail first (see [`read_log`] + [`rewrite_log`]); appending after
    /// garbage would hide the new records from replay.
    pub fn open(path: &Path, opts: WalOptions) -> io::Result<LogWriter> {
        let fresh = fs::metadata(path).map(|m| m.len() == 0).unwrap_or(true);
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let mut w = LogWriter {
            file: BufWriter::new(file),
            opts,
            appended: 0,
            since_sync: 0,
        };
        if fresh {
            w.file.write_all(MAGIC)?;
            w.force_sync()?;
        }
        Ok(w)
    }

    /// Number of records appended through this writer (not counting records
    /// already in the file when it was opened).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Appends one framed record, honoring the batch-fsync policy and the
    /// crash-injection knobs.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        assert!(payload.len() <= MAX_RECORD_BYTES, "wal record too large");
        self.file.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.file.write_all(&crc32(payload).to_le_bytes())?;
        self.file.write_all(payload)?;
        self.appended += 1;
        self.since_sync += 1;
        if self.opts.crash_at == Some(self.appended) {
            self.crash_now();
        }
        if self.since_sync >= self.opts.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Appends and immediately makes the record durable. Used at
    /// acknowledgement points (session created, terminal transition, feed).
    pub fn append_sync(&mut self, payload: &[u8]) -> io::Result<()> {
        self.append(payload)?;
        self.sync()
    }

    /// Flushes buffered frames and, unless fsync is disabled, `fdatasync`s.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.flush()?;
        if self.opts.sync {
            self.file.get_ref().sync_data()?;
        }
        self.since_sync = 0;
        Ok(())
    }

    fn force_sync(&mut self) -> io::Result<()> {
        self.file.flush()?;
        self.file.get_ref().sync_data()
    }

    /// Crash-injection kill point: make everything so far durable (the
    /// harness asserts on what *was* acknowledged), optionally write a torn
    /// half-frame, then abort without unwinding — exactly what a SIGKILL or
    /// power loss leaves behind.
    fn crash_now(&mut self) -> ! {
        let _ = self.force_sync();
        if self.opts.crash_torn {
            // A frame header promising 64 bytes followed by only 7: replay
            // must drop this tail and keep every record before it.
            let _ = self.file.write_all(&64u32.to_le_bytes());
            let _ = self.file.write_all(&0xDEAD_BEEFu32.to_le_bytes());
            let _ = self.file.write_all(b"torn...");
            let _ = self.force_sync();
        }
        eprintln!(
            "lt-wal: LT_WAL_CRASH_AT={} reached, aborting",
            self.appended
        );
        std::process::abort();
    }
}

/// How the tail of a log file looked on read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tail {
    /// File ended exactly on a frame boundary.
    Clean,
    /// File ended mid-frame (torn write); `dropped` trailing bytes ignored.
    Torn { dropped: u64 },
    /// A complete frame failed its checksum or had an absurd length;
    /// everything from it on (`dropped` bytes) was ignored.
    Corrupt { dropped: u64 },
}

/// Result of scanning a log file.
#[derive(Debug)]
pub struct ReadLog {
    /// Payloads of every intact frame, in append order.
    pub records: Vec<Vec<u8>>,
    /// State of the file's tail.
    pub tail: Tail,
}

/// Streaming frame reader: yields one intact payload at a time without
/// buffering the rest of the file, so a recovery pass over a large redo
/// log (lt-store's page-image log) holds one record in memory, not the
/// log. Iteration stops at the first incomplete or checksum-failing
/// frame; [`FrameIter::tail`] then reports how the file ended, exactly as
/// [`read_log`] would have (which is now a thin collector over this).
#[derive(Debug)]
pub struct FrameIter {
    reader: Option<BufReader<File>>,
    /// Bytes of the file not yet consumed (past the magic header).
    remaining: u64,
    tail: Option<Tail>,
}

impl FrameIter {
    fn finished(tail: Tail) -> FrameIter {
        FrameIter {
            reader: None,
            remaining: 0,
            tail: Some(tail),
        }
    }

    /// How the file's tail looked: `None` while records remain, `Some`
    /// once the iterator is exhausted (or was exhausted at open).
    pub fn tail(&self) -> Option<Tail> {
        self.tail
    }
}

impl Iterator for FrameIter {
    type Item = io::Result<Vec<u8>>;

    fn next(&mut self) -> Option<io::Result<Vec<u8>>> {
        if self.tail.is_some() {
            return None;
        }
        let reader = self.reader.as_mut()?;
        if self.remaining == 0 {
            self.tail = Some(Tail::Clean);
            return None;
        }
        if self.remaining < 8 {
            self.tail = Some(Tail::Torn {
                dropped: self.remaining,
            });
            return None;
        }
        let mut header = [0u8; 8];
        if let Err(e) = reader.read_exact(&mut header) {
            return Some(Err(e));
        }
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            self.tail = Some(Tail::Corrupt {
                dropped: self.remaining,
            });
            return None;
        }
        if self.remaining - 8 < len as u64 {
            self.tail = Some(Tail::Torn {
                dropped: self.remaining,
            });
            return None;
        }
        let mut payload = vec![0u8; len];
        if let Err(e) = reader.read_exact(&mut payload) {
            return Some(Err(e));
        }
        if crc32(&payload) != crc {
            self.tail = Some(Tail::Corrupt {
                dropped: self.remaining,
            });
            return None;
        }
        self.remaining -= 8 + len as u64;
        Some(Ok(payload))
    }
}

/// Opens `path` for streaming frame iteration. A missing or empty file is
/// an exhausted iterator with a [`Tail::Clean`]; a present file with the
/// wrong magic is an error (it is not a log at all).
pub fn read_frames(path: &Path) -> io::Result<FrameIter> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(FrameIter::finished(Tail::Clean));
        }
        Err(e) => return Err(e),
    };
    let len = file.metadata()?.len();
    if len == 0 {
        return Ok(FrameIter::finished(Tail::Clean));
    }
    if len < MAGIC.len() as u64 {
        return Ok(FrameIter::finished(Tail::Torn { dropped: len }));
    }
    let mut reader = BufReader::new(file);
    let mut magic = [0u8; MAGIC.len()];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: not an LTWAL1 log file", path.display()),
        ));
    }
    Ok(FrameIter {
        reader: Some(reader),
        remaining: len - MAGIC.len() as u64,
        tail: None,
    })
}

/// Reads every intact record from `path`. A missing file is an empty log.
pub fn read_log(path: &Path) -> io::Result<ReadLog> {
    let mut frames = read_frames(path)?;
    let mut records = Vec::new();
    for record in &mut frames {
        records.push(record?);
    }
    Ok(ReadLog {
        records,
        tail: frames.tail().unwrap_or(Tail::Clean),
    })
}

/// Atomically replaces the log at `path` with exactly `records`: writes a
/// temp file in the same directory, fsyncs it, renames over `path`, and
/// fsyncs the directory so the rename itself is durable. Used for startup
/// truncation of torn tails and for compaction snapshots.
pub fn rewrite_log<I, B>(path: &Path, records: I, sync: bool) -> io::Result<()>
where
    I: IntoIterator<Item = B>,
    B: AsRef<[u8]>,
{
    let dir = path.parent().map(Path::to_path_buf).unwrap_or_default();
    let tmp: PathBuf = path.with_extension("tmp");
    {
        let mut f = BufWriter::new(File::create(&tmp)?);
        f.write_all(MAGIC)?;
        for rec in records {
            let payload = rec.as_ref();
            assert!(payload.len() <= MAX_RECORD_BYTES, "wal record too large");
            f.write_all(&(payload.len() as u32).to_le_bytes())?;
            f.write_all(&crc32(payload).to_le_bytes())?;
            f.write_all(payload)?;
        }
        f.flush()?;
        if sync {
            f.get_ref().sync_data()?;
        }
    }
    fs::rename(&tmp, path)?;
    if sync && !dir.as_os_str().is_empty() {
        // Make the rename durable; ignore platforms where opening a
        // directory for fsync is unsupported.
        if let Ok(d) = File::open(&dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_path(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "lt_wal_test_{}_{}_{}.wal",
            tag,
            std::process::id(),
            n
        ))
    }

    fn no_sync() -> WalOptions {
        WalOptions {
            sync: false,
            ..WalOptions::default()
        }
    }

    #[test]
    fn round_trips_records() {
        let path = tmp_path("round");
        {
            let mut w = LogWriter::open(&path, no_sync()).unwrap();
            w.append(b"alpha").unwrap();
            w.append(b"").unwrap();
            w.append_sync(b"gamma with spaces").unwrap();
        }
        let read = read_log(&path).unwrap();
        assert_eq!(read.tail, Tail::Clean);
        assert_eq!(
            read.records,
            vec![
                b"alpha".to_vec(),
                b"".to_vec(),
                b"gamma with spaces".to_vec()
            ]
        );
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_empty_clean_log() {
        let read = read_log(Path::new("/nonexistent/lt_wal_never_here.wal")).unwrap();
        assert!(read.records.is_empty());
        assert_eq!(read.tail, Tail::Clean);
    }

    #[test]
    fn reopening_appends_after_existing_records() {
        let path = tmp_path("reopen");
        {
            let mut w = LogWriter::open(&path, no_sync()).unwrap();
            w.append_sync(b"one").unwrap();
        }
        {
            let mut w = LogWriter::open(&path, no_sync()).unwrap();
            w.append_sync(b"two").unwrap();
        }
        let read = read_log(&path).unwrap();
        assert_eq!(read.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(read.tail, Tail::Clean);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_reported() {
        let path = tmp_path("torn");
        {
            let mut w = LogWriter::open(&path, no_sync()).unwrap();
            w.append_sync(b"kept-1").unwrap();
            w.append_sync(b"kept-2").unwrap();
        }
        // Simulate a crash mid-frame: a header promising 100 bytes, 3 given.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&100u32.to_le_bytes()).unwrap();
        f.write_all(&0u32.to_le_bytes()).unwrap();
        f.write_all(b"abc").unwrap();
        drop(f);
        let read = read_log(&path).unwrap();
        assert_eq!(read.records, vec![b"kept-1".to_vec(), b"kept-2".to_vec()]);
        assert_eq!(read.tail, Tail::Torn { dropped: 11 });
        fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_failure_truncates_from_bad_frame() {
        let path = tmp_path("crc");
        {
            let mut w = LogWriter::open(&path, no_sync()).unwrap();
            w.append_sync(b"good").unwrap();
            w.append_sync(b"flipped").unwrap();
        }
        // Flip one payload byte of the second record.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let read = read_log(&path).unwrap();
        assert_eq!(read.records, vec![b"good".to_vec()]);
        assert!(matches!(read.tail, Tail::Corrupt { dropped: 15 }));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn rewrite_replaces_contents_atomically() {
        let path = tmp_path("rewrite");
        {
            let mut w = LogWriter::open(&path, no_sync()).unwrap();
            w.append_sync(b"old-1").unwrap();
            w.append_sync(b"old-2").unwrap();
            w.append_sync(b"old-3").unwrap();
        }
        rewrite_log(&path, [b"new".as_slice()], false).unwrap();
        let read = read_log(&path).unwrap();
        assert_eq!(read.records, vec![b"new".to_vec()]);
        assert_eq!(read.tail, Tail::Clean);
        // And the log is still appendable after a rewrite.
        {
            let mut w = LogWriter::open(&path, no_sync()).unwrap();
            w.append_sync(b"after").unwrap();
        }
        let read = read_log(&path).unwrap();
        assert_eq!(read.records, vec![b"new".to_vec(), b"after".to_vec()]);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn frame_iterator_streams_and_reports_a_torn_tail() {
        let path = tmp_path("iter_torn");
        {
            let mut w = LogWriter::open(&path, no_sync()).unwrap();
            w.append_sync(b"first").unwrap();
            w.append_sync(b"second").unwrap();
        }
        // A torn frame: header promising 32 bytes, 5 delivered.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&32u32.to_le_bytes()).unwrap();
        f.write_all(&7u32.to_le_bytes()).unwrap();
        f.write_all(b"tornn").unwrap();
        drop(f);

        let mut frames = read_frames(&path).unwrap();
        // Tail is unknown while intact records remain.
        assert_eq!(frames.tail(), None);
        assert_eq!(frames.next().unwrap().unwrap(), b"first".to_vec());
        assert_eq!(frames.tail(), None);
        assert_eq!(frames.next().unwrap().unwrap(), b"second".to_vec());
        // The torn frame ends iteration and is reported, not yielded.
        assert!(frames.next().is_none());
        assert_eq!(frames.tail(), Some(Tail::Torn { dropped: 13 }));
        // Exhausted iterators stay exhausted.
        assert!(frames.next().is_none());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn frame_iterator_edge_cases_match_read_log() {
        // Missing file: exhausted, clean.
        let mut frames = read_frames(Path::new("/nonexistent/lt_wal_iter.wal")).unwrap();
        assert!(frames.next().is_none());
        assert_eq!(frames.tail(), Some(Tail::Clean));

        // Header-only truncation (shorter than a frame header).
        let path = tmp_path("iter_short");
        {
            let mut w = LogWriter::open(&path, no_sync()).unwrap();
            w.append_sync(b"kept").unwrap();
        }
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[1, 2, 3]).unwrap();
        drop(f);
        let mut frames = read_frames(&path).unwrap();
        assert_eq!(frames.next().unwrap().unwrap(), b"kept".to_vec());
        assert!(frames.next().is_none());
        assert_eq!(frames.tail(), Some(Tail::Torn { dropped: 3 }));

        // A checksum failure is Corrupt from the bad frame on.
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 3); // drop the torn tail
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let mut frames = read_frames(&path).unwrap();
        assert!(frames.next().is_none());
        assert_eq!(frames.tail(), Some(Tail::Corrupt { dropped: 12 }));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_an_error() {
        let path = tmp_path("magic");
        fs::write(&path, b"definitely not a wal file").unwrap();
        assert!(read_log(&path).is_err());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn options_default_batches_fsync() {
        let o = WalOptions::default();
        assert!(o.sync);
        assert_eq!(o.sync_every, 8);
        assert_eq!(o.crash_at, None);
        assert!(!o.crash_torn);
    }
}
