//! Shared substrate for the λ-Tune reproduction.
//!
//! Everything in this workspace that measures time measures **virtual time**:
//! the DBMS simulator charges costs to a [`time::VirtualClock`] instead of
//! sleeping, which makes the full SIGMOD evaluation matrix reproducible in
//! seconds while preserving every timeout/interrupt interaction the paper's
//! algorithms rely on.

pub mod error;
pub mod hash;
pub mod ids;
pub mod json;
pub mod lru;
pub mod obs;
pub mod rng;
pub mod time;
pub mod wal;

pub use error::{LtError, Result};
pub use hash::{crc32, hash_one, Fingerprint, FxHasher};
pub use ids::{ColumnId, IndexId, QueryId, TableId};
pub use lru::LruMap;
pub use rng::{derive_seed, seeded_rng, Rng};
pub use time::{secs, Secs, VirtualClock};
