//! A small bounded LRU map used by every process-wide cache in the
//! workspace (plan caches, the ILP compression memo, the fleet tuning
//! cache, the LLM sample cache).
//!
//! Under fleet load the original unbounded memos grow without limit; the
//! caches now share this one implementation so each can be capped with an
//! `LT_*_CAP` environment knob and report evictions through its own obs
//! counter. The structure is a plain `HashMap` into a slab of entries that
//! are threaded on an intrusive doubly-linked recency list — no external
//! crates, O(1) get/insert/evict.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

const NIL: usize = usize::MAX;

/// Reads a cache capacity from environment variable `var`, falling back to
/// `default` when unset or unparsable. All `LT_*_CAP` knobs go through
/// here so they share one convention.
pub fn cap_from_env(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Bounded least-recently-used map. `get` refreshes recency; `insert` of a
/// fresh key beyond the capacity evicts the coldest entry and returns it so
/// the caller can count the eviction.
pub struct LruMap<K, V> {
    index: HashMap<K, usize>,
    slab: Vec<Option<Entry<K, V>>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    cap: usize,
}

impl<K, V> fmt::Debug for LruMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LruMap")
            .field("len", &self.index.len())
            .field("cap", &self.cap)
            .finish()
    }
}

impl<K: Clone + Eq + Hash, V> LruMap<K, V> {
    /// Creates a map bounded to `cap` entries. A zero capacity is clamped
    /// to one: a cache that can never hold anything would turn every
    /// lookup into a miss while still paying the insert bookkeeping.
    pub fn new(cap: usize) -> Self {
        LruMap {
            index: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            cap: cap.max(1),
        }
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Capacity bound.
    pub fn cap(&self) -> usize {
        self.cap
    }

    fn entry(&self, slot: usize) -> &Entry<K, V> {
        self.slab[slot].as_ref().expect("live LRU slot")
    }

    fn entry_mut(&mut self, slot: usize) -> &mut Entry<K, V> {
        self.slab[slot].as_mut().expect("live LRU slot")
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = {
            let e = self.entry(slot);
            (e.prev, e.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.entry_mut(p).next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.entry_mut(n).prev = prev,
        }
    }

    fn push_front(&mut self, slot: usize) {
        let head = self.head;
        {
            let e = self.entry_mut(slot);
            e.prev = NIL;
            e.next = head;
        }
        match head {
            NIL => self.tail = slot,
            h => self.entry_mut(h).prev = slot,
        }
        self.head = slot;
    }

    /// Looks `key` up and, on a hit, marks it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let slot = *self.index.get(key)?;
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
        Some(&self.entry(slot).value)
    }

    /// Checks for `key` without touching recency.
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Inserts `key → value` as most recently used. Returns the evicted
    /// coldest `(key, value)` pair when the insert pushed the map past its
    /// capacity (never on an update of an existing key).
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&slot) = self.index.get(&key) {
            self.entry_mut(slot).value = value;
            if self.head != slot {
                self.unlink(slot);
                self.push_front(slot);
            }
            return None;
        }
        let evicted = if self.index.len() >= self.cap {
            let cold = self.tail;
            self.unlink(cold);
            let entry = self.slab[cold].take().expect("live LRU tail");
            self.index.remove(&entry.key);
            self.free.push(cold);
            Some((entry.key, entry.value))
        } else {
            None
        };
        let entry = Entry {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Some(entry);
                slot
            }
            None => {
                self.slab.push(Some(entry));
                self.slab.len() - 1
            }
        };
        self.index.insert(key, slot);
        self.push_front(slot);
        evicted
    }

    /// Drops every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.index.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Iterates over `(key, value)` pairs in unspecified order, without
    /// touching recency. Used by nearest-neighbor scans over small caches.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.index
            .iter()
            .map(|(k, &slot)| (k, &self.entry(slot).value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = LruMap::new(2);
        assert!(lru.insert(1, "a").is_none());
        assert!(lru.insert(2, "b").is_none());
        assert_eq!(lru.get(&1), Some(&"a")); // refresh 1; 2 is now coldest
        assert_eq!(lru.insert(3, "c"), Some((2, "b")));
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(&"a"));
        assert_eq!(lru.get(&3), Some(&"c"));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn update_refreshes_without_evicting() {
        let mut lru = LruMap::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert!(lru.insert(1, 11).is_none()); // update, not insert
        assert_eq!(lru.insert(3, 30), Some((2, 20)));
        assert_eq!(lru.get(&1), Some(&11));
    }

    #[test]
    fn reuses_slots_after_eviction() {
        let mut lru = LruMap::new(3);
        for i in 0..100u64 {
            lru.insert(i, i * 2);
        }
        assert_eq!(lru.len(), 3);
        assert!(lru.slab.len() <= 4, "slab should not grow unboundedly");
        for i in 97..100 {
            assert_eq!(lru.get(&i), Some(&(i * 2)));
        }
    }

    #[test]
    fn zero_cap_clamps_to_one() {
        let mut lru = LruMap::new(0);
        assert_eq!(lru.cap(), 1);
        assert!(lru.insert(1, "a").is_none());
        assert_eq!(lru.insert(2, "b"), Some((1, "a")));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut lru = LruMap::new(4);
        lru.insert(1, "a");
        lru.insert(2, "b");
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.get(&1), None);
        assert!(lru.insert(3, "c").is_none());
    }
}
