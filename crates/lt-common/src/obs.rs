//! Structured tracing and metrics for the tuning pipeline.
//!
//! The paper's evaluation (§6) is about *where time goes*: tuning-phase vs
//! measurement-phase cost, per-round LLM calls, the ILP compression solve.
//! This module gives every crate in the workspace a shared, zero-dependency
//! registry of **spans** (named phases with wall-clock and, optionally,
//! virtual-clock durations), **counters** and **gauges**, so a run can emit
//! a machine-readable cost breakdown next to its `results/*.json`.
//!
//! Everything is gated by `LT_TRACE=1` (or [`set_enabled`]): when tracing is
//! off, [`span`] returns an inert guard and [`counter`]/[`gauge`] return
//! after a single relaxed atomic load — no allocation, no locking — so
//! instrumented hot paths cost nothing in normal benchmark runs (the micro
//! benches verify this).
//!
//! The registry is process-global and thread-safe (atomics plus short
//! `Mutex` sections), compatible with the `std::thread::scope` benchmark
//! matrix: spans opened on worker threads become roots of their own span
//! trees, and counters merge across threads. Span parentage is tracked per
//! thread with a thread-local stack, so nesting works without passing
//! context around.
//!
//! ```
//! use lt_common::obs;
//! obs::set_enabled(true);
//! {
//!     let mut outer = obs::span("tune.select");
//!     outer.vt_start(lt_common::secs(0.0));
//!     let _inner = obs::span("eval.config");
//!     obs::counter("eval.calls", 1);
//!     outer.vt_end(lt_common::secs(12.5));
//! }
//! let snap = obs::snapshot();
//! assert_eq!(snap.events.len(), 2);
//! # obs::reset();
//! # obs::set_enabled(false);
//! ```

use crate::json::Value;
use crate::Secs;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---- enablement -----------------------------------------------------------

/// 0 = not yet read from the environment, 1 = enabled, 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// True when tracing is on (`LT_TRACE=1`/`true`/`on`, or [`set_enabled`]).
/// The environment is consulted once; after that this is one relaxed load.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = matches!(
        std::env::var("LT_TRACE").as_deref(),
        Ok("1") | Ok("true") | Ok("on")
    );
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    on
}

/// Overrides the `LT_TRACE` decision for this process (used by tests and by
/// binaries with their own tracing flags).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

// ---- registry -------------------------------------------------------------

/// One completed span, as recorded in the event log.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Process-unique id (creation order).
    pub id: u64,
    /// Id of the span that was open on the same thread when this one
    /// started; `None` for thread-root spans.
    pub parent: Option<u64>,
    /// Per-process thread index (0 = first thread that traced).
    pub thread: u64,
    /// Nesting depth on its thread (0 = root).
    pub depth: u32,
    /// Phase name.
    pub name: &'static str,
    /// Wall-clock start, seconds since the registry's anchor.
    pub wall_start: f64,
    /// Wall-clock duration in seconds.
    pub wall_dur: f64,
    /// Virtual-clock start, if the caller supplied one.
    pub vt_start: Option<f64>,
    /// Virtual-clock duration, if the caller supplied both endpoints.
    pub vt_dur: Option<f64>,
}

#[derive(Debug, Default)]
struct Registry {
    events: Mutex<Vec<SpanEvent>>,
    counters: Mutex<Vec<(&'static str, u64)>>,
    gauges: Mutex<Vec<(&'static str, f64)>>,
    next_id: AtomicU64,
    next_thread: AtomicU64,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Wall-clock anchor: all `wall_start` values are offsets from this instant
/// (initialized on first use).
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

thread_local! {
    /// Open-span stack of this thread (ids, innermost last).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's index in the registry (assigned on first span).
    static THREAD_IDX: RefCell<Option<u64>> = const { RefCell::new(None) };
}

fn thread_index() -> u64 {
    THREAD_IDX.with(|idx| {
        *idx.borrow_mut()
            .get_or_insert_with(|| registry().next_thread.fetch_add(1, Ordering::Relaxed))
    })
}

// ---- spans ----------------------------------------------------------------

/// RAII guard for one phase: records a [`SpanEvent`] when dropped. Inert
/// (and allocation-free) when tracing is disabled.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    id: u64,
    parent: Option<u64>,
    thread: u64,
    depth: u32,
    name: &'static str,
    start: Instant,
    wall_start: f64,
    vt_start: Option<f64>,
    vt_end: Option<f64>,
}

/// Opens a span named `name`. Nesting is tracked per thread: a span opened
/// while another is open on the same thread becomes its child.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    let reg = registry();
    let id = reg.next_id.fetch_add(1, Ordering::Relaxed);
    let start = Instant::now();
    let wall_start = start.duration_since(anchor()).as_secs_f64();
    let (parent, depth) = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        let depth = stack.len() as u32;
        stack.push(id);
        (parent, depth)
    });
    SpanGuard {
        inner: Some(SpanInner {
            id,
            parent,
            thread: thread_index(),
            depth,
            name,
            start,
            wall_start,
            vt_start: None,
            vt_end: None,
        }),
    }
}

/// Opens a span with its virtual-clock start already set.
pub fn span_vt(name: &'static str, now: Secs) -> SpanGuard {
    let mut guard = span(name);
    guard.vt_start(now);
    guard
}

impl SpanGuard {
    /// True when this guard will record an event (tracing was enabled at
    /// creation).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Sets the virtual-clock start of the phase.
    pub fn vt_start(&mut self, now: Secs) {
        if let Some(inner) = &mut self.inner {
            inner.vt_start = Some(now.as_f64());
        }
    }

    /// Sets the virtual-clock end of the phase; the recorded event carries
    /// `vt_dur = vt_end − vt_start` when both endpoints were set.
    pub fn vt_end(&mut self, now: Secs) {
        if let Some(inner) = &mut self.inner {
            inner.vt_end = Some(now.as_f64());
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let wall_dur = inner.start.elapsed().as_secs_f64();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Spans are dropped LIFO in correct code; tolerate (and repair)
            // out-of-order drops instead of panicking mid-unwind.
            if let Some(pos) = stack.iter().rposition(|&id| id == inner.id) {
                stack.truncate(pos);
            }
        });
        let vt_dur = match (inner.vt_start, inner.vt_end) {
            (Some(s), Some(e)) => Some(e - s),
            _ => None,
        };
        registry().events.lock().unwrap().push(SpanEvent {
            id: inner.id,
            parent: inner.parent,
            thread: inner.thread,
            depth: inner.depth,
            name: inner.name,
            wall_start: inner.wall_start,
            wall_dur,
            vt_start: inner.vt_start,
            vt_dur,
        });
    }
}

// ---- counters and gauges --------------------------------------------------

/// Well-known counter names shared between emitters and consumers (traces,
/// `/metrics`), so the string constants live in one place.
pub mod names {
    /// csg–cmp pairs enumerated by the DPccp join planner.
    pub const PLANNER_CCP_PAIRS: &str = "planner.ccp_pairs";
    /// DP subsets discarded by the pilot-bound branch-and-bound prune.
    pub const PLANNER_CCP_PRUNED: &str = "planner.ccp_pruned";
    /// Queries planned by full DP (DPccp).
    pub const PLANNER_DP_PLANS: &str = "planner.dp_plans";
    /// Queries whose final join order came from the greedy heuristic
    /// (width above the DP limit, or greedy beat DP in the safety net).
    pub const PLANNER_GREEDY_PLANS: &str = "planner.greedy_plans";
}

/// Adds `delta` to the counter named `name`. No-op when tracing is off.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut counters = registry().counters.lock().unwrap();
    match counters.iter_mut().find(|(n, _)| *n == name) {
        Some((_, v)) => *v += delta,
        None => counters.push((name, delta)),
    }
}

/// Sets the gauge named `name` (last write wins). No-op when tracing is off.
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    let mut gauges = registry().gauges.lock().unwrap();
    match gauges.iter_mut().find(|(n, _)| *n == name) {
        Some((_, v)) => *v = value,
        None => gauges.push((name, value)),
    }
}

// ---- snapshots and reports -------------------------------------------------

/// Aggregated statistics of one phase (all spans sharing a name).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Phase (span) name.
    pub name: &'static str,
    /// Number of spans recorded under this name.
    pub count: u64,
    /// Total wall-clock seconds (inclusive of child spans).
    pub wall: f64,
    /// Total wall-clock seconds exclusive of child spans. Summed over all
    /// phases this equals the total duration of the root spans, so a run
    /// wrapped in one root span gets a breakdown that adds up to its wall
    /// time.
    pub wall_self: f64,
    /// Total virtual-clock seconds, over spans that recorded them.
    pub vt: f64,
}

/// A point-in-time copy of the registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counters, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(&'static str, f64)>,
    /// Completed spans, in completion order.
    pub events: Vec<SpanEvent>,
}

/// Copies the current registry contents.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let events = reg.events.lock().unwrap().clone();
    let mut counters = reg.counters.lock().unwrap().clone();
    let mut gauges = reg.gauges.lock().unwrap().clone();
    counters.sort_by_key(|(n, _)| *n);
    gauges.sort_by(|a, b| a.0.cmp(b.0));
    Snapshot {
        counters,
        gauges,
        events,
    }
}

/// Clears all events, counters and gauges (used between independent runs
/// and by tests).
pub fn reset() {
    let reg = registry();
    reg.events.lock().unwrap().clear();
    reg.counters.lock().unwrap().clear();
    reg.gauges.lock().unwrap().clear();
}

impl Snapshot {
    /// Per-phase aggregation, sorted by exclusive wall time (descending).
    pub fn phases(&self) -> Vec<PhaseStat> {
        use std::collections::HashMap;
        // Exclusive time: each span's duration minus its direct children's.
        let mut child_sum: HashMap<u64, f64> = HashMap::new();
        for ev in &self.events {
            if let Some(p) = ev.parent {
                *child_sum.entry(p).or_insert(0.0) += ev.wall_dur;
            }
        }
        let mut stats: Vec<PhaseStat> = Vec::new();
        for ev in &self.events {
            let self_dur = (ev.wall_dur - child_sum.get(&ev.id).copied().unwrap_or(0.0)).max(0.0);
            match stats.iter_mut().find(|s| s.name == ev.name) {
                Some(s) => {
                    s.count += 1;
                    s.wall += ev.wall_dur;
                    s.wall_self += self_dur;
                    s.vt += ev.vt_dur.unwrap_or(0.0);
                }
                None => stats.push(PhaseStat {
                    name: ev.name,
                    count: 1,
                    wall: ev.wall_dur,
                    wall_self: self_dur,
                    vt: ev.vt_dur.unwrap_or(0.0),
                }),
            }
        }
        stats.sort_by(|a, b| {
            b.wall_self
                .partial_cmp(&a.wall_self)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        stats
    }

    /// Total wall time of thread-root spans — the run's wall time when the
    /// binary wraps itself in a root span per thread.
    pub fn root_wall(&self) -> f64 {
        self.events
            .iter()
            .filter(|e| e.parent.is_none())
            .map(|e| e.wall_dur)
            .sum()
    }

    /// Renders the end-of-run phase summary table.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<26} {:>7} {:>12} {:>12} {:>14}\n",
            "phase", "count", "wall [s]", "self [s]", "virtual [s]"
        ));
        for p in self.phases() {
            out.push_str(&format!(
                "{:<26} {:>7} {:>12.3} {:>12.3} {:>14.1}\n",
                p.name, p.count, p.wall, p.wall_self, p.vt
            ));
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("\n{:<40} {:>14}\n", "counter", "value"));
            for (name, value) in &self.counters {
                out.push_str(&format!("{name:<40} {value:>14}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str(&format!("\n{:<40} {:>14}\n", "gauge", "value"));
            for (name, value) in &self.gauges {
                out.push_str(&format!("{name:<40} {value:>14.3}\n"));
            }
        }
        out
    }

    /// Serializes the *aggregate* view only — counters, gauges and
    /// per-phase span totals, without the raw event log. This is the
    /// `GET /metrics` payload of the serving layer: it stays small no
    /// matter how many sessions have accumulated events, while the full
    /// [`Snapshot::to_json`] sidecar grows with every span.
    pub fn to_metrics_json(&self) -> Value {
        let phases: Vec<Value> = self
            .phases()
            .iter()
            .map(|p| {
                Value::Object(vec![
                    ("name".into(), Value::from(p.name)),
                    ("count".into(), Value::from(p.count)),
                    ("wall_s".into(), Value::from(p.wall)),
                    ("wall_self_s".into(), Value::from(p.wall_self)),
                    ("vt_s".into(), Value::from(p.vt)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("version".into(), Value::Int(1)),
            (
                "counters".into(),
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(n, v)| ((*n).to_string(), Value::from(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Value::Object(
                    self.gauges
                        .iter()
                        .map(|(n, v)| ((*n).to_string(), Value::from(*v)))
                        .collect(),
                ),
            ),
            ("phases".into(), Value::Array(phases)),
            ("spans_recorded".into(), Value::from(self.events.len())),
        ])
    }

    /// Merges parsed `/metrics` documents from several *processes* into
    /// fleet totals.
    ///
    /// The in-process [`Snapshot`] cannot do this — its counter names are
    /// `&'static str` interned per process — so cross-shard aggregation
    /// happens at the parsed-JSON level: objects merge recursively in
    /// first-seen key order, `Int`/`Float` leaves sum, and everything
    /// non-numeric (strings, arrays such as `phases`, booleans) keeps the
    /// first document's value. The schema `version` field takes the max
    /// rather than the sum, so a merged document still declares a valid
    /// version.
    pub fn merge_metrics_json(docs: &[Value]) -> Value {
        fn merge_into(acc: &mut Value, next: &Value, key: &str) {
            match (acc, next) {
                (Value::Object(a), Value::Object(b)) => {
                    for (k, v) in b {
                        match a.iter_mut().find(|(ak, _)| ak == k) {
                            Some((_, slot)) => merge_into(slot, v, k),
                            None => a.push((k.clone(), v.clone())),
                        }
                    }
                }
                (Value::Int(a), Value::Int(b)) => {
                    *a = if key == "version" {
                        (*a).max(*b)
                    } else {
                        a.saturating_add(*b)
                    };
                }
                (acc @ (Value::Int(_) | Value::Float(_)), next) => {
                    if let (Some(a), Some(b)) = (acc.as_f64(), next.as_f64()) {
                        *acc = Value::Float(a + b);
                    }
                }
                _ => {} // non-numeric leaves keep the first value
            }
        }
        let mut merged = Value::Object(Vec::new());
        for doc in docs {
            merge_into(&mut merged, doc, "");
        }
        merged
    }

    /// Serializes the snapshot as the trace sidecar document (see the
    /// README's event-log schema).
    pub fn to_json(&self) -> Value {
        let phases: Vec<Value> = self
            .phases()
            .iter()
            .map(|p| {
                Value::Object(vec![
                    ("name".into(), Value::from(p.name)),
                    ("count".into(), Value::from(p.count)),
                    ("wall_s".into(), Value::from(p.wall)),
                    ("wall_self_s".into(), Value::from(p.wall_self)),
                    ("vt_s".into(), Value::from(p.vt)),
                ])
            })
            .collect();
        let events: Vec<Value> = self
            .events
            .iter()
            .map(|e| {
                Value::Object(vec![
                    ("id".into(), Value::from(e.id)),
                    (
                        "parent".into(),
                        e.parent.map(Value::from).unwrap_or(Value::Null),
                    ),
                    ("thread".into(), Value::from(e.thread)),
                    ("depth".into(), Value::from(e.depth)),
                    ("name".into(), Value::from(e.name)),
                    ("wall_start_s".into(), Value::from(e.wall_start)),
                    ("wall_s".into(), Value::from(e.wall_dur)),
                    (
                        "vt_start_s".into(),
                        e.vt_start.map(Value::from).unwrap_or(Value::Null),
                    ),
                    (
                        "vt_s".into(),
                        e.vt_dur.map(Value::from).unwrap_or(Value::Null),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            ("version".into(), Value::Int(1)),
            (
                "counters".into(),
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(n, v)| ((*n).to_string(), Value::from(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Value::Object(
                    self.gauges
                        .iter()
                        .map(|(n, v)| ((*n).to_string(), Value::from(*v)))
                        .collect(),
                ),
            ),
            ("phases".into(), Value::Array(phases)),
            ("events".into(), Value::Array(events)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::secs;

    /// The registry is process-global, so tests that mutate it serialize on
    /// this lock (cargo runs `#[test]`s on concurrent threads).
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn disabled_records_no_events_and_no_counters() {
        let _guard = test_lock();
        set_enabled(false);
        reset();
        {
            let s = span("phase.a");
            assert!(!s.is_recording());
            counter("c", 5);
            gauge("g", 1.0);
        }
        let snap = snapshot();
        assert!(snap.events.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
    }

    #[test]
    fn span_nesting_tracks_parent_and_depth() {
        let _guard = test_lock();
        set_enabled(true);
        reset();
        {
            let _outer = span("outer");
            {
                let _mid = span("mid");
                let _inner = span("inner");
            }
            let _sibling = span("mid");
        }
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.events.len(), 4);
        let outer = snap.events.iter().find(|e| e.name == "outer").unwrap();
        let inner = snap.events.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.parent, None);
        assert_eq!(inner.depth, 2);
        let mids: Vec<_> = snap.events.iter().filter(|e| e.name == "mid").collect();
        assert_eq!(mids.len(), 2);
        for mid in &mids {
            assert_eq!(mid.parent, Some(outer.id));
            assert_eq!(mid.depth, 1);
        }
        assert_eq!(
            inner.parent,
            Some(mids.iter().min_by_key(|m| m.id).unwrap().id)
        );
        // Exclusive times sum to the root's duration.
        let phases = snap.phases();
        let total_self: f64 = phases.iter().map(|p| p.wall_self).sum();
        assert!((total_self - outer.wall_dur).abs() <= 1e-9 + outer.wall_dur * 1e-6);
        reset();
    }

    #[test]
    fn concurrent_counters_merge_across_scoped_threads() {
        let _guard = test_lock();
        set_enabled(true);
        reset();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        counter("test.concurrent", 1);
                    }
                    let _s = span("worker");
                });
            }
        });
        set_enabled(false);
        let snap = snapshot();
        let total = snap
            .counters
            .iter()
            .find(|(n, _)| *n == "test.concurrent")
            .map(|(_, v)| *v);
        assert_eq!(total, Some(4000));
        // Worker spans are thread roots with distinct thread indexes.
        let workers: Vec<_> = snap.events.iter().filter(|e| e.name == "worker").collect();
        assert_eq!(workers.len(), 4);
        assert!(workers.iter().all(|w| w.parent.is_none() && w.depth == 0));
        let mut threads: Vec<u64> = workers.iter().map(|w| w.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        assert_eq!(threads.len(), 4);
        reset();
    }

    #[test]
    fn virtual_time_is_recorded_when_both_endpoints_set() {
        let _guard = test_lock();
        set_enabled(true);
        reset();
        {
            let mut s = span_vt("with.vt", secs(10.0));
            s.vt_end(secs(35.5));
            let _partial = span_vt("only.start", secs(1.0));
        }
        set_enabled(false);
        let snap = snapshot();
        let full = snap.events.iter().find(|e| e.name == "with.vt").unwrap();
        assert_eq!(full.vt_start, Some(10.0));
        assert_eq!(full.vt_dur, Some(25.5));
        let partial = snap.events.iter().find(|e| e.name == "only.start").unwrap();
        assert_eq!(partial.vt_start, Some(1.0));
        assert_eq!(partial.vt_dur, None);
        reset();
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let _guard = test_lock();
        set_enabled(true);
        reset();
        counter("a", 2);
        counter("a", 3);
        gauge("b", 1.0);
        gauge("b", 9.5);
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.counters, vec![("a", 5)]);
        assert_eq!(snap.gauges, vec![("b", 9.5)]);
        reset();
    }

    #[test]
    fn snapshot_serializes_and_parses_back() {
        let _guard = test_lock();
        set_enabled(true);
        reset();
        {
            let mut s = span_vt("fase", secs(0.0));
            s.vt_end(secs(2.0));
            counter("n", 7);
            gauge("v", 0.5);
        }
        set_enabled(false);
        let snap = snapshot();
        let doc = snap.to_json();
        let text = doc.to_string_pretty();
        let parsed = crate::json::parse(&text).expect("round trip");
        assert_eq!(parsed.get("version").and_then(Value::as_i64), Some(1));
        let counters = parsed.get("counters").unwrap();
        assert_eq!(counters.get("n").and_then(Value::as_i64), Some(7));
        let phases = parsed.get("phases").and_then(Value::as_array).unwrap();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].get("name").and_then(Value::as_str), Some("fase"));
        assert_eq!(phases[0].get("vt_s").and_then(Value::as_f64), Some(2.0));
        reset();
    }

    #[test]
    fn metrics_json_has_aggregates_but_no_event_log() {
        let _guard = test_lock();
        set_enabled(true);
        reset();
        {
            let mut s = span_vt("serve.tune", secs(0.0));
            s.vt_end(secs(3.0));
            counter("sessions", 2);
            gauge("queue_depth", 4.0);
        }
        set_enabled(false);
        let snap = snapshot();
        let doc = snap.to_metrics_json();
        let parsed = crate::json::parse(&doc.to_string_pretty()).expect("round trip");
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("sessions"))
                .and_then(Value::as_i64),
            Some(2)
        );
        assert_eq!(
            parsed
                .get("gauges")
                .and_then(|g| g.get("queue_depth"))
                .and_then(Value::as_f64),
            Some(4.0)
        );
        let phases = parsed.get("phases").and_then(Value::as_array).unwrap();
        assert_eq!(
            phases[0].get("name").and_then(Value::as_str),
            Some("serve.tune")
        );
        assert_eq!(
            parsed.get("spans_recorded").and_then(Value::as_i64),
            Some(1)
        );
        assert!(parsed.get("events").is_none(), "no raw event log");
        reset();
    }

    #[test]
    fn summary_table_lists_phases_and_counters() {
        let _guard = test_lock();
        set_enabled(true);
        reset();
        {
            let _s = span("alpha");
        }
        counter("hits", 3);
        set_enabled(false);
        let table = snapshot().summary_table();
        assert!(table.contains("alpha"), "{table}");
        assert!(table.contains("hits"), "{table}");
        reset();
    }

    #[test]
    fn merge_metrics_json_sums_numeric_leaves_across_processes() {
        let a = crate::json::parse(
            r#"{"version": 1, "counters": {"serve.http_requests": 10, "only_a": 2},
                "gauges": {"queue": 3}, "phases": [{"name": "x"}], "label": "shard-0"}"#,
        )
        .unwrap();
        let b = crate::json::parse(
            r#"{"version": 1, "counters": {"serve.http_requests": 5, "only_b": 7},
                "gauges": {"queue": 1.5}, "phases": [], "label": "shard-1"}"#,
        )
        .unwrap();
        let merged = Snapshot::merge_metrics_json(&[a, b]);
        let counters = merged.get("counters").unwrap();
        assert_eq!(
            counters.get("serve.http_requests").and_then(Value::as_i64),
            Some(15)
        );
        assert_eq!(counters.get("only_a").and_then(Value::as_i64), Some(2));
        assert_eq!(counters.get("only_b").and_then(Value::as_i64), Some(7));
        // Int + Float widens to Float.
        assert_eq!(
            merged
                .get("gauges")
                .and_then(|g| g.get("queue"))
                .and_then(Value::as_f64),
            Some(4.5)
        );
        // `version` is a schema tag, not a tally; non-numeric leaves keep
        // the first document's value.
        assert_eq!(merged.get("version").and_then(Value::as_i64), Some(1));
        assert_eq!(merged.get("label").and_then(Value::as_str), Some("shard-0"));
        assert_eq!(merged.get("phases").unwrap().as_array().unwrap().len(), 1);
    }
}
