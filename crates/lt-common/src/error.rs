//! Error types shared across the workspace.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, LtError>;

/// Errors surfaced by the λ-Tune reproduction.
///
/// The variants mirror the subsystems of the workspace so a caller can tell
/// *which layer* failed without string-matching messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LtError {
    /// SQL text could not be tokenized or parsed.
    Parse(String),
    /// A table, column or index referenced by name does not exist.
    Catalog(String),
    /// A configuration script contained an invalid command or knob value.
    Config(String),
    /// The ILP model was infeasible or malformed.
    Solver(String),
    /// The language model returned output that could not be interpreted.
    Llm(String),
    /// A tuning pipeline invariant was violated.
    Tuning(String),
}

impl LtError {
    /// Short stable tag for the error category (used in logs and tests).
    pub fn category(&self) -> &'static str {
        match self {
            LtError::Parse(_) => "parse",
            LtError::Catalog(_) => "catalog",
            LtError::Config(_) => "config",
            LtError::Solver(_) => "solver",
            LtError::Llm(_) => "llm",
            LtError::Tuning(_) => "tuning",
        }
    }

    /// The human-readable message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            LtError::Parse(m)
            | LtError::Catalog(m)
            | LtError::Config(m)
            | LtError::Solver(m)
            | LtError::Llm(m)
            | LtError::Tuning(m) => m,
        }
    }
}

impl fmt::Display for LtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.category(), self.message())
    }
}

impl std::error::Error for LtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = LtError::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "parse: unexpected token");
        assert_eq!(e.category(), "parse");
        assert_eq!(e.message(), "unexpected token");
    }

    #[test]
    fn categories_are_distinct() {
        let errs = [
            LtError::Parse(String::new()),
            LtError::Catalog(String::new()),
            LtError::Config(String::new()),
            LtError::Solver(String::new()),
            LtError::Llm(String::new()),
            LtError::Tuning(String::new()),
        ];
        let mut cats: Vec<_> = errs.iter().map(|e| e.category()).collect();
        cats.sort_unstable();
        cats.dedup();
        assert_eq!(cats.len(), errs.len());
    }
}
