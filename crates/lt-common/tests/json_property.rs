//! Seeded property test: `parse(write(v)) == v` for the JSON module.
//!
//! `lt_common::json` is the request-parsing substrate of the `lt-serve`
//! HTTP layer, so round-trip fidelity is load-bearing beyond the benchmark
//! artifacts. The generator covers deep nesting, every escape class the
//! writer emits, astral-plane characters (surrogate pairs in `\uXXXX`
//! escapes), and numbers at precision edges. Seeded RNG keeps failures
//! reproducible: a failing case prints its seed.

use lt_common::json::{parse, Value};
use lt_common::{seeded_rng, Rng};

/// Characters that stress the writer's escaping and the parser's string
/// scanner: quotes, backslashes, control characters, multi-byte UTF-8 and
/// astral-plane code points (the latter also appear as `\uXXXX` surrogate
/// pairs in hand-written documents, covered separately below).
const STRING_ALPHABET: &[char] = &[
    'a',
    'Z',
    '0',
    ' ',
    '"',
    '\\',
    '\n',
    '\r',
    '\t',
    '\u{8}',
    '\u{c}',
    '\u{0}',
    '\u{1f}',
    '/',
    'é',
    'ß',
    '中',
    '\u{ffff}',
    '😀',
    '𝄞',
    '\u{10FFFF}',
];

/// Numbers whose shortest round-trip formatting exercises precision edges.
const EDGE_FLOATS: &[f64] = &[
    0.0,
    -0.0,
    1.0,
    -1.5,
    0.1,
    2.0 / 3.0,
    1e-308,
    f64::MIN_POSITIVE,
    5e-324, // smallest subnormal
    f64::MAX,
    f64::MIN,
    1e15, // writer's whole-float formatting threshold
    1e15 - 1.0,
    1e15 + 2.0,
    (1u64 << 53) as f64, // last exactly-representable integer + 1
    std::f64::consts::PI,
];

const EDGE_INTS: &[i64] = &[0, 1, -1, i64::MAX, i64::MIN, 1 << 53, -(1 << 53) - 1];

fn gen_string(rng: &mut Rng) -> String {
    let len = rng.gen_range(0..12usize);
    (0..len)
        .map(|_| *rng.choose(STRING_ALPHABET).unwrap())
        .collect()
}

fn gen_value(rng: &mut Rng, depth: usize) -> Value {
    // Leaves only at the bottom; containers get rarer with depth.
    let max_kind: usize = if depth == 0 { 5 } else { 7 };
    match rng.gen_range(0..max_kind) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::Int(if rng.gen_bool(0.5) {
            *rng.choose(EDGE_INTS).unwrap()
        } else {
            rng.next_u64() as i64
        }),
        3 => {
            let f = if rng.gen_bool(0.5) {
                *rng.choose(EDGE_FLOATS).unwrap()
            } else {
                // Uniform bits, rerolled until finite (writer maps
                // non-finite to null, which would break the property).
                loop {
                    let candidate = f64::from_bits(rng.next_u64());
                    if candidate.is_finite() {
                        break candidate;
                    }
                }
            };
            // The writer formats every whole float as `x.0`, which parses
            // back as Float — representable. But distinguish: Int values
            // write without a decimal point and parse back as Int, so the
            // two variants never collide.
            Value::Float(f)
        }
        4 => Value::String(gen_string(rng)),
        5 => {
            let len = rng.gen_range(0..5usize);
            Value::Array((0..len).map(|_| gen_value(rng, depth - 1)).collect())
        }
        _ => {
            let len = rng.gen_range(0..5usize);
            Value::Object(
                (0..len)
                    .map(|i| {
                        (
                            format!("k{i}_{}", gen_string(rng)),
                            gen_value(rng, depth - 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

#[test]
fn random_values_round_trip_through_writer_and_parser() {
    let base = 0xC0FFEE;
    for case in 0..500u64 {
        let seed = lt_common::derive_seed(base, case);
        let mut rng = seeded_rng(seed);
        let value = gen_value(&mut rng, 4);
        let text = value.to_string_pretty();
        let back = parse(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: writer output failed to parse: {e}\n{text}"));
        assert_eq!(back, value, "seed {seed}: round trip diverged\n{text}");
    }
}

#[test]
fn reparse_is_idempotent_on_written_output() {
    // write(parse(write(v))) == write(v): the printed form is a fixpoint.
    let mut rng = seeded_rng(7);
    for _ in 0..100 {
        let value = gen_value(&mut rng, 3);
        let once = value.to_string_pretty();
        let twice = parse(&once).unwrap().to_string_pretty();
        assert_eq!(once, twice);
    }
}

#[test]
fn surrogate_pair_escapes_parse_to_astral_code_points() {
    // Hand-written documents may spell astral characters as \uXXXX pairs;
    // the writer never does, so cover the decode direction explicitly.
    let cases = [
        ("\"\\ud83d\\ude00\"", "😀"),
        ("\"\\ud834\\udd1e\"", "𝄞"),
        ("\"\\udbff\\udfff\"", "\u{10FFFF}"),
        ("\"a\\u0000b\"", "a\u{0}b"),
    ];
    for (doc, want) in cases {
        let parsed = parse(doc).unwrap();
        assert_eq!(parsed.as_str(), Some(want), "{doc}");
        // And the round trip from the parsed value holds too.
        assert_eq!(parse(&parsed.to_string_pretty()).unwrap(), parsed);
    }
    // Lone or malformed surrogates must be rejected, not mangled.
    for bad in ["\"\\ud83d\"", "\"\\ud83d\\u0041\"", "\"\\udc00\""] {
        assert!(parse(bad).is_err(), "{bad}");
    }
}

#[test]
fn precision_edge_numbers_round_trip_exactly() {
    for &f in EDGE_FLOATS {
        let v = Value::Float(f);
        let back = parse(&v.to_string_pretty()).unwrap();
        match back {
            Value::Float(g) => {
                assert!(g == f || (g == 0.0 && f == 0.0), "{f:?} came back as {g:?}")
            }
            other => panic!("{f:?} came back as {other:?}"),
        }
    }
    for &i in EDGE_INTS {
        let v = Value::Int(i);
        assert_eq!(parse(&v.to_string_pretty()).unwrap(), v, "{i}");
    }
}
