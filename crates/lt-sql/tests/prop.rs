//! Property-based tests for the SQL front end.

use lt_sql::ast::{BinOp, ColumnRef, Expr, Literal, Query, SelectItem, SetQuantifier, TableRef};
use proptest::prelude::*;

/// Identifier strategy: lowercase SQL-safe names that are not keywords.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}".prop_filter("not a keyword", |s| {
        !matches!(
            s.as_str(),
            "select" | "from" | "where" | "group" | "having" | "order" | "limit" | "and"
                | "or" | "not" | "in" | "between" | "like" | "is" | "null" | "as" | "on"
                | "join" | "inner" | "case" | "when" | "then" | "else" | "end" | "exists"
                | "date" | "interval" | "distinct" | "all" | "by" | "asc" | "desc" | "to"
                | "left" | "right" | "full" | "cross" | "union" | "extract"
        )
    })
}

fn literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0.0f64..1e6).prop_map(|n| Expr::Literal(Literal::Number((n * 100.0).round() / 100.0))),
        "[a-zA-Z0-9 ]{0,12}".prop_map(|s| Expr::Literal(Literal::String(s))),
        Just(Expr::Literal(Literal::Null)),
    ]
}

fn column() -> impl Strategy<Value = Expr> {
    (proptest::option::of(ident()), ident()).prop_map(|(q, c)| {
        Expr::Column(ColumnRef { qualifier: q, column: c })
    })
}

/// Arithmetic expressions over columns and literals.
fn arith() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![literal(), column()];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(a, BinOp::Add, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::binary(a, BinOp::Mul, b)),
        ]
    })
}

/// Predicates: comparisons and postfix tests over arithmetic operands.
/// Stratified so rendered text is unambiguous (a comparison operand is
/// never itself a comparison).
fn predicate() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (arith(), arith()).prop_map(|(a, b)| Expr::binary(a, BinOp::Eq, b)),
        (arith(), arith()).prop_map(|(a, b)| Expr::binary(a, BinOp::Lt, b)),
        (arith(), arith(), arith()).prop_map(|(a, lo, hi)| Expr::Between {
            expr: Box::new(a),
            low: Box::new(lo),
            high: Box::new(hi),
            negated: false,
        }),
        (column(), "[a-zA-Z]{1,6}%").prop_map(|(c, p)| Expr::Like {
            expr: Box::new(c),
            pattern: Box::new(Expr::Literal(Literal::String(p))),
            negated: false,
        }),
        (column(), any::<bool>()).prop_map(|(c, negated)| Expr::IsNull {
            expr: Box::new(c),
            negated,
        }),
    ]
}

/// Boolean combinations of predicates (WHERE-clause shaped).
fn expr() -> impl Strategy<Value = Expr> {
    predicate().prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::and(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::binary(a, BinOp::Or, b)),
        ]
    })
}

fn query() -> impl Strategy<Value = Query> {
    (
        proptest::collection::vec(arith(), 1..4),
        proptest::collection::vec((ident(), proptest::option::of(ident())), 1..4),
        proptest::option::of(expr()),
        proptest::option::of(0u64..1000),
    )
        .prop_map(|(select, tables, filter, limit)| Query {
            quantifier: SetQuantifier::All,
            select: select
                .into_iter()
                .map(|e| SelectItem { expr: e, alias: None })
                .collect(),
            from: tables
                .into_iter()
                .map(|(name, alias)| TableRef::Table { name, alias })
                .collect(),
            filter,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit,
        })
}

proptest! {
    /// The tokenizer never panics, whatever the input.
    #[test]
    fn tokenizer_never_panics(input in ".{0,200}") {
        let _ = lt_sql::tokenize(&input);
    }

    /// The parser never panics on arbitrary input (errors are fine).
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = lt_sql::parse_query(&input);
    }

    /// Display → parse is the identity on generated query ASTs.
    #[test]
    fn display_parse_roundtrip(q in query()) {
        let sql = q.to_string();
        let reparsed = lt_sql::parse_query(&sql)
            .unwrap_or_else(|e| panic!("generated SQL failed to parse: {e}\n{sql}"));
        prop_assert_eq!(reparsed, q);
    }

    /// Analysis is total and produces resolvable facts on generated ASTs.
    #[test]
    fn analysis_is_total(q in query()) {
        let a = lt_sql::analysis::analyze(&q);
        // Tables come from the FROM clause (lower-cased, deduped).
        prop_assert!(a.tables.len() <= q.from.len());
        for pair in &a.join_pairs {
            let n = pair.normalized();
            prop_assert!(n.left <= n.right);
        }
    }

    /// Statement splitting preserves non-string semicolon counts.
    #[test]
    fn split_statements_never_loses_content(
        parts in proptest::collection::vec("[a-z0-9 ]{0,8}[a-z0-9][a-z0-9 ]{0,8}", 1..5),
    ) {
        let sql = parts.join(";");
        let stmts = lt_sql::split_statements(&sql);
        prop_assert_eq!(stmts.len(), parts.len());
        for (s, p) in stmts.iter().zip(&parts) {
            prop_assert_eq!(s.trim(), p.trim());
        }
    }
}
