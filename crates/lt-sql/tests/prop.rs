//! Randomized property tests for the SQL front end, driven by a seeded
//! `lt_common::Rng` so every run replays the same generated cases.

use lt_common::{seeded_rng, Rng};
use lt_sql::ast::{BinOp, ColumnRef, Expr, Literal, Query, SelectItem, SetQuantifier, TableRef};

const CASES: usize = 256;

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "select"
            | "from"
            | "where"
            | "group"
            | "having"
            | "order"
            | "limit"
            | "and"
            | "or"
            | "not"
            | "in"
            | "between"
            | "like"
            | "is"
            | "null"
            | "as"
            | "on"
            | "join"
            | "inner"
            | "case"
            | "when"
            | "then"
            | "else"
            | "end"
            | "exists"
            | "date"
            | "interval"
            | "distinct"
            | "all"
            | "by"
            | "asc"
            | "desc"
            | "to"
            | "left"
            | "right"
            | "full"
            | "cross"
            | "union"
            | "extract"
    )
}

/// Lowercase SQL-safe identifier that is not a keyword.
fn ident(rng: &mut Rng) -> String {
    loop {
        let first = (b'a' + rng.gen_range(0..26u8)) as char;
        let rest_len = rng.gen_range(0..=10usize);
        let pool = b"abcdefghijklmnopqrstuvwxyz0123456789_";
        let tail: String = (0..rest_len)
            .map(|_| pool[rng.gen_range(0..pool.len())] as char)
            .collect();
        let s = format!("{first}{tail}");
        if !is_keyword(&s) {
            return s;
        }
    }
}

fn literal(rng: &mut Rng) -> Expr {
    match rng.gen_range(0..3u8) {
        0 => {
            let n = rng.gen_range(0.0..1e6);
            Expr::Literal(Literal::Number((n * 100.0).round() / 100.0))
        }
        1 => {
            let pool: Vec<char> = ('a'..='z')
                .chain('A'..='Z')
                .chain('0'..='9')
                .chain([' '])
                .collect();
            let len = rng.gen_range(0..=12usize);
            let s: String = (0..len).map(|_| *rng.choose(&pool).unwrap()).collect();
            Expr::Literal(Literal::String(s))
        }
        _ => Expr::Literal(Literal::Null),
    }
}

fn column(rng: &mut Rng) -> Expr {
    let qualifier = if rng.gen_bool(0.5) {
        Some(ident(rng))
    } else {
        None
    };
    Expr::Column(ColumnRef {
        qualifier,
        column: ident(rng),
    })
}

/// Arithmetic expressions over columns and literals, depth-bounded.
fn arith(rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.5) {
        if rng.gen_bool(0.5) {
            literal(rng)
        } else {
            column(rng)
        }
    } else {
        let a = arith(rng, depth - 1);
        let b = arith(rng, depth - 1);
        let op = if rng.gen_bool(0.5) {
            BinOp::Add
        } else {
            BinOp::Mul
        };
        Expr::binary(a, op, b)
    }
}

/// Predicates: comparisons and postfix tests over arithmetic operands.
/// Stratified so rendered text is unambiguous (a comparison operand is
/// never itself a comparison).
fn predicate(rng: &mut Rng) -> Expr {
    match rng.gen_range(0..5u8) {
        0 => Expr::binary(arith(rng, 2), BinOp::Eq, arith(rng, 2)),
        1 => Expr::binary(arith(rng, 2), BinOp::Lt, arith(rng, 2)),
        2 => Expr::Between {
            expr: Box::new(arith(rng, 2)),
            low: Box::new(arith(rng, 2)),
            high: Box::new(arith(rng, 2)),
            negated: false,
        },
        3 => {
            let len = rng.gen_range(1..=6usize);
            let mut p: String = (0..len)
                .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                .collect();
            p.push('%');
            Expr::Like {
                expr: Box::new(column(rng)),
                pattern: Box::new(Expr::Literal(Literal::String(p))),
                negated: false,
            }
        }
        _ => Expr::IsNull {
            expr: Box::new(column(rng)),
            negated: rng.gen_bool(0.5),
        },
    }
}

/// Boolean combinations of predicates (WHERE-clause shaped).
fn expr(rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.5) {
        predicate(rng)
    } else {
        let a = expr(rng, depth - 1);
        let b = expr(rng, depth - 1);
        if rng.gen_bool(0.5) {
            Expr::and(a, b)
        } else {
            Expr::binary(a, BinOp::Or, b)
        }
    }
}

fn query(rng: &mut Rng) -> Query {
    let select: Vec<SelectItem> = (0..rng.gen_range(1..4usize))
        .map(|_| SelectItem {
            expr: arith(rng, 2),
            alias: None,
        })
        .collect();
    let from: Vec<TableRef> = (0..rng.gen_range(1..4usize))
        .map(|_| TableRef::Table {
            name: ident(rng),
            alias: if rng.gen_bool(0.5) {
                Some(ident(rng))
            } else {
                None
            },
        })
        .collect();
    let filter = if rng.gen_bool(0.5) {
        Some(expr(rng, 2))
    } else {
        None
    };
    let limit = if rng.gen_bool(0.5) {
        Some(rng.gen_range(0..1000u64))
    } else {
        None
    };
    Query {
        quantifier: SetQuantifier::All,
        select,
        from,
        filter,
        group_by: Vec::new(),
        having: None,
        order_by: Vec::new(),
        limit,
    }
}

/// Arbitrary text: printable ASCII plus whitespace and multi-byte chars.
fn arbitrary_text(rng: &mut Rng, max_len: usize) -> String {
    let pool: Vec<char> = (' '..='~')
        .chain(['\n', '\t', 'é', 'λ', '→', '\''])
        .collect();
    let len = rng.gen_range(0..=max_len);
    (0..len).map(|_| *rng.choose(&pool).unwrap()).collect()
}

/// The tokenizer never panics, whatever the input.
#[test]
fn tokenizer_never_panics() {
    let mut rng = seeded_rng(0x51);
    for _ in 0..CASES {
        let input = arbitrary_text(&mut rng, 200);
        let _ = lt_sql::tokenize(&input);
    }
}

/// The parser never panics on arbitrary input (errors are fine).
#[test]
fn parser_never_panics() {
    let mut rng = seeded_rng(0x52);
    for _ in 0..CASES {
        let input = arbitrary_text(&mut rng, 200);
        let _ = lt_sql::parse_query(&input);
    }
}

/// Display → parse is the identity on generated query ASTs.
#[test]
fn display_parse_roundtrip() {
    let mut rng = seeded_rng(0x53);
    for _ in 0..CASES {
        let q = query(&mut rng);
        let sql = q.to_string();
        let reparsed = lt_sql::parse_query(&sql)
            .unwrap_or_else(|e| panic!("generated SQL failed to parse: {e}\n{sql}"));
        assert_eq!(reparsed, q);
    }
}

/// Analysis is total and produces resolvable facts on generated ASTs.
#[test]
fn analysis_is_total() {
    let mut rng = seeded_rng(0x54);
    for _ in 0..CASES {
        let q = query(&mut rng);
        let a = lt_sql::analysis::analyze(&q);
        // Tables come from the FROM clause (lower-cased, deduped).
        assert!(a.tables.len() <= q.from.len());
        for pair in &a.join_pairs {
            let n = pair.normalized();
            assert!(n.left <= n.right);
        }
    }
}

/// Statement splitting preserves non-string semicolon counts.
#[test]
fn split_statements_never_loses_content() {
    let mut rng = seeded_rng(0x55);
    for _ in 0..CASES {
        let n_parts = rng.gen_range(1..5usize);
        let parts: Vec<String> = (0..n_parts)
            .map(|_| {
                // Shaped like [a-z0-9 ]{0,8}[a-z0-9][a-z0-9 ]{0,8}: at least
                // one non-space character so trimming cannot empty a part.
                let pool = b"abcdefghijklmnopqrstuvwxyz0123456789 ";
                let solid = b"abcdefghijklmnopqrstuvwxyz0123456789";
                let pre = rng.gen_range(0..=8usize);
                let post = rng.gen_range(0..=8usize);
                let mut s = String::new();
                for _ in 0..pre {
                    s.push(pool[rng.gen_range(0..pool.len())] as char);
                }
                s.push(solid[rng.gen_range(0..solid.len())] as char);
                for _ in 0..post {
                    s.push(pool[rng.gen_range(0..pool.len())] as char);
                }
                s
            })
            .collect();
        let sql = parts.join(";");
        let stmts = lt_sql::split_statements(&sql);
        assert_eq!(stmts.len(), parts.len());
        for (s, p) in stmts.iter().zip(&parts) {
            assert_eq!(s.trim(), p.trim());
        }
    }
}
