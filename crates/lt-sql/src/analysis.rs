//! Workload analysis passes.
//!
//! λ-Tune needs three facts about each query (paper §3.2 and §5.1):
//!
//! 1. its **join structure** — pairs of columns equated in join predicates,
//! 2. its **filter columns** — columns compared against literals (candidates
//!    for index lookups), and
//! 3. the **base tables** it touches.
//!
//! [`analyze`] extracts all three in one traversal, resolving alias
//! qualifiers to base-table names and recursing into subqueries.

use crate::ast::{ColumnRef, Expr, Query, SelectItem, TableRef};
use std::collections::BTreeMap;

/// An equality join between two columns, with alias qualifiers resolved to
/// base-table names where the query defines them.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JoinPair {
    /// One side of the equality.
    pub left: ColumnRef,
    /// The other side.
    pub right: ColumnRef,
}

impl JoinPair {
    /// Canonical form: sides ordered lexicographically, so `A=B` and `B=A`
    /// compare equal after normalization.
    pub fn normalized(&self) -> JoinPair {
        if self.left <= self.right {
            self.clone()
        } else {
            JoinPair {
                left: self.right.clone(),
                right: self.left.clone(),
            }
        }
    }
}

/// Facts extracted from one query (including all of its subqueries).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryAnalysis {
    /// Base tables referenced, lower-cased, deduplicated, sorted.
    pub tables: Vec<String>,
    /// Equality join conditions between columns.
    pub join_pairs: Vec<JoinPair>,
    /// Columns compared against literals (filter predicates).
    pub filter_columns: Vec<ColumnRef>,
    /// Every column referenced anywhere in the query.
    pub all_columns: Vec<ColumnRef>,
}

impl QueryAnalysis {
    /// Deduplicated, normalization-aware join pairs.
    pub fn unique_join_pairs(&self) -> Vec<JoinPair> {
        let mut v: Vec<JoinPair> = self.join_pairs.iter().map(JoinPair::normalized).collect();
        v.sort();
        v.dedup();
        v
    }
}

/// Analyzes a query tree.
pub fn analyze(query: &Query) -> QueryAnalysis {
    let mut out = QueryAnalysis::default();
    walk_query(query, &mut out);
    out.tables.sort();
    out.tables.dedup();
    out
}

/// Per-query alias → base-table map (lower-cased).
fn alias_map(query: &Query) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for t in &query.from {
        if let TableRef::Table { name, alias } = t {
            let table = name.to_ascii_lowercase();
            map.insert(t.binding().to_ascii_lowercase(), table.clone());
            // The table is also addressable by its own name even when
            // aliased in PostgreSQL only if unaliased; mirror that rule.
            if alias.is_none() {
                map.insert(table.clone(), table);
            }
        }
    }
    map
}

fn resolve(col: &ColumnRef, aliases: &BTreeMap<String, String>) -> ColumnRef {
    match &col.qualifier {
        Some(q) => {
            let key = q.to_ascii_lowercase();
            let table = aliases.get(&key).cloned().unwrap_or(key);
            ColumnRef {
                qualifier: Some(table),
                column: col.column.to_ascii_lowercase(),
            }
        }
        None => ColumnRef {
            qualifier: None,
            column: col.column.to_ascii_lowercase(),
        },
    }
}

fn walk_query(query: &Query, out: &mut QueryAnalysis) {
    let aliases = alias_map(query);
    for t in &query.from {
        match t {
            TableRef::Table { name, .. } => out.tables.push(name.to_ascii_lowercase()),
            TableRef::Derived { query, .. } => walk_query(query, out),
        }
    }
    for SelectItem { expr, .. } in &query.select {
        walk_expr(expr, &aliases, out, false);
    }
    if let Some(f) = &query.filter {
        walk_expr(f, &aliases, out, true);
    }
    for g in &query.group_by {
        walk_expr(g, &aliases, out, false);
    }
    if let Some(h) = &query.having {
        walk_expr(h, &aliases, out, false);
    }
    for o in &query.order_by {
        walk_expr(&o.expr, &aliases, out, false);
    }
}

/// Walks an expression. `in_predicate` marks positions where a
/// column-vs-literal comparison counts as a filter predicate.
fn walk_expr(
    expr: &Expr,
    aliases: &BTreeMap<String, String>,
    out: &mut QueryAnalysis,
    in_predicate: bool,
) {
    match expr {
        Expr::Column(c) => out.all_columns.push(resolve(c, aliases)),
        Expr::Literal(_) | Expr::Star => {}
        Expr::Unary { expr, .. } => walk_expr(expr, aliases, out, in_predicate),
        Expr::Binary { left, op, right } => {
            if op.is_comparison() && in_predicate {
                match (strip_column(left), strip_column(right)) {
                    (Some(l), Some(r)) if *op == crate::ast::BinOp::Eq => {
                        let lp = resolve(l, aliases);
                        let rp = resolve(r, aliases);
                        out.all_columns.push(lp.clone());
                        out.all_columns.push(rp.clone());
                        out.join_pairs.push(JoinPair {
                            left: lp,
                            right: rp,
                        });
                        return;
                    }
                    (Some(l), None) if is_constantish(right) => {
                        let c = resolve(l, aliases);
                        out.all_columns.push(c.clone());
                        out.filter_columns.push(c);
                        walk_expr(right, aliases, out, in_predicate);
                        return;
                    }
                    (None, Some(r)) if is_constantish(left) => {
                        let c = resolve(r, aliases);
                        out.all_columns.push(c.clone());
                        out.filter_columns.push(c);
                        walk_expr(left, aliases, out, in_predicate);
                        return;
                    }
                    _ => {}
                }
            }
            walk_expr(left, aliases, out, in_predicate);
            walk_expr(right, aliases, out, in_predicate);
        }
        Expr::Func { args, .. } => {
            for a in args {
                walk_expr(a, aliases, out, false);
            }
        }
        Expr::Extract { from, .. } => walk_expr(from, aliases, out, false),
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            if let Some(op) = operand {
                walk_expr(op, aliases, out, false);
            }
            for (w, t) in branches {
                walk_expr(w, aliases, out, in_predicate);
                walk_expr(t, aliases, out, false);
            }
            if let Some(e) = else_branch {
                walk_expr(e, aliases, out, false);
            }
        }
        Expr::InList { expr, list, .. } => {
            if let Some(c) = strip_column(expr) {
                let c = resolve(c, aliases);
                out.all_columns.push(c.clone());
                if in_predicate {
                    out.filter_columns.push(c);
                }
            } else {
                walk_expr(expr, aliases, out, in_predicate);
            }
            for v in list {
                walk_expr(v, aliases, out, false);
            }
        }
        Expr::InSubquery { expr, query, .. } => {
            if let Some(c) = strip_column(expr) {
                let c = resolve(c, aliases);
                out.all_columns.push(c.clone());
                if in_predicate {
                    // A semi-join behaves like a join for index purposes.
                    out.filter_columns.push(c);
                }
            } else {
                walk_expr(expr, aliases, out, in_predicate);
            }
            walk_query(query, out);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            if let Some(c) = strip_column(expr) {
                let c = resolve(c, aliases);
                out.all_columns.push(c.clone());
                if in_predicate {
                    out.filter_columns.push(c);
                }
            } else {
                walk_expr(expr, aliases, out, in_predicate);
            }
            walk_expr(low, aliases, out, false);
            walk_expr(high, aliases, out, false);
        }
        Expr::Like { expr, pattern, .. } => {
            if let Some(c) = strip_column(expr) {
                let c = resolve(c, aliases);
                out.all_columns.push(c.clone());
                if in_predicate {
                    out.filter_columns.push(c);
                }
            } else {
                walk_expr(expr, aliases, out, in_predicate);
            }
            walk_expr(pattern, aliases, out, false);
        }
        Expr::IsNull { expr, .. } => {
            if let Some(c) = strip_column(expr) {
                let c = resolve(c, aliases);
                out.all_columns.push(c.clone());
                if in_predicate {
                    out.filter_columns.push(c);
                }
            } else {
                walk_expr(expr, aliases, out, in_predicate);
            }
        }
        Expr::Exists { query, .. } => walk_query(query, out),
        Expr::Subquery(q) => walk_query(q, out),
    }
}

fn strip_column(expr: &Expr) -> Option<&ColumnRef> {
    match expr {
        Expr::Column(c) => Some(c),
        _ => None,
    }
}

/// True when the expression contains no column references (so a comparison
/// against it is a filter, not a join).
fn is_constantish(expr: &Expr) -> bool {
    match expr {
        Expr::Literal(_) => true,
        Expr::Unary { expr, .. } => is_constantish(expr),
        Expr::Binary { left, right, .. } => is_constantish(left) && is_constantish(right),
        Expr::Extract { from, .. } => is_constantish(from),
        Expr::Func { args, .. } => args.iter().all(is_constantish),
        Expr::Subquery(_) => true, // uncorrelated scalar subquery ≈ constant
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn analyze_sql(sql: &str) -> QueryAnalysis {
        analyze(&parse_query(sql).unwrap())
    }

    #[test]
    fn join_pairs_resolve_aliases() {
        let a = analyze_sql("select * from lineitem l, orders o where l.l_orderkey = o.o_orderkey");
        assert_eq!(a.join_pairs.len(), 1);
        let jp = &a.join_pairs[0];
        assert_eq!(jp.left, ColumnRef::qualified("lineitem", "l_orderkey"));
        assert_eq!(jp.right, ColumnRef::qualified("orders", "o_orderkey"));
    }

    #[test]
    fn filter_columns_detected() {
        let a = analyze_sql(
            "select * from part where p_size = 15 and p_type like '%BRASS' \
             and p_retailprice between 100 and 200 and p_brand in ('A', 'B')",
        );
        let names: Vec<&str> = a.filter_columns.iter().map(|c| c.column.as_str()).collect();
        assert!(names.contains(&"p_size"));
        assert!(names.contains(&"p_type"));
        assert!(names.contains(&"p_retailprice"));
        assert!(names.contains(&"p_brand"));
    }

    #[test]
    fn literal_on_left_is_still_a_filter() {
        let a = analyze_sql("select * from part where 15 = p_size");
        assert_eq!(a.filter_columns.len(), 1);
        assert_eq!(a.filter_columns[0].column, "p_size");
        assert!(a.join_pairs.is_empty());
    }

    #[test]
    fn tables_are_deduped_and_include_subqueries() {
        let a = analyze_sql(
            "select * from orders where o_custkey in \
             (select c_custkey from customer) and o_orderkey in \
             (select l_orderkey from lineitem)",
        );
        assert_eq!(a.tables, vec!["customer", "lineitem", "orders"]);
    }

    #[test]
    fn correlated_exists_contributes_join_pairs() {
        let a = analyze_sql(
            "select * from customer c where exists \
             (select * from orders o where o.o_custkey = c.c_custkey)",
        );
        assert_eq!(a.join_pairs.len(), 1);
        // The inner query's aliases resolve o; c resolves in the inner
        // query's scope too because analysis is per-level: the qualifier "c"
        // is kept when unknown at that level.
        let jp = a.join_pairs[0].normalized();
        assert!(jp.left.column == "c_custkey" || jp.right.column == "c_custkey");
    }

    #[test]
    fn normalized_pairs_dedupe_symmetric_joins() {
        let a = analyze_sql("select * from a, b where a.x = b.y and b.y = a.x");
        assert_eq!(a.join_pairs.len(), 2);
        assert_eq!(a.unique_join_pairs().len(), 1);
    }

    #[test]
    fn select_list_columns_are_collected_but_not_filters() {
        let a = analyze_sql("select l_extendedprice from lineitem");
        assert!(a.filter_columns.is_empty());
        assert_eq!(a.all_columns.len(), 1);
        assert_eq!(a.all_columns[0].column, "l_extendedprice");
    }

    #[test]
    fn non_equality_column_comparison_is_not_a_join() {
        let a = analyze_sql("select * from a, b where a.x < b.y");
        assert!(a.join_pairs.is_empty());
    }

    #[test]
    fn derived_tables_are_analyzed() {
        let a = analyze_sql(
            "select avg(cnt) from (select count(*) as cnt from orders \
             where o_totalprice > 100 group by o_custkey) t",
        );
        assert_eq!(a.tables, vec!["orders"]);
        assert_eq!(a.filter_columns.len(), 1);
    }

    #[test]
    fn case_when_predicates_count_as_filters() {
        let a = analyze_sql(
            "select sum(case when o_orderpriority = 'URGENT' then 1 else 0 end) from orders \
             where o_orderstatus = 'F'",
        );
        let names: Vec<&str> = a.filter_columns.iter().map(|c| c.column.as_str()).collect();
        assert!(names.contains(&"o_orderstatus"));
    }
}
