//! Abstract syntax tree for the analytical SQL dialect.
//!
//! The AST is deliberately *analysis-oriented*: inner `JOIN … ON` conditions
//! are folded into the WHERE conjunction at parse time (all three benchmark
//! workloads use inner joins only), which makes join-structure extraction a
//! single traversal.

use std::fmt;

/// A possibly-qualified column reference, e.g. `l.l_orderkey` or `o_custkey`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    /// Table name or alias, if written.
    pub qualifier: Option<String>,
    /// Column name (original case preserved; compared case-insensitively).
    pub column: String,
}

impl ColumnRef {
    /// Unqualified reference.
    pub fn bare(column: impl Into<String>) -> Self {
        Self {
            qualifier: None,
            column: column.into(),
        }
    }

    /// Qualified reference.
    pub fn qualified(qualifier: impl Into<String>, column: impl Into<String>) -> Self {
        Self {
            qualifier: Some(qualifier.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// A scalar literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Numeric literal; kept as `f64` (benchmark constants fit exactly).
    Number(f64),
    /// String literal.
    String(String),
    /// `DATE '1995-01-01'`.
    Date(String),
    /// `INTERVAL '3' MONTH` — value and unit.
    Interval(String, String),
    /// `NULL`.
    Null,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Number(n) => write!(f, "{n}"),
            Literal::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Date(d) => write!(f, "date '{d}'"),
            Literal::Interval(v, u) => write!(f, "interval '{v}' {u}"),
            Literal::Null => write!(f, "null"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `||`
    Concat,
}

impl BinOp {
    /// SQL spelling of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Concat => "||",
        }
    }

    /// True for comparison operators (`=`, `<>`, `<`, `<=`, `>`, `>=`).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }
}

/// Scalar / boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal value.
    Literal(Literal),
    /// Unary negation `-e` or `NOT e`.
    Unary {
        /// `"-"` or `"not"`.
        op: &'static str,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Function call, e.g. `sum(l_extendedprice * (1 - l_discount))`.
    Func {
        /// Function name, lower-cased.
        name: String,
        /// Arguments; empty for `count(*)` (see [`Expr::Star`]).
        args: Vec<Expr>,
        /// `DISTINCT` qualifier inside the call.
        distinct: bool,
    },
    /// `EXTRACT(field FROM expr)`.
    Extract {
        /// Field name (`year`, `month`, …), lower-cased.
        field: String,
        /// Source expression.
        from: Box<Expr>,
    },
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`.
    Case {
        /// Optional comparand.
        operand: Option<Box<Expr>>,
        /// `(when, then)` pairs.
        branches: Vec<(Expr, Expr)>,
        /// Optional `ELSE`.
        else_branch: Option<Box<Expr>>,
    },
    /// `expr [NOT] IN (list…)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT …)`.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// Inner query.
        query: Box<Query>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN lo AND hi`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern expression.
        pattern: Box<Expr>,
        /// `NOT LIKE`.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT …)`.
    Exists {
        /// Inner query.
        query: Box<Query>,
        /// `NOT EXISTS`.
        negated: bool,
    },
    /// Scalar subquery `(SELECT …)` in expression position.
    Subquery(Box<Query>),
    /// `*` inside `count(*)`.
    Star,
}

impl Expr {
    /// Convenience constructor for `left op right`.
    pub fn binary(left: Expr, op: BinOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// Conjunction of two boolean expressions.
    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinOp::And, right)
    }

    /// Binding strength of this expression when rendered (higher binds
    /// tighter); used to emit the minimal parentheses that make Display
    /// round-trip through the parser.
    fn precedence(&self) -> u8 {
        match self {
            Expr::Binary { op, .. } => match op {
                BinOp::Or => 1,
                BinOp::And => 2,
                op if op.is_comparison() => 3,
                BinOp::Add | BinOp::Sub | BinOp::Concat => 4,
                _ => 5,
            },
            _ => 6,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Unary { op, expr } => {
                if *op == "not" {
                    write!(f, "not ({expr})")
                } else {
                    write!(f, "{op}{expr}")
                }
            }
            Expr::Binary { left, op, right } => {
                let prec = self.precedence();
                // Left-associative grammar: the left child may share this
                // precedence, the right child must bind strictly tighter.
                let wrap_left = left.precedence() < prec;
                let wrap_right = right.precedence() <= prec;
                if wrap_left {
                    write!(f, "({left})")?;
                } else {
                    write!(f, "{left}")?;
                }
                write!(f, " {} ", op.sql())?;
                if wrap_right {
                    write!(f, "({right})")
                } else {
                    write!(f, "{right}")
                }
            }
            Expr::Func {
                name,
                args,
                distinct,
            } => {
                write!(f, "{name}(")?;
                if *distinct {
                    write!(f, "distinct ")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Extract { field, from } => write!(f, "extract({field} from {from})"),
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                write!(f, "case")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (w, t) in branches {
                    write!(f, " when {w} then {t}")?;
                }
                if let Some(e) = else_branch {
                    write!(f, " else {e}")?;
                }
                write!(f, " end")
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "{expr} {}in (", if *negated { "not " } else { "" })?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                write!(
                    f,
                    "{expr} {}in ({query})",
                    if *negated { "not " } else { "" }
                )
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "{expr} {}between {low} and {high}",
                if *negated { "not " } else { "" }
            ),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                write!(
                    f,
                    "{expr} {}like {pattern}",
                    if *negated { "not " } else { "" }
                )
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} is {}null", if *negated { "not " } else { "" })
            }
            Expr::Exists { query, negated } => {
                write!(f, "{}exists ({query})", if *negated { "not " } else { "" })
            }
            Expr::Subquery(q) => write!(f, "({q})"),
            Expr::Star => write!(f, "*"),
        }
    }
}

/// `SELECT [ALL|DISTINCT]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SetQuantifier {
    /// Default.
    #[default]
    All,
    /// `DISTINCT`.
    Distinct,
}

/// An item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// Projected expression (or [`Expr::Star`] for `SELECT *`).
    pub expr: Expr,
    /// `AS alias`, if any.
    pub alias: Option<String>,
}

/// A relation in the FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table with optional alias.
    Table {
        /// Table name.
        name: String,
        /// `AS alias` / bare alias.
        alias: Option<String>,
    },
    /// Derived table `(SELECT …) alias`.
    Derived {
        /// Inner query.
        query: Box<Query>,
        /// Mandatory alias.
        alias: String,
    },
}

impl TableRef {
    /// The name this relation is referred to by in the rest of the query
    /// (alias if present, table name otherwise).
    pub fn binding(&self) -> &str {
        match self {
            TableRef::Table { name, alias } => alias.as_deref().unwrap_or(name),
            TableRef::Derived { alias, .. } => alias,
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Table { name, alias } => match alias {
                Some(a) => write!(f, "{name} as {a}"),
                None => write!(f, "{name}"),
            },
            TableRef::Derived { query, alias } => write!(f, "({query}) as {alias}"),
        }
    }
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort expression.
    pub expr: Expr,
    /// `DESC`?
    pub desc: bool,
}

/// An equality join condition between two columns, as extracted by analysis.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JoinCondition {
    /// Left column.
    pub left: ColumnRef,
    /// Right column.
    pub right: ColumnRef,
}

/// A single SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `ALL` / `DISTINCT`.
    pub quantifier: SetQuantifier,
    /// Select list.
    pub select: Vec<SelectItem>,
    /// FROM relations. Explicit `JOIN … ON` conditions are folded into
    /// [`Query::filter`] at parse time.
    pub from: Vec<TableRef>,
    /// WHERE clause (plus folded join conditions), if any.
    pub filter: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING clause.
    pub having: Option<Expr>,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// LIMIT, if any.
    pub limit: Option<u64>,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select ")?;
        if self.quantifier == SetQuantifier::Distinct {
            write!(f, "distinct ")?;
        }
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", item.expr)?;
            if let Some(a) = &item.alias {
                write!(f, " as {a}")?;
            }
        }
        write!(f, " from ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        if let Some(w) = &self.filter {
            write!(f, " where {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " group by ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " having {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " order by ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", o.expr)?;
                if o.desc {
                    write!(f, " desc")?;
                }
            }
        }
        if let Some(l) = self.limit {
            write!(f, " limit {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_ref_display() {
        assert_eq!(ColumnRef::bare("x").to_string(), "x");
        assert_eq!(ColumnRef::qualified("t", "x").to_string(), "t.x");
    }

    #[test]
    fn literal_display_escapes_quotes() {
        assert_eq!(Literal::String("it's".into()).to_string(), "'it''s'");
        assert_eq!(
            Literal::Date("1995-01-01".into()).to_string(),
            "date '1995-01-01'"
        );
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::And.is_comparison());
        assert_eq!(BinOp::NotEq.sql(), "<>");
    }

    #[test]
    fn table_ref_binding_prefers_alias() {
        let t = TableRef::Table {
            name: "lineitem".into(),
            alias: Some("l".into()),
        };
        assert_eq!(t.binding(), "l");
        let t = TableRef::Table {
            name: "lineitem".into(),
            alias: None,
        };
        assert_eq!(t.binding(), "lineitem");
    }
}
