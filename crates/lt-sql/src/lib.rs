//! SQL front end for the λ-Tune reproduction.
//!
//! λ-Tune never executes SQL itself — it *analyzes* analytical queries to
//! extract join structure (for workload compression, §3.2 of the paper) and
//! column references (for lazy index relevance, §5.1). This crate provides a
//! hand-written lexer and recursive-descent parser covering the dialect used
//! by TPC-H, TPC-DS and the Join Order Benchmark, plus the analysis passes
//! the tuner needs.

pub mod analysis;
pub mod ast;
pub mod lexer;
pub mod parser;

pub use analysis::{JoinPair, QueryAnalysis};
pub use ast::{
    ColumnRef, Expr, JoinCondition, Literal, OrderItem, Query, SelectItem, SetQuantifier, TableRef,
};
pub use lexer::{tokenize, Token, TokenKind};
pub use parser::parse_query;

/// Parses a semicolon-separated batch of statements into queries.
///
/// Empty statements (stray semicolons, trailing whitespace) are skipped.
pub fn parse_batch(sql: &str) -> lt_common::Result<Vec<ast::Query>> {
    let mut out = Vec::new();
    for stmt in split_statements(sql) {
        let trimmed = stmt.trim();
        if trimmed.is_empty() {
            continue;
        }
        out.push(parse_query(trimmed)?);
    }
    Ok(out)
}

/// Splits SQL text on top-level semicolons, respecting string literals.
pub fn split_statements(sql: &str) -> Vec<String> {
    let mut stmts = Vec::new();
    let mut cur = String::new();
    let mut in_string = false;
    let chars = sql.chars().peekable();
    for c in chars {
        match c {
            '\'' => {
                in_string = !in_string;
                cur.push(c);
            }
            ';' if !in_string => {
                stmts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        stmts.push(cur);
    }
    stmts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_respects_string_literals() {
        let stmts = split_statements("select ';' from t; select 1");
        assert_eq!(stmts.len(), 2);
        assert!(stmts[0].contains("';'"));
    }

    #[test]
    fn parse_batch_skips_empty_statements() {
        let qs = parse_batch("select a from t;; select b from u;").unwrap();
        assert_eq!(qs.len(), 2);
    }
}
