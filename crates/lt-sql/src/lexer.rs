//! SQL tokenizer.
//!
//! Produces a flat token stream with byte offsets so the parser can report
//! precise error positions. Keywords are case-insensitive; identifiers keep
//! their original case but compare case-insensitively downstream.

use lt_common::{LtError, Result};

use std::fmt;

/// Lexical class of a token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Unquoted identifier or keyword (`lineitem`, `SELECT`). Stored as
    /// written; keyword checks are case-insensitive.
    Ident(String),
    /// Single-quoted string literal, unescaped content.
    StringLit(String),
    /// Numeric literal (integer or decimal), kept as text to avoid precision
    /// loss; parsed on demand.
    Number(String),
    /// Punctuation or operator: `(`, `)`, `,`, `.`, `=`, `<>`, `<=`, …
    Symbol(&'static str),
    /// End of input sentinel.
    Eof,
}

impl TokenKind {
    /// True when this token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// True when this token is the given symbol.
    pub fn is_symbol(&self, sym: &str) -> bool {
        matches!(self, TokenKind::Symbol(s) if *s == sym)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::StringLit(s) => write!(f, "'{s}'"),
            TokenKind::Number(s) => write!(f, "{s}"),
            TokenKind::Symbol(s) => write!(f, "{s}"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its byte offset in the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Lexical class and content.
    pub kind: TokenKind,
    /// Byte offset of the first character in the source.
    pub offset: usize,
}

const SYMBOLS2: &[&str] = &["<>", "<=", ">=", "!=", "||"];
const SYMBOLS1: &[&str] = &[
    "(", ")", ",", ".", "=", "<", ">", "+", "-", "*", "/", ";", "%",
];

/// Tokenizes SQL text.
///
/// Supports `--` line comments and `/* */` block comments, single-quoted
/// strings with `''` escaping, decimal numbers, and the operator set used by
/// the OLAP benchmarks.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comment.
        if c == '/' && bytes.get(i + 1) == Some(&b'*') {
            let start = i;
            i += 2;
            loop {
                if i + 1 >= bytes.len() {
                    return Err(LtError::Parse(format!(
                        "unterminated block comment at byte {start}"
                    )));
                }
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    i += 2;
                    break;
                }
                i += 1;
            }
            continue;
        }
        // String literal.
        if c == '\'' {
            let start = i;
            i += 1;
            let mut content = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(LtError::Parse(format!(
                        "unterminated string literal at byte {start}"
                    )));
                }
                if bytes[i] == b'\'' {
                    // Escaped quote.
                    if bytes.get(i + 1) == Some(&b'\'') {
                        content.push('\'');
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                // Safe: benchmark SQL is ASCII, but stay UTF-8 correct by
                // re-slicing on char boundaries.
                let ch_len = utf8_len(bytes[i]);
                content.push_str(&sql[i..i + ch_len]);
                i += ch_len;
            }
            tokens.push(Token {
                kind: TokenKind::StringLit(content),
                offset: start,
            });
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Number(sql[start..i].to_string()),
                offset: start,
            });
            continue;
        }
        // Identifier / keyword.
        if c.is_ascii_alphabetic() || c == '_' || c == '"' {
            let start = i;
            if c == '"' {
                // Quoted identifier.
                i += 1;
                let id_start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(LtError::Parse(format!(
                        "unterminated quoted identifier at byte {start}"
                    )));
                }
                let name = sql[id_start..i].to_string();
                i += 1;
                tokens.push(Token {
                    kind: TokenKind::Ident(name),
                    offset: start,
                });
                continue;
            }
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident(sql[start..i].to_string()),
                offset: start,
            });
            continue;
        }
        // Non-ASCII characters are outside the dialect; report them
        // cleanly instead of slicing across a UTF-8 boundary.
        if !c.is_ascii() {
            let ch = sql[i..].chars().next().expect("in-bounds char");
            return Err(LtError::Parse(format!(
                "unexpected character {ch:?} at byte {i}"
            )));
        }
        // Two-char symbols first.
        if i + 1 < bytes.len() && bytes[i + 1].is_ascii() {
            let pair = &sql[i..i + 2];
            if let Some(sym) = SYMBOLS2.iter().find(|s| **s == pair) {
                tokens.push(Token {
                    kind: TokenKind::Symbol(sym),
                    offset: i,
                });
                i += 2;
                continue;
            }
        }
        let single = &sql[i..i + 1];
        if let Some(sym) = SYMBOLS1.iter().find(|s| **s == single) {
            tokens.push(Token {
                kind: TokenKind::Symbol(sym),
                offset: i,
            });
            i += 1;
            continue;
        }
        return Err(LtError::Parse(format!(
            "unexpected character {c:?} at byte {i}"
        )));
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: bytes.len(),
    });
    Ok(tokens)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_select() {
        let ks = kinds("SELECT a, b FROM t WHERE a = 1");
        assert!(ks[0].is_keyword("select"));
        assert!(ks[1].is_keyword("a"));
        assert!(ks[2].is_symbol(","));
        assert_eq!(ks.last().unwrap(), &TokenKind::Eof);
    }

    #[test]
    fn string_with_escaped_quote() {
        let ks = kinds("select 'it''s'");
        assert_eq!(ks[1], TokenKind::StringLit("it's".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("select a -- comment\n from /* block */ t");
        assert_eq!(ks.len(), 5); // select a from t <eof>
    }

    #[test]
    fn two_char_operators() {
        let ks = kinds("a <> b <= c >= d != e");
        assert!(ks[1].is_symbol("<>"));
        assert!(ks[3].is_symbol("<="));
        assert!(ks[5].is_symbol(">="));
        assert!(ks[7].is_symbol("!="));
    }

    #[test]
    fn decimal_numbers() {
        let ks = kinds("select 0.05, 42");
        assert_eq!(ks[1], TokenKind::Number("0.05".into()));
        assert_eq!(ks[3], TokenKind::Number("42".into()));
    }

    #[test]
    fn quoted_identifiers() {
        let ks = kinds("select \"Weird Name\" from t");
        assert_eq!(ks[1], TokenKind::Ident("Weird Name".into()));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(tokenize("select 'oops").is_err());
    }

    #[test]
    fn unterminated_block_comment_is_an_error() {
        assert!(tokenize("select 1 /* oops").is_err());
    }

    #[test]
    fn unexpected_character_is_an_error() {
        let err = tokenize("select #").unwrap_err();
        assert_eq!(err.category(), "parse");
    }

    #[test]
    fn offsets_point_at_token_start() {
        let toks = tokenize("ab cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
    }
}
