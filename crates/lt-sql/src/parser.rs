//! Recursive-descent parser for the analytical SQL dialect.
//!
//! Covers the constructs used by TPC-H, TPC-DS and JOB: implicit comma joins
//! and explicit `[INNER] JOIN … ON`, conjunctive/disjunctive predicates,
//! `IN` (list and subquery), `BETWEEN`, `LIKE`, `EXISTS`, scalar subqueries,
//! `CASE`, `EXTRACT`, aggregates, `GROUP BY` / `HAVING` / `ORDER BY` /
//! `LIMIT`, date and interval literals.

use crate::ast::*;
use crate::lexer::{tokenize, Token, TokenKind};
use lt_common::{LtError, Result};

/// Parses a single SELECT query from SQL text.
pub fn parse_query(sql: &str) -> Result<Query> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn err(&self, msg: &str) -> LtError {
        LtError::Parse(format!(
            "{msg} at byte {} (found {})",
            self.tokens[self.pos].offset,
            self.peek()
        ))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().is_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected keyword {kw}")))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if self.peek().is_symbol(sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {sym:?}")))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        // A trailing semicolon is tolerated.
        self.eat_symbol(";");
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err("expected end of statement"))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(LtError::Parse(format!(
                "expected identifier, found {other}"
            ))),
        }
    }

    // ---- query ----

    fn query(&mut self) -> Result<Query> {
        self.expect_keyword("select")?;
        let quantifier = if self.eat_keyword("distinct") {
            SetQuantifier::Distinct
        } else {
            self.eat_keyword("all");
            SetQuantifier::All
        };
        let select = self.select_list()?;
        self.expect_keyword("from")?;
        let (from, join_conds) = self.from_clause()?;
        let mut filter = if self.eat_keyword("where") {
            Some(self.expr()?)
        } else {
            None
        };
        // Fold explicit JOIN ... ON conditions into the filter conjunction.
        for cond in join_conds {
            filter = Some(match filter {
                Some(f) => Expr::and(f, cond),
                None => cond,
            });
        }
        let group_by = if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            self.expr_list()?
        } else {
            Vec::new()
        };
        let having = if self.eat_keyword("having") {
            Some(self.expr()?)
        } else {
            None
        };
        let order_by = if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            self.order_items()?
        } else {
            Vec::new()
        };
        let limit = if self.eat_keyword("limit") {
            match self.bump() {
                TokenKind::Number(n) => Some(
                    n.parse::<u64>()
                        .map_err(|_| LtError::Parse(format!("invalid LIMIT value {n}")))?,
                ),
                other => {
                    return Err(LtError::Parse(format!(
                        "expected LIMIT count, found {other}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query {
            quantifier,
            select,
            from,
            filter,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            let expr = if self.peek().is_symbol("*") {
                self.bump();
                Expr::Star
            } else {
                self.expr()?
            };
            let alias = if self.eat_keyword("as") {
                Some(self.ident()?)
            } else {
                None
            };
            items.push(SelectItem { expr, alias });
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(items)
    }

    // Named for the grammar rule it parses, not a conversion constructor.
    #[allow(clippy::wrong_self_convention)]
    fn from_clause(&mut self) -> Result<(Vec<TableRef>, Vec<Expr>)> {
        let mut refs = vec![self.table_ref()?];
        let mut join_conds = Vec::new();
        loop {
            if self.eat_symbol(",") {
                refs.push(self.table_ref()?);
            } else if self.peek().is_keyword("inner") || self.peek().is_keyword("join") {
                self.eat_keyword("inner");
                self.expect_keyword("join")?;
                refs.push(self.table_ref()?);
                if self.eat_keyword("on") {
                    join_conds.push(self.expr()?);
                }
            } else {
                break;
            }
        }
        Ok((refs, join_conds))
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        if self.peek().is_symbol("(") {
            self.bump();
            let q = self.query()?;
            self.expect_symbol(")")?;
            self.eat_keyword("as");
            let alias = self.ident()?;
            return Ok(TableRef::Derived {
                query: Box::new(q),
                alias,
            });
        }
        let name = self.ident()?;
        let alias = if self.eat_keyword("as") {
            Some(self.ident()?)
        } else if let TokenKind::Ident(s) = self.peek() {
            // A bare identifier is an alias unless it is a clause keyword.
            if is_clause_keyword(s) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(TableRef::Table { name, alias })
    }

    fn order_items(&mut self) -> Result<Vec<OrderItem>> {
        let mut items = Vec::new();
        loop {
            let expr = self.expr()?;
            let desc = if self.eat_keyword("desc") {
                true
            } else {
                self.eat_keyword("asc");
                false
            };
            items.push(OrderItem { expr, desc });
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(items)
    }

    fn expr_list(&mut self) -> Result<Vec<Expr>> {
        let mut list = vec![self.expr()?];
        while self.eat_symbol(",") {
            list.push(self.expr()?);
        }
        Ok(list)
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("or") {
            let right = self.and_expr()?;
            left = Expr::binary(left, BinOp::Or, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("and") {
            let right = self.not_expr()?;
            left = Expr::binary(left, BinOp::And, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.peek().is_keyword("not") && !self.peek2().is_keyword("exists") {
            self.bump();
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: "not",
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // Postfix predicates.
        let negated = if self.peek().is_keyword("not")
            && (self.peek2().is_keyword("in")
                || self.peek2().is_keyword("between")
                || self.peek2().is_keyword("like"))
        {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_keyword("in") {
            self.expect_symbol("(")?;
            if self.peek().is_keyword("select") {
                let q = self.query()?;
                self.expect_symbol(")")?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(q),
                    negated,
                });
            }
            let list = self.expr_list()?;
            self.expect_symbol(")")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword("between") {
            let low = self.additive()?;
            self.expect_keyword("and")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("like") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(self.err("expected IN, BETWEEN or LIKE after NOT"));
        }
        if self.eat_keyword("is") {
            let negated = self.eat_keyword("not");
            self.expect_keyword("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let op = match self.peek() {
            TokenKind::Symbol("=") => Some(BinOp::Eq),
            TokenKind::Symbol("<>") | TokenKind::Symbol("!=") => Some(BinOp::NotEq),
            TokenKind::Symbol("<") => Some(BinOp::Lt),
            TokenKind::Symbol("<=") => Some(BinOp::LtEq),
            TokenKind::Symbol(">") => Some(BinOp::Gt),
            TokenKind::Symbol(">=") => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Symbol("+") => BinOp::Add,
                TokenKind::Symbol("-") => BinOp::Sub,
                TokenKind::Symbol("||") => BinOp::Concat,
                _ => break,
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Symbol("*") => BinOp::Mul,
                TokenKind::Symbol("/") => BinOp::Div,
                TokenKind::Symbol("%") => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_symbol("-") {
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: "-",
                expr: Box::new(inner),
            });
        }
        if self.eat_symbol("+") {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.bump();
                let v = n
                    .parse::<f64>()
                    .map_err(|_| LtError::Parse(format!("invalid number {n}")))?;
                Ok(Expr::Literal(Literal::Number(v)))
            }
            TokenKind::StringLit(s) => {
                self.bump();
                Ok(Expr::Literal(Literal::String(s)))
            }
            TokenKind::Symbol("(") => {
                self.bump();
                if self.peek().is_keyword("select") {
                    let q = self.query()?;
                    self.expect_symbol(")")?;
                    Ok(Expr::Subquery(Box::new(q)))
                } else {
                    let e = self.expr()?;
                    self.expect_symbol(")")?;
                    Ok(e)
                }
            }
            TokenKind::Ident(id) => self.ident_led_expr(&id),
            other => Err(LtError::Parse(format!(
                "unexpected token {other} in expression"
            ))),
        }
    }

    /// Expressions that start with an identifier: keyword-led constructs
    /// (`case`, `extract`, `exists`, `date`, `interval`, `null`), function
    /// calls, and column references.
    fn ident_led_expr(&mut self, id: &str) -> Result<Expr> {
        let lower = id.to_ascii_lowercase();
        match lower.as_str() {
            "null" => {
                self.bump();
                Ok(Expr::Literal(Literal::Null))
            }
            "date" if matches!(self.peek2(), TokenKind::StringLit(_)) => {
                self.bump();
                if let TokenKind::StringLit(d) = self.bump() {
                    Ok(Expr::Literal(Literal::Date(d)))
                } else {
                    unreachable!("peeked string literal")
                }
            }
            "interval" if matches!(self.peek2(), TokenKind::StringLit(_)) => {
                self.bump();
                let value = match self.bump() {
                    TokenKind::StringLit(v) => v,
                    _ => unreachable!("peeked string literal"),
                };
                let unit = self.ident()?.to_ascii_lowercase();
                Ok(Expr::Literal(Literal::Interval(value, unit)))
            }
            "case" => {
                self.bump();
                self.case_expr()
            }
            "extract" if self.peek2().is_symbol("(") => {
                self.bump();
                self.expect_symbol("(")?;
                let field = self.ident()?.to_ascii_lowercase();
                self.expect_keyword("from")?;
                let from = self.expr()?;
                self.expect_symbol(")")?;
                Ok(Expr::Extract {
                    field,
                    from: Box::new(from),
                })
            }
            "exists" => {
                self.bump();
                self.expect_symbol("(")?;
                let q = self.query()?;
                self.expect_symbol(")")?;
                Ok(Expr::Exists {
                    query: Box::new(q),
                    negated: false,
                })
            }
            "not" if self.peek2().is_keyword("exists") => {
                self.bump();
                self.bump();
                self.expect_symbol("(")?;
                let q = self.query()?;
                self.expect_symbol(")")?;
                Ok(Expr::Exists {
                    query: Box::new(q),
                    negated: true,
                })
            }
            _ => {
                self.bump();
                // Function call?
                if self.peek().is_symbol("(") {
                    self.bump();
                    let distinct = self.eat_keyword("distinct");
                    let mut args = Vec::new();
                    if self.peek().is_symbol("*") {
                        self.bump();
                        args.push(Expr::Star);
                    } else if !self.peek().is_symbol(")") {
                        args = self.expr_list()?;
                    }
                    self.expect_symbol(")")?;
                    return Ok(Expr::Func {
                        name: lower,
                        args,
                        distinct,
                    });
                }
                // Qualified column `t.c`?
                if self.peek().is_symbol(".") {
                    self.bump();
                    let col = self.ident()?;
                    return Ok(Expr::Column(ColumnRef::qualified(id, col)));
                }
                Ok(Expr::Column(ColumnRef::bare(id)))
            }
        }
    }

    fn case_expr(&mut self) -> Result<Expr> {
        let operand = if self.peek().is_keyword("when") {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_keyword("when") {
            let w = self.expr()?;
            self.expect_keyword("then")?;
            let t = self.expr()?;
            branches.push((w, t));
        }
        if branches.is_empty() {
            return Err(self.err("CASE requires at least one WHEN branch"));
        }
        let else_branch = if self.eat_keyword("else") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_keyword("end")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_branch,
        })
    }
}

fn is_clause_keyword(word: &str) -> bool {
    const CLAUSES: &[&str] = &[
        "where", "group", "having", "order", "limit", "on", "join", "inner", "left", "right",
        "full", "cross", "union", "select", "from", "as",
    ];
    CLAUSES.iter().any(|k| word.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let q = parse_query("select a, b from t where a = 1").unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.from.len(), 1);
        assert!(q.filter.is_some());
    }

    #[test]
    fn aliases_and_joins() {
        let q = parse_query(
            "select l.l_orderkey from lineitem l, orders o where l.l_orderkey = o.o_orderkey",
        )
        .unwrap();
        assert_eq!(q.from[0].binding(), "l");
        assert_eq!(q.from[1].binding(), "o");
    }

    #[test]
    fn explicit_join_folds_on_condition() {
        let q = parse_query("select * from a join b on a.x = b.y where a.z > 5").unwrap();
        assert_eq!(q.from.len(), 2);
        // Filter is (a.z > 5) AND (a.x = b.y).
        let f = q.filter.unwrap();
        let s = f.to_string();
        assert!(s.contains("a.x = b.y"), "{s}");
        assert!(s.contains("a.z > 5"), "{s}");
    }

    #[test]
    fn aggregates_group_by_having_order_limit() {
        let q = parse_query(
            "select o_custkey, count(*) as cnt, sum(o_totalprice * 0.5) \
             from orders group by o_custkey having count(*) > 3 \
             order by cnt desc limit 10",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        assert!(q.order_by[0].desc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn date_interval_between() {
        let q = parse_query(
            "select * from lineitem where l_shipdate between date '1994-01-01' \
             and date '1994-01-01' + interval '1' year",
        )
        .unwrap();
        let s = q.filter.unwrap().to_string();
        assert!(s.contains("date '1994-01-01'"), "{s}");
        assert!(s.contains("interval '1' year"), "{s}");
    }

    #[test]
    fn in_list_and_in_subquery() {
        let q = parse_query(
            "select * from part where p_size in (1, 2, 3) and p_partkey in \
             (select ps_partkey from partsupp)",
        )
        .unwrap();
        let s = q.filter.unwrap().to_string();
        assert!(s.contains("in (1, 2, 3)"), "{s}");
        assert!(s.contains("select ps_partkey from partsupp"), "{s}");
    }

    #[test]
    fn not_in_and_not_exists() {
        let q = parse_query(
            "select * from customer c where c.c_custkey not in (select o_custkey from orders) \
             and not exists (select * from orders o where o.o_custkey = c.c_custkey)",
        )
        .unwrap();
        let s = q.filter.unwrap().to_string();
        assert!(s.contains("not in"), "{s}");
        assert!(s.contains("not exists"), "{s}");
    }

    #[test]
    fn case_and_extract() {
        let q = parse_query(
            "select sum(case when o_orderpriority = '1-URGENT' then 1 else 0 end), \
             extract(year from o_orderdate) from orders group by extract(year from o_orderdate)",
        )
        .unwrap();
        let s = q.select[0].expr.to_string();
        assert!(s.contains("case when"), "{s}");
        assert!(q.select[1].expr.to_string().contains("extract(year from"));
    }

    #[test]
    fn like_and_is_null() {
        let q = parse_query(
            "select * from part where p_type like '%BRASS' and p_comment is not null \
             and p_name not like 'green%'",
        )
        .unwrap();
        let s = q.filter.unwrap().to_string();
        assert!(s.contains("like '%BRASS'"), "{s}");
        assert!(s.contains("is not null"), "{s}");
        assert!(s.contains("not like 'green%'"), "{s}");
    }

    #[test]
    fn derived_table() {
        let q = parse_query(
            "select avg(cnt) from (select count(*) as cnt from orders group by o_custkey) as t",
        )
        .unwrap();
        assert!(matches!(q.from[0], TableRef::Derived { .. }));
        assert_eq!(q.from[0].binding(), "t");
    }

    #[test]
    fn scalar_subquery() {
        let q = parse_query(
            "select * from partsupp where ps_supplycost = \
             (select min(ps_supplycost) from partsupp)",
        )
        .unwrap();
        assert!(q
            .filter
            .unwrap()
            .to_string()
            .contains("select min(ps_supplycost)"));
    }

    #[test]
    fn distinct_and_count_distinct() {
        let q = parse_query("select distinct count(distinct l_suppkey) from lineitem").unwrap();
        assert_eq!(q.quantifier, SetQuantifier::Distinct);
        match &q.select[0].expr {
            Expr::Func { distinct, .. } => assert!(distinct),
            other => panic!("expected function, got {other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let q = parse_query("select * from t where a = 1 or b = 2 and c = 3").unwrap();
        // AND binds tighter than OR; Display emits minimal parentheses and
        // the rendered text reparses to the same structure.
        let f = q.filter.unwrap();
        assert_eq!(f.to_string(), "a = 1 or b = 2 and c = 3");
        match &f {
            Expr::Binary {
                op: BinOp::Or,
                right,
                ..
            } => {
                assert!(matches!(**right, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("expected OR at the top, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse_query("select a + b * c from t").unwrap();
        assert_eq!(q.select[0].expr.to_string(), "a + b * c");
        let q = parse_query("select (a + b) * c from t").unwrap();
        // Parenthesization is not preserved textually but structure is:
        match &q.select[0].expr {
            Expr::Binary {
                op: BinOp::Mul,
                left,
                ..
            } => {
                assert!(matches!(**left, Expr::Binary { op: BinOp::Add, .. }));
            }
            other => panic!("expected Mul at top, got {other:?}"),
        }
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse_query("select 1 from t;").is_ok());
    }

    #[test]
    fn garbage_after_query_is_an_error() {
        assert!(parse_query("select 1 from t garbage garbage").is_err());
    }

    #[test]
    fn roundtrip_display_parses_again() {
        let sql = "select l_returnflag, sum(l_quantity) as s from lineitem \
                   where l_shipdate <= date '1998-09-02' group by l_returnflag \
                   order by l_returnflag limit 5";
        let q1 = parse_query(sql).unwrap();
        let q2 = parse_query(&q1.to_string()).unwrap();
        assert_eq!(q1, q2);
    }
}
