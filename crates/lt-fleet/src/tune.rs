//! The cache-aware tuning entry point; see the crate docs.

use crate::cache::{FleetCache, FleetEntry, FleetKey};
use lambda_tune::{LambdaTune, TuneResult, WarmStart};
use lt_common::{obs, Result};
use lt_dbms::TuningTarget;
use lt_drift::{warm_options, Profile};
use lt_llm::{LanguageModel, LlmClient};
use lt_workloads::Workload;

/// Warm-start transfer parameters.
#[derive(Debug, Clone, Copy)]
pub struct TransferOptions {
    /// Maximum Jensen–Shannon distance to a cached neighbour. Profiles
    /// farther apart than this tune cold: transferring across a genuinely
    /// different workload risks anchoring on a stale winner.
    pub max_distance: f64,
    /// Fraction of the sampling/token budget kept for the transferred
    /// session (`lt-drift`'s re-tune convention: half).
    pub budget_fraction: f64,
}

impl Default for TransferOptions {
    fn default() -> Self {
        TransferOptions {
            max_distance: jsd_threshold(),
            budget_fraction: 0.5,
        }
    }
}

/// Transfer distance threshold: `LT_FLEET_JSD`, default 0.35 — between the
/// intra-benchmark drift distances lt-drift reacts to and the ≈1.0 of
/// cross-benchmark pairs.
pub fn jsd_threshold() -> f64 {
    std::env::var("LT_FLEET_JSD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.35)
}

/// How a [`fleet_tune`] call was served.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Served {
    /// Exact cache hit: the cached cold-run result replayed, no LLM or
    /// evaluation work at all.
    Exact,
    /// Near miss: tuned at reduced budget, warm-started from the cached
    /// neighbour at this Jensen–Shannon distance.
    Transfer(f64),
    /// Full cold run (inserted into the cache on success).
    Cold,
}

/// A [`TuneResult`] plus its provenance.
#[derive(Debug)]
pub struct FleetResult {
    /// The tuning outcome.
    pub result: TuneResult,
    /// How it was produced.
    pub served: Served,
}

/// Tunes through the fleet cache: exact hit → replay; near miss (when
/// `transfer` is given) → warm-started reduced-budget run; otherwise a cold
/// run whose result is published for the next session with this key.
///
/// Exact hits are deterministic regardless of scheduling: the entry was
/// produced by a run with the identical key, so hit and cold run return the
/// same bytes. Transfer results depend on what the cache happens to hold,
/// so they are opt-in and never published.
pub fn fleet_tune<D: TuningTarget + ?Sized, M: LanguageModel>(
    cache: &FleetCache,
    db: &mut D,
    workload: &Workload,
    llm: &LlmClient<M>,
    tuner: LambdaTune,
    initial_config: &str,
    transfer: Option<TransferOptions>,
) -> Result<FleetResult> {
    let profile = Profile::from_workload(db.catalog(), workload);
    let key = FleetKey::for_session(db, &profile, &tuner.options, initial_config);

    if let Some(entry) = cache.lookup(&key) {
        return Ok(FleetResult {
            result: entry.to_result(db),
            served: Served::Exact,
        });
    }

    if let Some(t) = transfer {
        if let Some((distance, neighbour)) = cache.nearest(&key, &profile, t.max_distance) {
            obs::counter("fleet.transfer", 1);
            let options = warm_options(&tuner.options, t.budget_fraction, None);
            let warm = WarmStart {
                prompt: Some(neighbour.prompt.clone()),
                seed_scripts: neighbour
                    .best_script()
                    .map(str::to_string)
                    .into_iter()
                    .collect(),
            };
            let warm_tuner = LambdaTune {
                options,
                warm_start: Some(warm),
                ..tuner
            };
            let result = warm_tuner.tune(db, workload, llm)?;
            return Ok(FleetResult {
                result,
                served: Served::Transfer(distance),
            });
        }
    }

    let dbms = db.dbms();
    let result = tuner.tune(db, workload, llm)?;
    if !result.cancelled {
        cache.insert(
            key,
            FleetEntry::from_result(&result, dbms, db.catalog(), profile, None),
        );
    }
    Ok(FleetResult {
        result,
        served: Served::Cold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_tune::LambdaTuneOptions;
    use lt_dbms::{Dbms, Hardware, SimDb};
    use lt_llm::SimulatedLlm;
    use lt_workloads::Benchmark;

    fn session(seed: u64) -> (SimDb, Workload, LlmClient<SimulatedLlm>) {
        let w = Benchmark::TpchSf1.load();
        let db = SimDb::new(
            Dbms::Postgres,
            w.catalog.clone(),
            Hardware::p3_2xlarge(),
            seed,
        );
        (db, w, LlmClient::new(SimulatedLlm::new()))
    }

    fn opts(seed: u64) -> LambdaTuneOptions {
        LambdaTuneOptions {
            num_configs: 3,
            seed,
            ..Default::default()
        }
    }

    fn scripts(r: &TuneResult, w: &Workload) -> Vec<String> {
        r.configs
            .iter()
            .map(|c| c.to_script(Dbms::Postgres, &w.catalog))
            .collect()
    }

    /// Property (a): the cache-hit result is byte-identical to the cold-run
    /// result for the same key.
    #[test]
    fn exact_hit_replays_the_cold_run_byte_for_byte() {
        let cache = FleetCache::new(16);
        let (mut db, w, llm) = session(7);
        let cold = fleet_tune(
            &cache,
            &mut db,
            &w,
            &llm,
            LambdaTune::new(opts(7)),
            "",
            None,
        )
        .unwrap();
        assert_eq!(cold.served, Served::Cold);
        assert_eq!(cache.len(), 1);

        let (mut db2, _, llm2) = session(7);
        let hit = fleet_tune(
            &cache,
            &mut db2,
            &w,
            &llm2,
            LambdaTune::new(opts(7)),
            "",
            None,
        )
        .unwrap();
        assert_eq!(hit.served, Served::Exact);
        // The replayed result reports the cold run's usage (that is what a
        // cold run would have returned); the *actual* spend on a hit is
        // zero — the session's client was never called.
        assert_eq!(hit.result.llm_usage, cold.result.llm_usage);
        assert_eq!(llm2.usage().calls, 0, "no sampling on a hit");

        assert_eq!(scripts(&cold.result, &w), scripts(&hit.result, &w));
        assert_eq!(cold.result.best_index, hit.result.best_index);
        assert_eq!(cold.result.best_time, hit.result.best_time);
        assert_eq!(cold.result.trajectory, hit.result.trajectory);
        assert_eq!(cold.result.rounds, hit.result.rounds);
        assert_eq!(cold.result.tuning_time, hit.result.tuning_time);
        assert_eq!(cold.result.prompt, hit.result.prompt);
        assert_eq!(cold.result.workload_tokens, hit.result.workload_tokens);
        assert_eq!(
            cold.result
                .best_config
                .as_ref()
                .map(|c| c.to_script(Dbms::Postgres, &w.catalog)),
            hit.result
                .best_config
                .as_ref()
                .map(|c| c.to_script(Dbms::Postgres, &w.catalog)),
        );
    }

    #[test]
    fn different_seed_or_workload_misses() {
        let cache = FleetCache::new(16);
        let (mut db, w, llm) = session(7);
        fleet_tune(
            &cache,
            &mut db,
            &w,
            &llm,
            LambdaTune::new(opts(7)),
            "",
            None,
        )
        .unwrap();

        let (mut db2, _, llm2) = session(8);
        let other_seed = fleet_tune(
            &cache,
            &mut db2,
            &w,
            &llm2,
            LambdaTune::new(opts(8)),
            "",
            None,
        )
        .unwrap();
        assert_eq!(other_seed.served, Served::Cold);

        let w2 = Benchmark::TpcdsSf1.load();
        let mut db3 = SimDb::new(
            Dbms::Postgres,
            w2.catalog.clone(),
            Hardware::p3_2xlarge(),
            7,
        );
        let llm3 = LlmClient::new(SimulatedLlm::new());
        let other_workload = fleet_tune(
            &cache,
            &mut db3,
            &w2,
            &llm3,
            LambdaTune::new(opts(7)),
            "",
            None,
        )
        .unwrap();
        assert_eq!(other_workload.served, Served::Cold);
        assert_eq!(cache.len(), 3);
    }

    /// Property (c): warm-start transfer stays within the ≤1.05 cold-run
    /// quality bound (the PR 5 warm-retune contract), while spending at
    /// most half the tokens.
    #[test]
    fn transfer_meets_quality_bound_at_reduced_cost() {
        let cache = FleetCache::new(16);
        let base = Benchmark::TpchSf1.load();
        let (mut db, _, llm) = session(7);
        let seeded = fleet_tune(
            &cache,
            &mut db,
            &base,
            &llm,
            LambdaTune::new(LambdaTuneOptions {
                seed: 7,
                ..Default::default()
            }),
            "",
            None,
        )
        .unwrap();
        assert_eq!(seeded.served, Served::Cold);

        // A drifted workload on the same catalog: near-miss territory.
        let drifted = lt_drift::drifted_workload().unwrap();
        let run_opts = LambdaTuneOptions {
            seed: 11,
            ..Default::default()
        };

        let (mut db_cold, _, llm_cold) = session(11);
        let cold = LambdaTune::new(run_opts)
            .tune(&mut db_cold, &drifted, &llm_cold)
            .unwrap();

        let (mut db_warm, _, llm_warm) = session(11);
        let warm = fleet_tune(
            &cache,
            &mut db_warm,
            &drifted,
            &llm_warm,
            LambdaTune::new(run_opts),
            "",
            Some(TransferOptions {
                max_distance: 1.0,
                budget_fraction: 0.5,
            }),
        )
        .unwrap();
        let Served::Transfer(d) = warm.served else {
            panic!("expected a transfer, got {:?}", warm.served);
        };
        assert!(d > 0.0 && d <= 1.0);

        let ratio = warm.result.best_time.as_f64() / cold.best_time.as_f64();
        assert!(
            ratio <= 1.05,
            "transfer quality ratio {ratio} exceeds the 1.05 bound"
        );
        assert!(
            warm.result.llm_usage.prompt_tokens <= cold.llm_usage.prompt_tokens / 2,
            "transfer must spend at most half the prompt tokens ({} vs {})",
            warm.result.llm_usage.prompt_tokens,
            cold.llm_usage.prompt_tokens
        );
        // Transfer results are never published as canonical entries.
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn transfer_is_skipped_beyond_the_distance_threshold() {
        let cache = FleetCache::new(16);
        let (mut db, w, llm) = session(7);
        fleet_tune(&cache, &mut db, &w, &llm, LambdaTune::default(), "", None).unwrap();

        let drifted = lt_drift::drifted_workload().unwrap();
        let (mut db2, _, llm2) = session(11);
        let tuner = LambdaTune::new(LambdaTuneOptions {
            seed: 11,
            ..Default::default()
        });
        let out = fleet_tune(
            &cache,
            &mut db2,
            &drifted,
            &llm2,
            tuner,
            "",
            Some(TransferOptions {
                max_distance: 1e-9,
                budget_fraction: 0.5,
            }),
        )
        .unwrap();
        assert_eq!(out.served, Served::Cold, "distance gate must hold");
    }
}
