//! Fleet-scale amortization for λ-Tune (ROADMAP "Fleet-scale
//! amortization").
//!
//! At fleet scale most tuning sessions are redundant: millions of tenants
//! present near-identical (schema, workload profile, hardware, budget)
//! tuples, yet a naive service pays the full prompt-build → LLM-sample →
//! compress → evaluate pipeline for each. This crate amortizes that cost
//! across sessions:
//!
//! * [`FleetCache`] — a content-addressed **tuning cache**. The key
//!   ([`FleetKey`]) fingerprints everything the pipeline's output depends
//!   on: catalog, workload [`Profile`] digest, hardware, DBMS flavour, the
//!   complete option set (including the sampling seed) and the initial
//!   configuration. An exact hit replays the cached winner — byte-identical
//!   to a cold run *by construction*, because the pipeline itself is a pure
//!   function of exactly those inputs.
//! * **Warm-start transfer** — on a near miss (same everything except the
//!   workload profile), the nearest cached neighbour under
//!   [`Profile::jensen_shannon`] distance seeds the new session through the
//!   existing [`WarmStart`](lambda_tune::WarmStart) path: the neighbour's
//!   prompt is reused verbatim and its winner competes as candidate 0 at a
//!   fraction of the sampling budget. Transfer results are *never* inserted
//!   back into the exact cache (they are schedule-dependent bargains, not
//!   canonical cold-run results).
//!
//! Knobs: `LT_FLEET=0` disables the global cache, `LT_FLEET_CAP` bounds it,
//! `LT_FLEET_JSD` sets the transfer distance threshold, and
//! `LT_FLEET_TRANSFER=0` disables transfer in the serving layer. Everything
//! is observable through `fleet.*` counters.

pub mod cache;
pub mod tune;

pub use cache::{
    fleet_entry_from_json, fleet_entry_to_json, fleet_key_from_json, fleet_key_to_json,
    options_digest, FleetCache, FleetEntry, FleetKey,
};
pub use tune::{fleet_tune, FleetResult, Served, TransferOptions};
