//! The content-addressed tuning cache; see the crate docs.

use lambda_tune::selector::TrajectoryPoint;
use lambda_tune::{LambdaTuneOptions, TuneResult};
use lt_common::lru::{cap_from_env, LruMap};
use lt_common::{hash_one, obs, Fingerprint, FxHasher, Secs};
use lt_dbms::{Catalog, Configuration, Dbms, TuningTarget};
use lt_drift::Profile;
use lt_llm::LlmUsage;
use std::hash::Hasher;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default bound on cached tuning sessions; override with `LT_FLEET_CAP`.
const DEFAULT_FLEET_CAP: usize = 1024;

/// Digest of every [`LambdaTuneOptions`] field. With `include_seed` the
/// digest addresses one exact sampling run; without it, it identifies the
/// *option group* — sessions differing only by seed share it, which is what
/// both the warm-transfer neighbour filter and the serving layer's batch
/// coalescing key on.
pub fn options_digest(opts: &LambdaTuneOptions, include_seed: bool) -> u64 {
    let mut h = FxHasher::new();
    h.write_u64(opts.num_configs as u64);
    h.write_u64(opts.temperature.to_bits());
    match opts.token_budget {
        Some(b) => {
            h.write_u8(1);
            h.write_u64(b as u64);
        }
        None => h.write_u8(0),
    }
    h.write_u8(opts.params_only as u8);
    h.write_u8(opts.indexes_only as u8);
    h.write_u8(opts.use_compressor as u8);
    h.write_u8(opts.obfuscate as u8);
    h.write_u8(opts.use_scheduler as u8);
    h.write_u64(opts.selector.initial_timeout.as_f64().to_bits());
    h.write_u64(opts.selector.alpha.to_bits());
    h.write_u8(opts.selector.adaptive_timeout as u8);
    h.write_u64(opts.selector.max_rounds as u64);
    h.write_u64(opts.llm_latency.as_f64().to_bits());
    if include_seed {
        h.write_u64(opts.seed);
    }
    h.finish()
}

/// Cache key: a fingerprint of every input the tuning pipeline's output
/// depends on. Two sessions with equal keys produce byte-identical
/// [`TuneResult`]s, so the cached entry can stand in for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FleetKey {
    /// `Catalog::fingerprint()` — schema and statistics.
    pub catalog: Fingerprint,
    /// Target system flavour.
    pub dbms: Dbms,
    /// Hardware main memory in bytes.
    pub memory_bytes: u64,
    /// Hardware core count.
    pub cores: u32,
    /// `Profile::digest()` of the workload (its shape, not its SQL text).
    pub profile: u64,
    /// [`options_digest`] *with* the seed — the exact sampling run.
    pub options: u64,
    /// [`options_digest`] *without* the seed — the option group shared by
    /// sibling tenants; keys near-miss transfer and batch coalescing.
    pub group: u64,
    /// Hash of the initial configuration script applied before tuning
    /// (`hash_one("")` when none).
    pub initial_config: u64,
}

impl FleetKey {
    /// Key for tuning `profile`'s workload on `db` under `options`, with
    /// `initial_config` being the pre-applied configuration script (empty
    /// string for none).
    pub fn for_session<D: TuningTarget + ?Sized>(
        db: &D,
        profile: &Profile,
        options: &LambdaTuneOptions,
        initial_config: &str,
    ) -> FleetKey {
        let hw = db.hardware();
        FleetKey {
            catalog: db.catalog_fingerprint(),
            dbms: db.dbms(),
            memory_bytes: hw.memory_bytes,
            cores: hw.cores,
            profile: profile.digest(),
            options: options_digest(options, true),
            group: options_digest(options, false),
            initial_config: hash_one(initial_config),
        }
    }

    /// True when `other` differs from `self` at most in the workload
    /// profile and sampling seed — the eligibility filter for warm-start
    /// transfer (the neighbour's prompt and winner only make sense on the
    /// same catalog, hardware, system, option group, and starting config).
    pub fn transferable_from(&self, other: &FleetKey) -> bool {
        self.catalog == other.catalog
            && self.dbms == other.dbms
            && self.memory_bytes == other.memory_bytes
            && self.cores == other.cores
            && self.group == other.group
            && self.initial_config == other.initial_config
    }
}

/// Cached outcome of one cold tuning run: the full [`TuneResult`] in
/// catalog-independent script form, plus the material transfer needs.
#[derive(Debug, Clone)]
pub struct FleetEntry {
    /// Every candidate configuration, rendered to its canonical script.
    pub config_scripts: Vec<String>,
    /// Index of the winner among `config_scripts`.
    pub best_index: Option<usize>,
    /// Workload time under the winner.
    pub best_time: Secs,
    /// Improvement trajectory of the cold run.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Token usage of the cold run (what the hit *avoided* spending).
    pub llm_usage: LlmUsage,
    /// Workload-description tokens inside the prompt.
    pub workload_tokens: usize,
    /// Selector rounds of the cold run.
    pub rounds: usize,
    /// Virtual tuning time of the cold run.
    pub tuning_time: Secs,
    /// The exact prompt — reused verbatim by warm-start transfer.
    pub prompt: String,
    /// Workload time under the *default* configuration, when the caller
    /// measured one (the serving layer does); a hit skips that measurement
    /// too.
    pub default_time: Option<Secs>,
    /// The workload profile this entry was tuned for; nearest-neighbour
    /// transfer measures Jensen–Shannon distance against it.
    pub profile: Profile,
}

impl FleetEntry {
    /// Captures a finished cold run. `default_time` is the caller's
    /// default-configuration measurement, if it made one.
    pub fn from_result(
        result: &TuneResult,
        dbms: Dbms,
        catalog: &Catalog,
        profile: Profile,
        default_time: Option<Secs>,
    ) -> FleetEntry {
        FleetEntry {
            config_scripts: result
                .configs
                .iter()
                .map(|c| c.to_script(dbms, catalog))
                .collect(),
            best_index: result.best_index,
            best_time: result.best_time,
            trajectory: result.trajectory.clone(),
            llm_usage: result.llm_usage,
            workload_tokens: result.workload_tokens,
            rounds: result.rounds,
            tuning_time: result.tuning_time,
            prompt: result.prompt.clone(),
            default_time,
            profile,
        }
    }

    /// The winning configuration script, if the cold run had a winner.
    pub fn best_script(&self) -> Option<&str> {
        self.best_index.map(|i| self.config_scripts[i].as_str())
    }

    /// Reconstructs the cold run's [`TuneResult`] against `db`'s catalog.
    /// Scripts round-trip through `Configuration::parse`, so the replayed
    /// result carries the same configurations, stats, and trajectory the
    /// cold run produced — without any LLM or evaluation work.
    pub fn to_result<D: TuningTarget + ?Sized>(&self, db: &D) -> TuneResult {
        let configs: Vec<Configuration> = self
            .config_scripts
            .iter()
            .map(|s| Configuration::parse(s, db.dbms(), db.catalog()))
            .collect();
        TuneResult {
            best_config: self.best_index.map(|i| configs[i].clone()),
            best_index: self.best_index,
            best_time: self.best_time,
            configs,
            trajectory: self.trajectory.clone(),
            llm_usage: self.llm_usage,
            workload_tokens: self.workload_tokens,
            rounds: self.rounds,
            tuning_time: self.tuning_time,
            prompt: self.prompt.clone(),
            cancelled: false,
        }
    }
}

/// [`FleetKey`] as JSON for the write-ahead session log. Digests are
/// full-range `u64`s, so they serialize as 16-hex-digit strings (the JSON
/// layer stores integers as `i64`).
pub fn fleet_key_to_json(key: &FleetKey) -> lt_common::json::Value {
    lt_common::json!({
        "catalog": format!("{}", key.catalog),
        "dbms": match key.dbms {
            Dbms::Postgres => "postgres",
            Dbms::Mysql => "mysql",
        },
        "memory_bytes": format!("{:016x}", key.memory_bytes),
        "cores": key.cores as i64,
        "profile": format!("{:016x}", key.profile),
        "options": format!("{:016x}", key.options),
        "group": format!("{:016x}", key.group),
        "initial_config": format!("{:016x}", key.initial_config),
    })
}

fn hex_u64(doc: &lt_common::json::Value, field: &str) -> Option<u64> {
    u64::from_str_radix(doc.get(field)?.as_str()?, 16).ok()
}

/// Rebuilds a [`FleetKey`] written by [`fleet_key_to_json`].
pub fn fleet_key_from_json(doc: &lt_common::json::Value) -> Option<FleetKey> {
    Some(FleetKey {
        catalog: Fingerprint(hex_u64(doc, "catalog")?),
        dbms: match doc.get("dbms")?.as_str()? {
            "postgres" => Dbms::Postgres,
            "mysql" => Dbms::Mysql,
            _ => return None,
        },
        memory_bytes: hex_u64(doc, "memory_bytes")?,
        cores: u32::try_from(doc.get("cores")?.as_i64()?).ok()?,
        profile: hex_u64(doc, "profile")?,
        options: hex_u64(doc, "options")?,
        group: hex_u64(doc, "group")?,
        initial_config: hex_u64(doc, "initial_config")?,
    })
}

/// [`FleetEntry`] as JSON for the write-ahead session log. Times serialize
/// as plain floats: the JSON writer uses shortest-round-trip formatting, so
/// re-parsing recovers the exact bits and replayed entries stay
/// byte-identical.
pub fn fleet_entry_to_json(entry: &FleetEntry) -> lt_common::json::Value {
    use lt_common::json::Value;
    let trajectory: Vec<Value> = entry
        .trajectory
        .iter()
        .map(|p| {
            lt_common::json!({
                "opt_time_s": p.opt_time.as_f64(),
                "best_workload_time_s": p.best_workload_time.as_f64(),
            })
        })
        .collect();
    lt_common::json!({
        "config_scripts": entry.config_scripts.clone(),
        "best_index": entry.best_index.map(|i| i as i64),
        "best_time_s": entry.best_time.as_f64(),
        "trajectory": Value::Array(trajectory),
        "llm_calls": entry.llm_usage.calls as i64,
        "llm_prompt_tokens": entry.llm_usage.prompt_tokens as i64,
        "llm_completion_tokens": entry.llm_usage.completion_tokens as i64,
        "workload_tokens": entry.workload_tokens as i64,
        "rounds": entry.rounds as i64,
        "tuning_time_s": entry.tuning_time.as_f64(),
        "prompt": entry.prompt.clone(),
        "default_time_s": entry.default_time.map(Secs::as_f64),
        "profile": entry.profile.to_json(),
    })
}

/// Rebuilds a [`FleetEntry`] written by [`fleet_entry_to_json`].
pub fn fleet_entry_from_json(doc: &lt_common::json::Value) -> Option<FleetEntry> {
    use lt_common::json::Value;
    let config_scripts: Vec<String> = doc
        .get("config_scripts")?
        .as_array()?
        .iter()
        .map(|v| v.as_str().map(str::to_string))
        .collect::<Option<_>>()?;
    let best_index = match doc.get("best_index")? {
        Value::Null => None,
        v => {
            let i = usize::try_from(v.as_i64()?).ok()?;
            if i >= config_scripts.len() {
                return None;
            }
            Some(i)
        }
    };
    let mut trajectory = Vec::new();
    for p in doc.get("trajectory")?.as_array()? {
        trajectory.push(TrajectoryPoint {
            opt_time: lt_common::secs(p.get("opt_time_s")?.as_f64()?),
            best_workload_time: lt_common::secs(p.get("best_workload_time_s")?.as_f64()?),
        });
    }
    Some(FleetEntry {
        config_scripts,
        best_index,
        best_time: lt_common::secs(doc.get("best_time_s")?.as_f64()?),
        trajectory,
        llm_usage: LlmUsage {
            calls: doc.get("llm_calls")?.as_i64()? as u64,
            prompt_tokens: doc.get("llm_prompt_tokens")?.as_i64()? as u64,
            completion_tokens: doc.get("llm_completion_tokens")?.as_i64()? as u64,
        },
        workload_tokens: usize::try_from(doc.get("workload_tokens")?.as_i64()?).ok()?,
        rounds: usize::try_from(doc.get("rounds")?.as_i64()?).ok()?,
        tuning_time: lt_common::secs(doc.get("tuning_time_s")?.as_f64()?),
        prompt: doc.get("prompt")?.as_str()?.to_string(),
        default_time: match doc.get("default_time_s")? {
            Value::Null => None,
            v => Some(lt_common::secs(v.as_f64()?)),
        },
        profile: Profile::from_json(doc.get("profile")?)?,
    })
}

/// The cross-session tuning cache (bounded LRU; see the crate docs).
#[derive(Debug)]
pub struct FleetCache {
    entries: Mutex<LruMap<FleetKey, Arc<FleetEntry>>>,
    enabled: AtomicBool,
}

impl FleetCache {
    /// Cache bounded to `cap` sessions, enabled.
    pub fn new(cap: usize) -> FleetCache {
        FleetCache {
            entries: Mutex::new(LruMap::new(cap)),
            enabled: AtomicBool::new(true),
        }
    }

    /// The process-wide cache: bounded by `LT_FLEET_CAP`, enabled unless
    /// `LT_FLEET=0` (or `off`/`false`) at first use.
    pub fn global() -> &'static FleetCache {
        static GLOBAL: OnceLock<FleetCache> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cache = FleetCache::new(cap_from_env("LT_FLEET_CAP", DEFAULT_FLEET_CAP));
            if matches!(
                std::env::var("LT_FLEET").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            ) {
                cache.set_enabled(false);
            }
            cache
        })
    }

    /// Turns the cache on or off at runtime (benchmarks measure cold vs
    /// warm phases on the same process this way). Disabled means every
    /// lookup misses silently and inserts are dropped.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// True when lookups and inserts are live.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Drops every entry (benchmark phase boundaries).
    pub fn clear(&self) {
        self.entries.lock().unwrap().clear();
    }

    /// Cached session count.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when `key` is cached — without counting hit/miss or touching
    /// recency. The serving layer's prefetch planner peeks this way to
    /// decide which coalesced sessions still need samples.
    pub fn contains(&self, key: &FleetKey) -> bool {
        self.is_enabled() && self.entries.lock().unwrap().contains(key)
    }

    /// Exact lookup. Counts `fleet.tune_hit` / `fleet.tune_miss` (nothing
    /// when disabled — a disabled cache is absent, not missing).
    pub fn lookup(&self, key: &FleetKey) -> Option<Arc<FleetEntry>> {
        if !self.is_enabled() {
            return None;
        }
        match self.entries.lock().unwrap().get(key) {
            Some(entry) => {
                obs::counter("fleet.tune_hit", 1);
                Some(Arc::clone(entry))
            }
            None => {
                obs::counter("fleet.tune_miss", 1);
                None
            }
        }
    }

    /// Publishes a finished cold run. Counts `fleet.tune_insert`, and
    /// `fleet.tune_evict` when it displaced the coldest entry.
    pub fn insert(&self, key: FleetKey, entry: FleetEntry) {
        if !self.is_enabled() {
            return;
        }
        let mut entries = self.entries.lock().unwrap();
        if !entries.contains(&key) {
            obs::counter("fleet.tune_insert", 1);
            if entries.insert(key, Arc::new(entry)).is_some() {
                obs::counter("fleet.tune_evict", 1);
            }
        }
    }

    /// Nearest cached neighbour of `profile` among entries that are
    /// [`FleetKey::transferable_from`] `key`, within `max_distance` of
    /// Jensen–Shannon divergence. Exact-profile entries are excluded (those
    /// are `lookup`'s business — and under a different seed an equal
    /// profile would shortcut sampling the session was asked to do).
    /// Deterministic under hash-map iteration order: ties break on the
    /// (profile digest, options digest) of the candidate key.
    pub fn nearest(
        &self,
        key: &FleetKey,
        profile: &Profile,
        max_distance: f64,
    ) -> Option<(f64, Arc<FleetEntry>)> {
        if !self.is_enabled() {
            return None;
        }
        let entries = self.entries.lock().unwrap();
        let mut best: Option<(f64, (u64, u64), Arc<FleetEntry>)> = None;
        for (k, entry) in entries.iter() {
            if !key.transferable_from(k) || k.profile == key.profile {
                continue;
            }
            let d = profile.jensen_shannon(&entry.profile);
            if d > max_distance {
                continue;
            }
            let order = (k.profile, k.options);
            let closer = match &best {
                None => true,
                Some((bd, border, _)) => d < *bd || (d == *bd && order < *border),
            };
            if closer {
                best = Some((d, order, Arc::clone(entry)));
            }
        }
        best.map(|(d, _, e)| (d, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambda_tune::LambdaTuneOptions;

    fn key(profile: u64, seed: u64) -> FleetKey {
        let opts = LambdaTuneOptions {
            seed,
            ..Default::default()
        };
        FleetKey {
            catalog: Fingerprint(7),
            dbms: Dbms::Postgres,
            memory_bytes: 1 << 30,
            cores: 8,
            profile,
            options: options_digest(&opts, true),
            group: options_digest(&opts, false),
            initial_config: hash_one(""),
        }
    }

    fn entry(profile: Profile) -> FleetEntry {
        FleetEntry {
            config_scripts: vec!["SET work_mem = '64MB';".into()],
            best_index: Some(0),
            best_time: Secs::ZERO,
            trajectory: Vec::new(),
            llm_usage: LlmUsage::default(),
            workload_tokens: 0,
            rounds: 1,
            tuning_time: Secs::ZERO,
            prompt: "p".into(),
            default_time: None,
            profile,
        }
    }

    fn profile_of(features: &[u64]) -> Profile {
        let mut p = Profile::new();
        p.add(features);
        p
    }

    #[test]
    fn options_digest_separates_seed_from_group() {
        let a = LambdaTuneOptions {
            seed: 1,
            ..Default::default()
        };
        let b = LambdaTuneOptions {
            seed: 2,
            ..Default::default()
        };
        assert_ne!(options_digest(&a, true), options_digest(&b, true));
        assert_eq!(options_digest(&a, false), options_digest(&b, false));
        let c = LambdaTuneOptions {
            num_configs: 3,
            seed: 1,
            ..Default::default()
        };
        assert_ne!(options_digest(&a, false), options_digest(&c, false));
    }

    #[test]
    fn lookup_hits_only_exact_keys() {
        let cache = FleetCache::new(8);
        cache.insert(key(10, 1), entry(profile_of(&[1])));
        assert!(cache.lookup(&key(10, 1)).is_some());
        assert!(cache.lookup(&key(10, 2)).is_none(), "seed differs");
        assert!(cache.lookup(&key(11, 1)).is_none(), "profile differs");
    }

    #[test]
    fn disabled_cache_is_inert() {
        let cache = FleetCache::new(8);
        cache.set_enabled(false);
        cache.insert(key(10, 1), entry(profile_of(&[1])));
        assert!(cache.is_empty());
        assert!(cache.lookup(&key(10, 1)).is_none());
        cache.set_enabled(true);
        cache.insert(key(10, 1), entry(profile_of(&[1])));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn nearest_picks_closest_transferable_profile() {
        let cache = FleetCache::new(8);
        // Target profile: {1, 2, 3}. Neighbour A shares 2 of 3 features;
        // neighbour B is disjoint.
        cache.insert(key(100, 1), entry(profile_of(&[1, 2, 9])));
        cache.insert(key(200, 1), entry(profile_of(&[7, 8, 9])));
        let target = profile_of(&[1, 2, 3]);
        let probe = key(target.digest(), 5);
        let (d, hit) = cache.nearest(&probe, &target, 1.0).expect("a neighbour");
        assert!(d < target.jensen_shannon(&profile_of(&[7, 8, 9])));
        assert_eq!(hit.profile, profile_of(&[1, 2, 9]));
        // A tight threshold excludes everything.
        assert!(cache.nearest(&probe, &target, 1e-6).is_none());
    }

    #[test]
    fn nearest_skips_exact_profiles_and_foreign_groups() {
        let cache = FleetCache::new(8);
        let target = profile_of(&[1, 2, 3]);
        // Same profile digest (different seed): excluded.
        cache.insert(key(target.digest(), 1), entry(target.clone()));
        // Different option group: excluded.
        let foreign_opts = LambdaTuneOptions {
            num_configs: 2,
            ..Default::default()
        };
        let mut foreign = key(50, 1);
        foreign.group = options_digest(&foreign_opts, false);
        cache.insert(foreign, entry(profile_of(&[1, 2])));
        let probe = key(target.digest(), 5);
        assert!(cache.nearest(&probe, &target, 1.0).is_none());
    }

    #[test]
    fn key_and_entry_round_trip_through_json() {
        let k = key(0xdead_beef_dead_beef, 42);
        assert_eq!(fleet_key_from_json(&fleet_key_to_json(&k)), Some(k));

        let mut e = entry(profile_of(&[1, u64::MAX, 7]));
        e.trajectory = vec![TrajectoryPoint {
            opt_time: lt_common::secs(1.5),
            best_workload_time: lt_common::secs(0.1 + 0.2), // non-representable sum
        }];
        e.best_time = lt_common::secs(123.456789);
        e.default_time = Some(lt_common::secs(9.75));
        e.llm_usage = LlmUsage {
            calls: 3,
            prompt_tokens: 1000,
            completion_tokens: 200,
        };
        let back = fleet_entry_from_json(&fleet_entry_to_json(&e)).expect("round trip");
        assert_eq!(back.config_scripts, e.config_scripts);
        assert_eq!(back.best_index, e.best_index);
        assert_eq!(
            back.best_time.as_f64().to_bits(),
            e.best_time.as_f64().to_bits()
        );
        assert_eq!(back.trajectory, e.trajectory);
        assert_eq!(back.llm_usage, e.llm_usage);
        assert_eq!(back.prompt, e.prompt);
        assert_eq!(back.profile, e.profile);
        // Survives an actual serialize-to-text cycle too (the WAL path).
        let text = fleet_entry_to_json(&e).to_string_pretty();
        let reparsed = lt_common::json::parse(&text).unwrap();
        assert_eq!(
            fleet_entry_from_json(&reparsed)
                .unwrap()
                .best_time
                .as_f64()
                .to_bits(),
            e.best_time.as_f64().to_bits()
        );
    }

    #[test]
    fn lru_bound_evicts_cold_sessions() {
        let cache = FleetCache::new(2);
        cache.insert(key(1, 1), entry(profile_of(&[1])));
        cache.insert(key(2, 1), entry(profile_of(&[2])));
        cache.lookup(&key(1, 1)); // refresh
        cache.insert(key(3, 1), entry(profile_of(&[3])));
        assert!(cache.lookup(&key(2, 1)).is_none(), "coldest evicted");
        assert!(cache.lookup(&key(1, 1)).is_some());
        assert_eq!(cache.len(), 2);
    }
}
