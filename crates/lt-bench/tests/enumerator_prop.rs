//! Property suite for the DPccp join enumerator.
//!
//! Three guarantees, per the optimizer rewrite:
//! (a) DPccp produces exactly the plan naive all-subsets DP produces, on
//!     random connected *and* disconnected join graphs,
//! (b) beyond the legacy relation limit the default enumerator never
//!     returns a plan costlier than greedy's,
//! (c) with the relation limit pinned to the legacy 13, every benchmark
//!     query plans identically to the legacy enumerator — the
//!     byte-identity contract the re-baselined results rely on.

use lt_common::rng::{seeded_rng, Rng};
use lt_dbms::{
    stats::{extract, FilterKind, FilterTerm, JoinEdge, QueryPredicates},
    Catalog, Dbms, IndexCatalog, JoinEnumerator, KnobSet, Optimizer, LEGACY_DP_RELATION_LIMIT,
};
use lt_workloads::Benchmark;

/// n-table catalog where every table has a primary key and a foreign key
/// toward every other table, so arbitrary join graphs resolve.
fn test_catalog(n: usize) -> Catalog {
    let mut c = Catalog::new();
    for i in 0..n {
        let rows = 1_000 + 37_000 * ((i * 7 + 3) % n) as u64;
        let name = format!("t{i}");
        let mut b = c.add_table(&name, rows).primary_key("id", 8);
        for j in 0..n {
            if j != i {
                let fk_name = format!("fk{j}");
                b = b.foreign_key(&fk_name, 8, (rows as f64 / 8.0).max(1.0));
            }
        }
        b.finish();
    }
    c
}

fn pk(c: &Catalog, i: usize) -> lt_common::ColumnId {
    c.resolve_column(Some(&format!("t{i}")), "id").unwrap()
}

fn fk(c: &Catalog, i: usize, j: usize) -> lt_common::ColumnId {
    c.resolve_column(Some(&format!("t{i}")), &format!("fk{j}"))
        .unwrap()
}

/// Random join graph over tables `lo..hi`: a random spanning tree plus
/// random extra edges, guaranteeing connectivity within the slice.
fn random_component(c: &Catalog, rng: &mut Rng, lo: usize, hi: usize, joins: &mut Vec<JoinEdge>) {
    for i in lo + 1..hi {
        let j = rng.gen_range(lo..i);
        joins.push(JoinEdge {
            left: fk(c, i, j),
            right: pk(c, j),
        });
    }
    for i in lo..hi {
        for j in lo..i {
            if rng.gen_bool(0.15) {
                joins.push(JoinEdge {
                    left: fk(c, j, i),
                    right: pk(c, i),
                });
            }
        }
    }
}

/// Random predicates: the join graph plus a sprinkle of filters so the
/// memoized selectivity paths get exercised with varied inputs.
fn random_preds(c: &Catalog, rng: &mut Rng, n: usize, components: usize) -> QueryPredicates {
    let mut joins = Vec::new();
    if components <= 1 || n < 2 {
        random_component(c, rng, 0, n, &mut joins);
    } else {
        let cut = rng.gen_range(1..n);
        random_component(c, rng, 0, cut, &mut joins);
        random_component(c, rng, cut, n, &mut joins);
    }
    let mut preds = QueryPredicates {
        tables: (0..n)
            .map(|i| c.table_by_name(&format!("t{i}")).unwrap())
            .collect(),
        joins,
        ..Default::default()
    };
    for i in 0..n {
        if rng.gen_bool(0.4) {
            let kind = *rng
                .choose(&[
                    FilterKind::Equality,
                    FilterKind::Range,
                    FilterKind::InList(4),
                ])
                .unwrap();
            let table = preds.tables[i];
            preds.filters.entry(table).or_default().push(FilterTerm {
                column: pk(c, i),
                kind,
            });
        }
    }
    preds
}

fn optimizer<'a>(c: &'a Catalog, knobs: &'a KnobSet, idx: &'a IndexCatalog) -> Optimizer<'a> {
    Optimizer::new(c, knobs, idx, 42)
}

#[test]
fn dpccp_equals_naive_dp_on_random_graphs() {
    let knobs = KnobSet::defaults(Dbms::Postgres);
    for n in 2..=10usize {
        let c = test_catalog(n);
        let mut idx = IndexCatalog::new();
        for i in 0..n {
            idx.add(
                c.table_by_name(&format!("t{i}")).unwrap(),
                vec![pk(&c, i)],
                None,
            );
        }
        for seed in 0..10u64 {
            for components in [1usize, 2] {
                if components == 2 && n < 2 {
                    continue;
                }
                let mut rng = seeded_rng(seed * 1000 + n as u64);
                let preds = random_preds(&c, &mut rng, n, components);
                let opt = optimizer(&c, &knobs, &idx);
                let a = opt.plan_extracted_with(&preds, JoinEnumerator::Dpccp);
                let b = opt.plan_extracted_with(&preds, JoinEnumerator::NaiveDp);
                assert_eq!(
                    a, b,
                    "DPccp diverged from naive DP (n={n} seed={seed} components={components})"
                );
            }
        }
    }
}

#[test]
fn dp_beyond_legacy_limit_never_beats_greedy_on_cost() {
    let knobs = KnobSet::defaults(Dbms::Postgres);
    for n in (LEGACY_DP_RELATION_LIMIT + 1)..=17usize {
        let c = test_catalog(n);
        let idx = IndexCatalog::new();
        for seed in 0..3u64 {
            let mut rng = seeded_rng(seed * 77 + n as u64);
            let preds = random_preds(&c, &mut rng, n, 1);
            let opt = optimizer(&c, &knobs, &idx);
            let dp = opt.plan_extracted_with(&preds, JoinEnumerator::Auto);
            let greedy = opt.plan_extracted_with(&preds, JoinEnumerator::Greedy);
            assert!(
                dp.root.est_cost <= greedy.root.est_cost,
                "DP plan costlier than greedy (n={n} seed={seed}): {} > {}",
                dp.root.est_cost,
                greedy.root.est_cost
            );
        }
    }
}

#[test]
fn legacy_limit_plans_match_legacy_enumerator_on_every_bench_query() {
    for bench in Benchmark::all() {
        let w = bench.load();
        let knob_sets = {
            let mut v = vec![KnobSet::defaults(Dbms::Postgres)];
            let mut k = KnobSet::defaults(Dbms::Postgres);
            k.set_text("random_page_cost", "1.1").unwrap();
            k.set_text("effective_cache_size", "45GB").unwrap();
            v.push(k);
            let mut k = KnobSet::defaults(Dbms::Postgres);
            k.set_text("work_mem", "64kB").unwrap();
            v.push(k);
            v
        };
        let mut idx_keys = IndexCatalog::new();
        for col in w.catalog.columns() {
            if col.primary_key || col.foreign_key {
                idx_keys.add(col.table, vec![col.id], None);
            }
        }
        let idx_sets = [IndexCatalog::new(), idx_keys];
        for knobs in &knob_sets {
            for idx in &idx_sets {
                for q in &w.queries {
                    let preds = extract(&q.parsed, &w.catalog);
                    if preds.tables.is_empty() {
                        continue;
                    }
                    let opt = Optimizer::new(&w.catalog, knobs, idx, 42)
                        .with_dp_limit(LEGACY_DP_RELATION_LIMIT);
                    let new = opt.plan_extracted_with(&preds, JoinEnumerator::Auto);
                    let old = opt.plan_extracted_with(&preds, JoinEnumerator::Legacy);
                    assert_eq!(
                        new,
                        old,
                        "{} {}: limit-13 plan differs from legacy planner",
                        bench.name(),
                        q.label
                    );
                }
            }
        }
    }
}
