//! The parallel benchmark matrix must be a pure speed-up: running cells
//! through `parallel_map` yields results — and serialized JSON — that are
//! byte-identical to a sequential run with the same seeds.

use lt_bench::{parallel_map, run_tuner, trajectory_band, Scenario};
use lt_common::json;
use lt_dbms::Dbms;
use lt_workloads::Benchmark;

#[test]
fn parallel_matrix_matches_sequential_run() {
    let scenario = Scenario {
        benchmark: Benchmark::TpchSf1,
        dbms: Dbms::Postgres,
        initial_indexes: true,
    };
    let seed = 42u64;
    let n_trials = 2usize;
    let tuners = ["λ-Tune", "ParamTree"];

    let cells: Vec<(&str, u64)> = tuners
        .iter()
        .flat_map(|&name| (0..n_trials).map(move |t| (name, seed + t as u64)))
        .collect();

    // Sequential reference: plain iteration over the same cells.
    let sequential: Vec<_> = cells
        .iter()
        .map(|&(name, cell_seed)| run_tuner(name, scenario, cell_seed).trajectory)
        .collect();

    // Parallel run over however many threads the machine offers.
    let parallel = parallel_map(cells, |(name, cell_seed)| {
        run_tuner(name, scenario, cell_seed).trajectory
    });

    assert_eq!(sequential.len(), parallel.len());
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s.len(), p.len(), "trajectory lengths diverge");
        for (a, b) in s.iter().zip(p) {
            assert_eq!(a.opt_time, b.opt_time);
            assert_eq!(a.best_workload_time, b.best_workload_time);
        }
    }

    // The derived figure data (band + JSON) is byte-identical too.
    let to_json = |runs: &[Vec<lambda_tune::TrajectoryPoint>]| {
        let band = trajectory_band(runs, 8);
        let points: Vec<_> = band
            .iter()
            .map(|(t, mean, min, max)| {
                json!({ "opt_time_s": t, "mean_s": mean, "min_s": min, "max_s": max })
            })
            .collect();
        json::to_string_pretty(&json!({ "points": points }))
    };
    assert_eq!(to_json(&sequential), to_json(&parallel));
}

/// `parallel_map` preserves input order regardless of completion order.
#[test]
fn parallel_map_preserves_order() {
    let items: Vec<usize> = (0..64).collect();
    let doubled = parallel_map(items, |i| {
        // Make late items finish first to stress ordering.
        std::thread::sleep(std::time::Duration::from_micros((64 - i) as u64 * 10));
        i * 2
    });
    assert_eq!(doubled, (0..64).map(|i| i * 2).collect::<Vec<_>>());
}
