//! Benchmark harness shared by the table/figure binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§6); this library provides the scenario matrix, the
//! per-scenario environment construction (catalog, initial indexes, eval
//! timeouts) and the tuner registry, so every binary runs the *same*
//! experimental setup the paper describes:
//!
//! * **Scenario 1** (Figure 3): parameter tuning only; primary-/foreign-key
//!   indexes are pre-built for everyone.
//! * **Scenario 2** (Figure 4): physical design in scope; λ-Tune and UDO
//!   tune indexes themselves, the parameter-only baselines get Dexter's
//!   recommended indexes pre-built (exactly the paper's setup).
//!
//! Environment knobs: `LT_TRIALS` overrides the number of trials (default
//! 3), `LT_SEED` the base seed, `LT_TRACE=1` enables the observability
//! layer (see [`ObsRun`]).

use lambda_tune::{LambdaTuneOptions, TrajectoryPoint};
use lt_baselines::{
    common::measure_workload, DbBert, Dexter, GpTuner, LambdaTuneBaseline, LlamaTune, ParamTree,
    Tuner, TunerRun, Udo,
};
use lt_common::{secs, Secs};
use lt_dbms::{Dbms, Hardware, IndexSpec, SimDb};
use lt_workloads::{Benchmark, Workload};

/// One experimental scenario: a benchmark on a DBMS, with or without
/// pre-built initial indexes (= parameter-tuning-only scope).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Workload + catalog.
    pub benchmark: Benchmark,
    /// Target system.
    pub dbms: Dbms,
    /// True = Scenario 1 (PK/FK indexes pre-built, parameters only).
    pub initial_indexes: bool,
}

impl Scenario {
    /// Scenario label as printed in Table 3.
    pub fn label(&self) -> String {
        format!(
            "{} {} {}",
            self.benchmark.name(),
            match self.dbms {
                Dbms::Postgres => "PG",
                Dbms::Mysql => "MS",
            },
            if self.initial_indexes { "Yes" } else { "No" }
        )
    }

    /// Virtual tuning-time budget granted to budgeted tuners.
    pub fn budget(&self) -> Secs {
        match self.benchmark {
            Benchmark::TpchSf1 => secs(900.0),
            Benchmark::TpchSf10 => secs(3000.0),
            Benchmark::TpcdsSf1 => secs(900.0),
            Benchmark::Job => secs(1500.0),
        }
    }
}

/// The 14 scenarios of Table 3, in the paper's row order.
pub fn table3_scenarios() -> Vec<Scenario> {
    let mut rows = Vec::new();
    for initial_indexes in [true, false] {
        for benchmark in [Benchmark::TpchSf1, Benchmark::TpchSf10, Benchmark::Job] {
            for dbms in [Dbms::Postgres, Dbms::Mysql] {
                rows.push(Scenario {
                    benchmark,
                    dbms,
                    initial_indexes,
                });
            }
        }
    }
    for dbms in [Dbms::Postgres, Dbms::Mysql] {
        rows.push(Scenario {
            benchmark: Benchmark::TpcdsSf1,
            dbms,
            initial_indexes: false,
        });
    }
    // Paper order: indexes-yes block first (TPC-H 1/10, JOB), then
    // indexes-no including TPC-DS.
    rows
}

/// Builds the simulated database for a scenario (no initial indexes yet).
pub fn make_db(scenario: Scenario, seed: u64) -> (SimDb, Workload) {
    let workload = scenario.benchmark.load();
    let db = SimDb::new(
        scenario.dbms,
        workload.catalog.clone(),
        Hardware::p3_2xlarge(),
        seed,
    );
    (db, workload)
}

/// Primary-/foreign-key index specs referenced by the workload (Scenario
/// 1's pre-built "default indexes").
pub fn key_index_specs(db: &SimDb, workload: &Workload) -> Vec<IndexSpec> {
    let mut referenced: std::collections::HashSet<lt_common::ColumnId> =
        std::collections::HashSet::new();
    for wq in &workload.queries {
        let preds = lt_dbms::stats::extract(&wq.parsed, db.catalog());
        for edge in &preds.joins {
            referenced.insert(edge.left);
            referenced.insert(edge.right);
        }
        for terms in preds.filters.values() {
            referenced.extend(terms.iter().map(|t| t.column));
        }
    }
    db.catalog()
        .columns()
        .iter()
        .filter(|c| (c.primary_key || c.foreign_key) && referenced.contains(&c.id))
        .map(|c| IndexSpec {
            table: c.table,
            columns: vec![c.id],
            name: None,
        })
        .collect()
}

/// Materializes the Scenario-1 initial indexes (charges build time once,
/// before tuning starts, like the paper's setup phase).
pub fn build_initial_indexes(db: &mut SimDb, workload: &Workload) {
    for spec in key_index_specs(db, workload) {
        db.create_index(&spec);
    }
}

/// The tuner lineup of Table 3 / Figures 3–4, in column order.
pub fn tuner_names() -> [&'static str; 6] {
    [
        "λ-Tune",
        "UDO",
        "DB-Bert",
        "GPTuner",
        "LlamaTune",
        "ParamTree",
    ]
}

/// Runs one named tuner on a scenario and returns its run. Handles the
/// scenario-specific setup: initial indexes, Dexter pre-indexes for
/// parameter-only baselines in Scenario 2, eval timeouts and tuning scope.
pub fn run_tuner(name: &str, scenario: Scenario, seed: u64) -> TunerRun {
    let (mut db, workload) = make_db(scenario, seed);
    let params_only = scenario.initial_indexes;
    let tunes_indexes = matches!(name, "λ-Tune" | "UDO");
    if scenario.initial_indexes {
        build_initial_indexes(&mut db, &workload);
    } else if !tunes_indexes {
        // Scenario 2: parameter-only baselines run on Dexter's indexes
        // (paper: "we create indexes recommended by Dexter before tuning
        // starts").
        let specs = Dexter::default().recommend(&db, &workload);
        for spec in specs {
            db.create_index(&spec);
        }
    }
    // Eval timeout for baselines: proportional to the default-configuration
    // workload time (the paper anchors it at 3× λ-Tune's worst config).
    let (default_time, _) = probe_default_time(scenario, seed);
    let eval_timeout = default_time * 3.0;
    let budget = scenario.budget();

    match name {
        "λ-Tune" => {
            let options = LambdaTuneOptions {
                params_only,
                seed,
                ..Default::default()
            };
            LambdaTuneBaseline::new(options).tune(&mut db, &workload, budget)
        }
        "UDO" => {
            let options = lt_baselines::udo::UdoOptions {
                eval_timeout,
                tune_indexes: !params_only,
                seed,
                ..Default::default()
            };
            Udo::new(options).tune(&mut db, &workload, budget)
        }
        "DB-Bert" => {
            let options = lt_baselines::dbbert::DbBertOptions {
                eval_timeout,
                seed,
                ..Default::default()
            };
            DbBert::new(options).tune(&mut db, &workload, budget)
        }
        "GPTuner" => {
            let options = lt_baselines::gptuner::GpTunerOptions {
                eval_timeout,
                seed,
                ..Default::default()
            };
            GpTuner::new(options).tune(&mut db, &workload, budget)
        }
        "LlamaTune" => {
            let options = lt_baselines::llamatune::LlamaTuneOptions {
                eval_timeout,
                seed,
                ..Default::default()
            };
            LlamaTune::new(options).tune(&mut db, &workload, budget)
        }
        "ParamTree" => {
            let options = lt_baselines::paramtree::ParamTreeOptions {
                eval_timeout,
                ..Default::default()
            };
            ParamTree::new(options).tune(&mut db, &workload, budget)
        }
        other => panic!("unknown tuner {other}"),
    }
}

/// Workload time under the default configuration for a scenario (with the
/// scenario's initial indexes if any). Used to anchor eval timeouts and to
/// scale figures.
pub fn probe_default_time(scenario: Scenario, seed: u64) -> (Secs, Secs) {
    let (mut db, workload) = make_db(scenario, seed);
    if scenario.initial_indexes {
        build_initial_indexes(&mut db, &workload);
    }
    let start = db.now();
    let (time, done) = measure_workload(&mut db, &workload, Secs::INFINITY);
    assert!(done, "default configuration must complete without timeout");
    (time, db.now() - start)
}

/// Number of trials (paper: 3). Override with `LT_TRIALS`.
pub fn trials() -> usize {
    std::env::var("LT_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Worker threads for the benchmark matrix. Defaults to the machine's
/// available parallelism; override with `LT_BENCH_THREADS` (1 = sequential).
pub fn bench_threads() -> usize {
    std::env::var("LT_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Applies `f` to every item on a scoped thread pool of [`bench_threads`]
/// workers and returns the results **in input order**.
///
/// Benchmark cells (trial × tuner × scenario) are embarrassingly parallel:
/// each one builds its own `SimDb` from a per-cell deterministic seed, so
/// running them concurrently and emitting in index order produces output
/// byte-identical to a sequential run. Work is handed out through an atomic
/// cursor so long cells (e.g. TPC-H SF10 under UDO) don't stall a whole
/// stripe of short ones.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = bench_threads().min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = slots.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("item taken once");
                let out = f(item);
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

/// Base seed. Override with `LT_SEED`.
pub fn base_seed() -> u64 {
    std::env::var("LT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// Averages trajectories across trials onto a common time grid, returning
/// `(grid_time, mean, min, max)` rows — the shaded-band data of the
/// paper's line plots.
pub fn trajectory_band(
    runs: &[Vec<TrajectoryPoint>],
    grid_points: usize,
) -> Vec<(f64, f64, f64, f64)> {
    let horizon = runs
        .iter()
        .flat_map(|r| r.iter().map(|p| p.opt_time.as_f64()))
        .fold(0.0f64, f64::max);
    if horizon <= 0.0 {
        return Vec::new();
    }
    let value_at = |run: &[TrajectoryPoint], t: f64| -> Option<f64> {
        run.iter()
            .filter(|p| p.opt_time.as_f64() <= t)
            .map(|p| p.best_workload_time.as_f64())
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            })
    };
    (1..=grid_points)
        .filter_map(|i| {
            let t = horizon * i as f64 / grid_points as f64;
            let values: Vec<f64> = runs.iter().filter_map(|r| value_at(r, t)).collect();
            if values.is_empty() {
                return None;
            }
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let max = values.iter().copied().fold(0.0f64, f64::max);
            Some((t, mean, min, max))
        })
        .collect()
}

/// Formats a Markdown-ish table row.
pub fn row(cells: &[String]) -> String {
    cells.join(" | ")
}

/// Per-binary observability session: opens the root `run` span and, on
/// drop, prints the phase-summary table to stderr and writes the event log
/// to `results/<name>.trace.json` — the cost-breakdown sidecar of the
/// binary's `results/<name>.json`. Inert unless `LT_TRACE=1`.
///
/// The summary goes to **stderr** so `LT_TRACE=1` never perturbs the
/// byte-identical stdout the determinism gate compares. With
/// `LT_BENCH_THREADS=1` every span lands on the main thread under the root
/// span, so the per-phase exclusive times sum exactly to the run's wall
/// time (see the `trace_check` binary).
pub struct ObsRun {
    name: &'static str,
    root: Option<lt_common::obs::SpanGuard>,
}

impl ObsRun {
    /// Starts a session (clears any earlier registry contents so the trace
    /// covers exactly this run).
    pub fn start(name: &'static str) -> ObsRun {
        let root = if lt_common::obs::enabled() {
            lt_common::obs::reset();
            Some(lt_common::obs::span("run"))
        } else {
            None
        };
        ObsRun { name, root }
    }
}

impl Drop for ObsRun {
    fn drop(&mut self) {
        let Some(root) = self.root.take() else { return };
        drop(root); // completes the root span so the snapshot includes it
        let snap = lt_common::obs::snapshot();
        eprintln!("\n-- trace summary: {} --", self.name);
        eprint!("{}", snap.summary_table());
        let path = format!("results/{}.trace.json", self.name);
        if let Err(e) = std::fs::create_dir_all("results") {
            eprintln!("error: cannot create results/: {e}");
            std::process::exit(1);
        }
        if let Err(e) = std::fs::write(&path, snap.to_json().to_string_pretty()) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("trace written to {path}");
    }
}

/// Writes a result artifact to `results/<file>`, exiting nonzero on
/// failure so CI and scripts notice (a silently missing artifact used to
/// pass every gate).
pub fn write_results(file: &str, value: &lt_common::json::Value) {
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("error: cannot create results/: {e}");
        std::process::exit(1);
    }
    let path = format!("results/{file}");
    if let Err(e) = std::fs::write(&path, lt_common::json::to_string_pretty(value)) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
}

/// Shared runner for Figures 3 and 4: trajectory panels per (benchmark,
/// DBMS) with mean/min/max bands over trials.
///
/// All (scenario, tuner, trial) cells run concurrently on [`parallel_map`];
/// printing and JSON emission happen afterwards in the sequential order, so
/// stdout and `results/fig{N}.json` are byte-identical to a 1-thread run.
pub fn run_trajectory_figure(initial_indexes: bool, figure: &str, title: &str) {
    use lt_common::json;
    let seed = base_seed();
    let n_trials = trials();
    println!("Figure {figure}: {title}");
    println!(
        "(x = optimization time [s], y = best execution time found [s]; \
         mean [min, max] over {n_trials} trials)\n"
    );

    let scenarios: Vec<Scenario> = table3_scenarios()
        .into_iter()
        .filter(|s| s.initial_indexes == initial_indexes)
        .collect();
    let mut cells = Vec::new();
    for &scenario in &scenarios {
        for name in tuner_names() {
            for t in 0..n_trials {
                cells.push((name, scenario, seed + t as u64));
            }
        }
    }
    let trajectories = parallel_map(cells, |(name, scenario, cell_seed)| {
        run_tuner(name, scenario, cell_seed).trajectory
    });
    let mut trajectories = trajectories.into_iter();

    let mut panels = Vec::new();
    for scenario in scenarios {
        println!("== {} ==", scenario.label());
        let mut panel = Vec::new();
        for name in tuner_names() {
            let runs: Vec<_> = (0..n_trials)
                .map(|_| trajectories.next().expect("one trajectory per cell"))
                .collect();
            let band = trajectory_band(&runs, 8);
            if band.is_empty() {
                println!("  {name:<10} (no configuration completed within budget)");
                continue;
            }
            let series: Vec<String> = band
                .iter()
                .map(|(t, mean, min, max)| format!("({t:.0}s, {mean:.1} [{min:.1},{max:.1}])"))
                .collect();
            println!("  {name:<10} {}", series.join(" "));
            panel.push(json!({
                "tuner": name,
                "points": band.iter().map(|(t, mean, min, max)| json!({
                    "opt_time_s": t, "mean_s": mean, "min_s": min, "max_s": max
                })).collect::<Vec<_>>(),
            }));
        }
        println!();
        panels.push(json!({ "panel": scenario.label(), "series": panel }));
    }
    println!("Paper shape: λ-Tune reaches its (near-)final value fastest; hint-based");
    println!("tuners (DB-Bert, GPTuner) follow; UDO and LlamaTune converge slowest.");

    write_results(
        &format!("fig{figure}.json"),
        &json!({ "figure": figure, "panels": panels }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_matrix_matches_table3() {
        let rows = table3_scenarios();
        assert_eq!(rows.len(), 14);
        let with_idx = rows.iter().filter(|s| s.initial_indexes).count();
        assert_eq!(with_idx, 6);
        // TPC-DS appears only without initial indexes.
        assert!(rows
            .iter()
            .filter(|s| s.benchmark == Benchmark::TpcdsSf1)
            .all(|s| !s.initial_indexes));
    }

    #[test]
    fn key_indexes_cover_referenced_keys_only() {
        let scenario = Scenario {
            benchmark: Benchmark::TpchSf1,
            dbms: Dbms::Postgres,
            initial_indexes: true,
        };
        let (db, w) = make_db(scenario, 1);
        let specs = key_index_specs(&db, &w);
        assert!(!specs.is_empty());
        for s in &specs {
            let col = db.catalog().column(s.columns[0]);
            assert!(col.primary_key || col.foreign_key);
        }
    }

    #[test]
    fn initial_indexes_speed_up_the_default_config() {
        let without = Scenario {
            benchmark: Benchmark::TpchSf1,
            dbms: Dbms::Postgres,
            initial_indexes: false,
        };
        let with = Scenario {
            initial_indexes: true,
            ..without
        };
        let (t_without, _) = probe_default_time(without, 1);
        let (t_with, _) = probe_default_time(with, 1);
        // Key indexes can only help under the default optimizer settings if
        // plans use them; at minimum they must not slow queries down much.
        assert!(t_with <= t_without * 1.1, "{t_with} vs {t_without}");
    }

    #[test]
    fn trajectory_band_tracks_running_minimum() {
        let runs = vec![
            vec![
                TrajectoryPoint {
                    opt_time: secs(10.0),
                    best_workload_time: secs(100.0),
                },
                TrajectoryPoint {
                    opt_time: secs(20.0),
                    best_workload_time: secs(50.0),
                },
            ],
            vec![TrajectoryPoint {
                opt_time: secs(15.0),
                best_workload_time: secs(80.0),
            }],
        ];
        let band = trajectory_band(&runs, 4);
        assert!(!band.is_empty());
        let last = band.last().unwrap();
        assert!(
            (last.1 - 65.0).abs() < 1e-9,
            "mean of 50 and 80, got {}",
            last.1
        );
        assert_eq!(last.2, 50.0);
        assert_eq!(last.3, 80.0);
    }
}
