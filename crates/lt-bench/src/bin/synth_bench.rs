//! Workload-synthesis benchmark: drives generated scenarios end-to-end
//! through the whole stack.
//!
//! Four sections, each an acceptance bound of the lt-synth subsystem:
//!
//! 1. **Generation** — every scenario spec compiles to a workload that is
//!    100 % catalog-valid (re-checked here, independently of the engine's
//!    own validation) and conforms to its declared join-shape mix, Zipf
//!    skew and selectivity band within the spec tolerance.
//! 2. **Tune + drift** — synthesized workloads tune to a real winning
//!    configuration, and declarative streams built from synthesized pools
//!    drive the drift monitor: stationary controls raise zero alarms,
//!    profile shifts between two synthesized phases are detected.
//! 3. **Serve** — an in-process server accepts `"spec"` feed bodies over
//!    HTTP, expands them server-side, and surfaces the per-detector
//!    `drift.*` gauges in `/metrics`.
//! 4. **Delta re-tune** — the drift-aware delta-prompt re-tune matches
//!    the blind warm restart's quality at no more than its token bill.
//!
//! Writes `results/BENCH_synth.json` — the committed evidence for the
//! bounds above. `--smoke` shrinks scenario counts and writes to
//! `results/BENCH_synth.smoke.json` so a CI pass never clobbers the
//! committed numbers. Scenario count: `LT_SYNTH_SCENARIOS` (default
//! 1000; smoke runs 24).
//!
//! Determinism: every scenario derives its spec and seed from the base
//! seed and its index, scenarios run on [`parallel_map`] and are reduced
//! in input order, and no wall-clock value enters stdout or the JSON —
//! the CI gate diffs the smoke artifact across `LT_BENCH_THREADS=1`
//! and `=4`.

use lt_bench::{base_seed, parallel_map, write_results, ObsRun};
use lt_common::json::Value;
use lt_common::{derive_seed, json};
use lt_drift::{compare_retune, run_stream_spec, DriftConfig};
use lt_llm::{LlmClient, SimulatedLlm};
use lt_serve::http::request;
use lt_serve::{start, ServerConfig};
use lt_synth::{JoinMix, PhaseSpec, PoolSpec, StreamSpec, Synthesizer, WorkloadSpec};
use lt_workloads::Benchmark;

/// Detection bound for synth-to-synth profile shifts (queries after the
/// shift point; the streams here are short, so this is also < len/2).
const DETECT_BOUND: u64 = 128;
/// Delta re-tune quality bound: `delta_time / warm_time` must stay below.
const QUALITY_BOUND: f64 = 1.05;
/// Retune trial seeds — the same pinned set the detector property suite
/// bounds per-seed (see lt-drift/tests/detector_prop.rs).
const RETUNE_SEEDS: [u64; 3] = [42, 7, 1234];

/// Scenario count: `LT_SYNTH_SCENARIOS`, default 1000 (24 under --smoke).
fn scenario_count(smoke: bool) -> usize {
    std::env::var("LT_SYNTH_SCENARIOS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(if smoke { 24 } else { 1000 })
}

/// The scenario grid: spec parameters sweep deterministically with the
/// index, so scenario `i` is identical on every run and thread count.
fn scenario_spec(seed: u64, i: usize) -> WorkloadSpec {
    let mixes = [
        JoinMix {
            chain: 0.5,
            star: 0.3,
            clique: 0.2,
        },
        JoinMix {
            chain: 0.7,
            star: 0.2,
            clique: 0.1,
        },
        JoinMix {
            chain: 0.3,
            star: 0.5,
            clique: 0.2,
        },
        JoinMix {
            chain: 0.4,
            star: 0.4,
            clique: 0.2,
        },
    ];
    WorkloadSpec {
        name: format!("scenario-{i}"),
        queries: 12 + (i % 3) * 6,
        seed: derive_seed(seed, 10_000 + i as u64),
        join_mix: mixes[i % mixes.len()],
        depth_min: 2,
        depth_max: 3 + (i % 2),
        skew: 0.4 + 0.2 * (i % 4) as f64,
        filter_rate: 0.6 + 0.1 * (i % 4) as f64,
        tolerance: 0.25,
        ..WorkloadSpec::default()
    }
}

/// Short drift-monitor configuration matched to the 320-query streams of
/// the drift leg (the default warmup alone would swallow them). The JSD
/// threshold is lowered from the benchmark-swap default: two synthesized
/// workloads over the *same* schema share most of their feature mass, so
/// the shift lands at ~0.20–0.32 bits (probed over every drift-leg seed)
/// while stationary synth traffic stays well under 0.12.
fn stream_config() -> DriftConfig {
    DriftConfig {
        window: 64,
        stride: 16,
        warmup: 64,
        cooldown: 64,
        jsd_threshold: 0.12,
        ..DriftConfig::default()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed = base_seed();
    let scenarios = scenario_count(smoke);
    let tune_legs = if smoke { 2 } else { 8 };
    let drift_legs = if smoke { 4 } else { 16 };
    let serve_feeds = if smoke { 3 } else { 6 };
    let retune_trials = if smoke { 1 } else { 3 };
    let _obs = ObsRun::start("BENCH_synth");
    println!("Workload-synthesis benchmark: generation → tune → drift → delta re-tune → serve");
    println!("(seed {seed}, {scenarios} scenarios, {tune_legs} tune legs, {drift_legs} drift legs, {serve_feeds} serve feeds)\n");

    let mut all_pass = true;
    let engine = Synthesizer::shared(Benchmark::TpchSf1);

    // 1. Generation + conformance over the full scenario grid.
    let specs: Vec<WorkloadSpec> = (0..scenarios).map(|i| scenario_spec(seed, i)).collect();
    let outcomes = parallel_map(specs.clone(), |spec| {
        let synthesis = engine.synthesize(&spec)?;
        // Independent validity re-check: every generated query's tables
        // must resolve against the catalog the engine claims it used.
        let mut valid = 0usize;
        for q in &synthesis.workload.queries {
            let analysis = lt_sql::analysis::analyze(&q.parsed);
            let ok = !analysis.tables.is_empty()
                && analysis
                    .tables
                    .iter()
                    .all(|t| synthesis.workload.catalog.table_by_name(t).is_some());
            valid += ok as usize;
        }
        Ok::<_, lt_common::LtError>((synthesis.report, valid))
    });
    let mut generated = 0usize;
    let mut valid = 0usize;
    let mut rejects = 0usize;
    let mut llm_calls = 0u64;
    let mut conforming = 0usize;
    let mut max_mix_error = 0.0f64;
    let mut max_skew_error = 0.0f64;
    let mut bucket_violations = 0usize;
    let mut errors = 0usize;
    for (spec, outcome) in specs.iter().zip(&outcomes) {
        match outcome {
            Ok((report, ok)) => {
                generated += report.queries;
                valid += ok;
                rejects += report.rejects;
                llm_calls += report.llm_calls;
                let conforms = report.conformance.mix_error <= spec.tolerance
                    && report.conformance.skew_error <= spec.tolerance
                    && report.conformance.bucket_violations == 0;
                conforming += conforms as usize;
                max_mix_error = max_mix_error.max(report.conformance.mix_error);
                max_skew_error = max_skew_error.max(report.conformance.skew_error);
                bucket_violations += report.conformance.bucket_violations;
            }
            Err(e) => {
                errors += 1;
                println!("  scenario {}: FAIL ({e})", spec.name);
            }
        }
    }
    let gen_pass =
        errors == 0 && valid == generated && conforming == scenarios && bucket_violations == 0;
    all_pass &= gen_pass;
    println!("== generation ({scenarios} scenarios) ==");
    println!(
        "  {generated} queries generated, {valid} catalog-valid ({}%), {rejects} rejects repaired over {llm_calls} LLM calls",
        (100 * valid).checked_div(generated).unwrap_or(0)
    );
    println!(
        "  conforming {conforming}/{scenarios}, max mix error {max_mix_error:.4}, max skew error {max_skew_error:.4}, bucket violations {bucket_violations} — {}\n",
        if gen_pass { "PASS" } else { "FAIL" }
    );

    // 2a. Tune leg: synthesized workloads through the full pipeline.
    let tune_results = parallel_map((0..tune_legs).collect::<Vec<_>>(), |i| {
        let spec = WorkloadSpec {
            queries: 8,
            ..scenario_spec(seed, i)
        };
        let synthesis = engine.synthesize(&spec)?;
        let mut db = lt_dbms::SimDb::new(
            lt_dbms::Dbms::Postgres,
            synthesis.workload.catalog.clone(),
            lt_dbms::Hardware::p3_2xlarge(),
            derive_seed(seed, 20_000 + i as u64),
        );
        let llm = LlmClient::new(SimulatedLlm::new());
        let options = lambda_tune::LambdaTuneOptions {
            num_configs: 2,
            seed: derive_seed(seed, 21_000 + i as u64),
            ..Default::default()
        };
        let result =
            lambda_tune::LambdaTune::new(options).tune(&mut db, &synthesis.workload, &llm)?;
        Ok::<_, lt_common::LtError>((result.best_config.is_some(), result.best_time.as_f64()))
    });
    let tuned = tune_results
        .iter()
        .filter(|r| matches!(r, Ok((true, _))))
        .count();
    let tune_pass = tuned == tune_legs;
    all_pass &= tune_pass;
    println!("== tune leg ({tune_legs} synthesized workloads) ==");
    for (i, r) in tune_results.iter().enumerate() {
        match r {
            Ok((found, time)) => println!(
                "  leg {i}: config {} best {time:.2}s",
                if *found { "found" } else { "MISSING" }
            ),
            Err(e) => println!("  leg {i}: FAIL ({e})"),
        }
    }
    println!(
        "  {tuned}/{tune_legs} tuned to a winner — {}\n",
        if tune_pass { "PASS" } else { "FAIL" }
    );

    // 2b. Drift leg: declarative streams over synthesized pools. Every
    // 4th stream is a stationary control (one pool, no shift); the rest
    // shift between two deliberately different profiles at mid-stream.
    let drift_cells: Vec<usize> = (0..drift_legs).collect();
    let drift_results = parallel_map(drift_cells, |i| {
        let stationary = i % 4 == 0;
        let pool_a = WorkloadSpec {
            queries: 24,
            skew: 0.3,
            filter_rate: 0.5,
            ..scenario_spec(seed, 30_000 + i)
        };
        let (len, shift_at) = (320usize, 160usize);
        let phases = if stationary {
            vec![PhaseSpec {
                at: 0,
                major: PoolSpec::Synth(pool_a),
                minor: None,
            }]
        } else {
            // The post-shift profile moves on every spec axis at once —
            // deep stars over the heaviest tables, every query filtered
            // into the tightest selectivity band — so the feature
            // distribution shifts even though the schema is unchanged.
            let pool_b = WorkloadSpec {
                queries: 24,
                skew: 2.0,
                filter_rate: 1.0,
                depth_min: 4,
                depth_max: 6,
                bucket_min: 0,
                bucket_max: 2,
                join_mix: JoinMix {
                    chain: 0.0,
                    star: 1.0,
                    clique: 0.0,
                },
                seed: derive_seed(seed, 40_000 + i as u64),
                ..scenario_spec(seed, 30_000 + i)
            };
            vec![
                PhaseSpec {
                    at: 0,
                    major: PoolSpec::Synth(pool_a),
                    minor: None,
                },
                PhaseSpec {
                    at: shift_at,
                    major: PoolSpec::Synth(pool_b),
                    minor: None,
                },
            ]
        };
        let spec = StreamSpec {
            len,
            seed: derive_seed(seed, 50_000 + i as u64),
            phases,
        };
        let boundary = if stationary { None } else { Some(shift_at) };
        run_stream_spec(&spec, boundary, &stream_config()).map(|r| (stationary, r))
    });
    let mut drift_pass = true;
    let mut drift_rows = Vec::new();
    println!("== drift leg ({drift_legs} synthesized streams, bound {DETECT_BOUND}) ==");
    for (i, outcome) in drift_results.iter().enumerate() {
        match outcome {
            Ok((stationary, r)) => {
                let ok = if *stationary {
                    r.events.is_empty()
                } else {
                    r.false_alarms == 0 && r.detection_latency.is_some_and(|l| l <= DETECT_BOUND)
                };
                drift_pass &= ok;
                println!(
                    "  stream {i}: {} false alarms {}, latency {} — {}",
                    if *stationary {
                        "stationary"
                    } else {
                        "shifted  "
                    },
                    r.false_alarms,
                    r.detection_latency
                        .map_or("n/a".to_string(), |l| l.to_string()),
                    if ok { "PASS" } else { "FAIL" }
                );
                drift_rows.push(json!({
                    "stream": i as f64,
                    "stationary": *stationary,
                    "false_alarms": r.false_alarms as f64,
                    "detection_latency": r.detection_latency
                        .map_or(Value::Null, |l| Value::Int(l as i64)),
                    "pass": ok,
                }));
            }
            Err(e) => {
                drift_pass = false;
                println!("  stream {i}: FAIL ({e})");
                drift_rows.push(json!({ "stream": i as f64, "error": format!("{e}") }));
            }
        }
    }
    all_pass &= drift_pass;
    println!("  {}\n", if drift_pass { "PASS" } else { "FAIL" });

    // 3. Delta-prompt re-tune vs blind warm restart, at the same pinned
    // seeds the detector property suite bounds (detector_prop::SEEDS) —
    // the gate re-asserts those per-seed bounds end-to-end, it does not
    // sample new ones.
    let retune_seeds: Vec<u64> = RETUNE_SEEDS[..retune_trials].to_vec();
    let comparisons = parallel_map(retune_seeds, |s| (s, compare_retune(s)));
    println!("== delta re-tune (quality ≤ {QUALITY_BOUND}, tokens ≤ blind warm restart) ==");
    let mut delta_rows = Vec::new();
    let mut delta_pass = true;
    for (s, outcome) in &comparisons {
        match outcome {
            Ok(c) => {
                let quality = c.delta_time / c.warm_time.max(1e-9);
                let seed_pass = quality <= QUALITY_BOUND
                    && c.delta_tokens <= c.warm_tokens
                    && c.delta_tuning_time <= c.warm_tuning_time;
                delta_pass &= seed_pass;
                println!(
                    "  seed {s}: warm {:.1}s delta {:.1}s quality {quality:.4} tokens {} vs {} tuning {:.0}s vs {:.0}s — {}",
                    c.warm_time,
                    c.delta_time,
                    c.delta_tokens,
                    c.warm_tokens,
                    c.delta_tuning_time,
                    c.warm_tuning_time,
                    if seed_pass { "PASS" } else { "FAIL" }
                );
                delta_rows.push(json!({
                    "seed": *s as f64,
                    "warm_time_s": c.warm_time,
                    "delta_time_s": c.delta_time,
                    "quality_ratio": quality,
                    "warm_tokens": c.warm_tokens as f64,
                    "delta_tokens": c.delta_tokens as f64,
                    "warm_tuning_time_s": c.warm_tuning_time,
                    "delta_tuning_time_s": c.delta_tuning_time,
                    "pass": seed_pass,
                }));
            }
            Err(e) => {
                delta_pass = false;
                println!("  seed {s}: FAIL ({e})");
                delta_rows.push(json!({ "seed": *s as f64, "error": format!("{e}") }));
            }
        }
    }
    all_pass &= delta_pass;
    println!("  {}\n", if delta_pass { "PASS" } else { "FAIL" });

    // 4. Serve leg: spec feeds over real HTTP, one in-process server. The
    // server's worker threads record spans off the main thread, which
    // would break the trace invariant (per-phase self-times on the main
    // thread summing to the run wall), so the traced run ends here —
    // serving stays outside the sidecar, exactly like the serve gate.
    drop(_obs);
    println!("== serve leg ({serve_feeds} spec feeds over HTTP) ==");
    let mut serve_rows = Vec::new();
    let serve_pass = (|| -> Result<bool, String> {
        let mut server = start(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        })
        .map_err(|e| format!("bind: {e}"))?;
        let addr = server.addr();
        let body = format!(
            r#"{{"benchmark": "tpch", "num_configs": 2, "seed": {},
                "drift": {{"window": 16, "stride": 4, "confirm": 2, "cooldown": 32}}}}"#,
            derive_seed(seed, 60_000)
        );
        let (status, response) =
            request(addr, "POST", "/sessions", Some(&body)).map_err(|e| e.to_string())?;
        if status != 202 {
            return Err(format!("session not accepted: {status} {response}"));
        }
        let id = json::parse(&response)
            .ok()
            .and_then(|d| d.get("id")?.as_i64())
            .ok_or("no session id")?;
        loop {
            let (status, response) =
                request(addr, "GET", &format!("/sessions/{id}?wait_ms=100"), None)
                    .map_err(|e| e.to_string())?;
            if status != 200 {
                return Err(format!("poll failed: {status} {response}"));
            }
            let state = json::parse(&response)
                .ok()
                .and_then(|d| Some(d.get("state")?.as_str()?.to_string()))
                .ok_or("no state")?;
            match state.as_str() {
                "done" => break,
                "failed" | "cancelled" => return Err(format!("session {state}")),
                _ => {}
            }
        }
        let mut ok = true;
        for f in 0..serve_feeds {
            let spec = WorkloadSpec {
                queries: 24,
                ..scenario_spec(seed, 70_000 + f)
            };
            let body = Value::Object(vec![("spec".to_string(), spec.to_json())]).to_string_pretty();
            let (status, response) = request(
                addr,
                "POST",
                &format!("/sessions/{id}/queries"),
                Some(&body),
            )
            .map_err(|e| e.to_string())?;
            let executed = json::parse(&response)
                .ok()
                .and_then(|d| d.get("executed")?.as_i64());
            let feed_ok = status == 200 && executed == Some(spec.queries as i64);
            ok &= feed_ok;
            println!(
                "  feed {f}: status {status} executed {executed:?} — {}",
                if feed_ok { "PASS" } else { "FAIL" }
            );
            serve_rows.push(json!({
                "feed": f as f64,
                "status": status as f64,
                "executed": executed.map_or(Value::Null, Value::Int),
                "pass": feed_ok,
            }));
        }
        let (status, metrics) =
            request(addr, "GET", "/metrics", None).map_err(|e| e.to_string())?;
        let gauges: Vec<&str> = ["drift.jsd", "drift.ewma_hit_rate", "drift.page_hinkley"]
            .into_iter()
            .filter(|g| metrics.contains(*g))
            .collect();
        let gauges_ok = status == 200 && gauges.len() == 3;
        ok &= gauges_ok;
        println!(
            "  /metrics drift gauges: {}/3 — {}",
            gauges.len(),
            if gauges_ok { "PASS" } else { "FAIL" }
        );
        server.shutdown();
        Ok(ok)
    })();
    let serve_ok = match serve_pass {
        Ok(ok) => ok,
        Err(e) => {
            println!("  FAIL ({e})");
            false
        }
    };
    all_pass &= serve_ok;
    println!("  {}\n", if serve_ok { "PASS" } else { "FAIL" });

    let file = if smoke {
        "BENCH_synth.smoke.json"
    } else {
        "BENCH_synth.json"
    };
    write_results(
        file,
        &json!({
            "bench": "synth",
            "seed": seed as f64,
            "scenarios": scenarios as f64,
            "generation": json!({
                "queries": generated as f64,
                "catalog_valid": valid as f64,
                "rejects_repaired": rejects as f64,
                "llm_calls": llm_calls as f64,
                "conforming_scenarios": conforming as f64,
                "max_mix_error": max_mix_error,
                "max_skew_error": max_skew_error,
                "bucket_violations": bucket_violations as f64,
                "errors": errors as f64,
                "pass": gen_pass,
            }),
            "tune": json!({
                "legs": tune_legs as f64,
                "tuned": tuned as f64,
                "pass": tune_pass,
            }),
            "drift": json!({
                "streams": Value::Array(drift_rows),
                "detect_bound": DETECT_BOUND as f64,
                "pass": drift_pass,
            }),
            "serve": json!({
                "feeds": Value::Array(serve_rows),
                "pass": serve_ok,
            }),
            "delta_retune": json!({
                "per_seed": Value::Array(delta_rows),
                "quality_bound": QUALITY_BOUND,
                "pass": delta_pass,
            }),
            "pass": all_pass,
        }),
    );
    println!("written to results/{file}");
    println!("{}", if all_pass { "PASS" } else { "FAIL" });
    if !all_pass {
        std::process::exit(1);
    }
}
