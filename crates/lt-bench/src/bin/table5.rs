//! Table 5: the best λ-Tune configuration for TPC-H 1GB on PostgreSQL —
//! parameter changes (with categories) and created indexes — plus the
//! §6.3 cross-benchmark parameter-transfer analysis.
//!
//! Usage: `cargo run --release -p lt-bench --bin table5`

use lambda_tune::{LambdaTune, LambdaTuneOptions};
use lt_bench::{base_seed, make_db, parallel_map, Scenario};
use lt_common::json;
use lt_dbms::knobs::knob_def;
use lt_dbms::{Configuration, Dbms};
use lt_llm::{LlmClient, SimulatedLlm};
use lt_workloads::Benchmark;
use std::collections::BTreeMap;

fn tune(benchmark: Benchmark, seed: u64) -> (Configuration, lt_workloads::Workload) {
    let scenario = Scenario {
        benchmark,
        dbms: Dbms::Postgres,
        initial_indexes: false,
    };
    let (mut db, workload) = make_db(scenario, seed);
    let llm = LlmClient::new(SimulatedLlm::new());
    let options = LambdaTuneOptions {
        seed,
        ..Default::default()
    };
    let result = LambdaTune::new(options)
        .tune(&mut db, &workload, &llm)
        .expect("tuning succeeds");
    (result.best_config.expect("a configuration wins"), workload)
}

fn main() {
    let _obs = lt_bench::ObsRun::start("table5");
    let seed = base_seed();
    // One tuning run per benchmark; the TPC-H run feeds both the main table
    // and the §6.3 transfer comparison, so it is not repeated.
    let benches = [Benchmark::TpchSf1, Benchmark::TpcdsSf1, Benchmark::Job];
    let mut tuned = parallel_map(benches.to_vec(), |b| tune(b, seed)).into_iter();
    let (best, workload) = tuned.next().expect("TPC-H run");
    let transfer_runs: Vec<(Benchmark, Configuration)> =
        std::iter::once((benches[0], best.clone()))
            .chain(
                benches[1..]
                    .iter()
                    .zip(tuned)
                    .map(|(&b, (cfg, _))| (b, cfg)),
            )
            .collect();

    println!("Table 5: Best λ-Tune Configuration for TPC-H 1GB (Postgres)\n");
    println!("{:<36} {:<12} {:>10}", "Parameter", "Category", "Value");
    let mut params = Vec::new();
    for (name, value) in best.knob_changes() {
        let category = knob_def(Dbms::Postgres, name)
            .map(|d| d.category.to_string())
            .unwrap_or_else(|| "?".into());
        println!("{name:<36} {category:<12} {value:>10}");
        params.push(json!({ "parameter": name, "category": category, "value": value.to_string() }));
    }

    println!("\n{:<14} Indexed Columns", "Table");
    let mut by_table: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for spec in best.index_specs() {
        let table = workload.catalog.table(spec.table).name.clone();
        for col in &spec.columns {
            by_table
                .entry(table.clone())
                .or_default()
                .push(workload.catalog.column(*col).name.clone());
        }
    }
    for (table, cols) in &by_table {
        println!("{:<14} {}", table, cols.join(", "));
    }
    println!("\nPaper shape: memory knobs raised (shared_buffers = 25% of 61GB = 15GB),");
    println!("optimizer knobs favour indexes (random_page_cost 1.1, large");
    println!("effective_cache_size), effective_io_concurrency 200, and single-column");
    println!("indexes on frequently joined key columns.");

    // §6.3 transfer analysis: compare parameter settings across benchmarks.
    println!("\nCross-benchmark parameter comparison (§6.3):");
    let mut per_bench: BTreeMap<&'static str, BTreeMap<String, String>> = BTreeMap::new();
    for (benchmark, cfg) in &transfer_runs {
        let knobs: BTreeMap<String, String> = cfg
            .knob_changes()
            .map(|(n, v)| (n.to_string(), v.to_string()))
            .collect();
        per_bench.insert(benchmark.name(), knobs);
    }
    let all_knobs: std::collections::BTreeSet<String> =
        per_bench.values().flat_map(|m| m.keys().cloned()).collect();
    println!(
        "{:<36} {:>10} {:>10} {:>10}",
        "Parameter", "TPC-H", "TPC-DS", "JOB"
    );
    let mut shared = 0;
    for knob in &all_knobs {
        let get = |b: &str| {
            per_bench
                .get(b)
                .and_then(|m| m.get(knob))
                .cloned()
                .unwrap_or_else(|| "-".into())
        };
        let (a, b, c) = (get("TPC-H 1GB"), get("TPC-DS"), get("JOB"));
        if a == b && b == c && a != "-" {
            shared += 1;
        }
        println!("{knob:<36} {a:>10} {b:>10} {c:>10}");
    }
    println!(
        "\n{shared} of {} parameters agree across all three benchmarks (the paper \
         observes memory-related settings transferring, e.g. shared_buffers).",
        all_knobs.len()
    );

    lt_bench::write_results(
        "table5.json",
        &json!({
            "table": "5",
            "parameters": params,
            "indexes": by_table,
            "transfer": per_bench,
        }),
    );
}
