//! Fleet-scale amortization benchmark.
//!
//! Four sections, each an acceptance bound of the lt-fleet subsystem:
//!
//! 1. **Cold fleet** — N tenants drawn from K archetypes (N ≫ K) tuned
//!    through the serving layer with the tuning cache disabled: every
//!    session pays the full prompt → sample → evaluate pipeline.
//! 2. **Warm fleet** — the same N tenants with the cache enabled, run as a
//!    populate wave (one session per archetype) and a hit wave (everything
//!    else replays). Token and evaluation work per session must drop by the
//!    acceptance factors, and every replayed winner must be byte-identical
//!    to its cold-phase counterpart.
//! 3. **Batched sampling** — the pipeline run directly at batch size 1 and
//!    8 must produce byte-identical winners; batching only shrinks the
//!    prompt-token bill.
//! 4. **Warm-start transfer** — a drifted workload served from the nearest
//!    cached neighbour must stay within the 1.05 quality bound of a cold
//!    run at no more than half the prompt tokens.
//!
//! Writes `results/BENCH_fleet.json` (`--smoke` shrinks the tenant count
//! and acceptance factors and writes `results/BENCH_fleet.smoke.json`).
//!
//! Determinism: token totals are obs-counter deltas around completed
//! phases, evaluation work is the *virtual* time of `tune` spans, and no
//! wall-clock value enters the JSON (wall throughput goes to stdout only) —
//! the CI gate diffs this artifact across `LT_BENCH_THREADS=1` and `=4`.
//! The server phases run before [`ObsRun`] starts, so the trace sidecar
//! covers only the single-threaded sections and stays `trace_check`-clean.

use lt_bench::{base_seed, bench_threads, write_results, ObsRun};
use lt_common::json::{parse, Value};
use lt_common::{derive_seed, json, obs};
use lt_dbms::{Dbms, Hardware, SimDb};
use lt_fleet::{fleet_tune, FleetCache, Served, TransferOptions};
use lt_llm::{LlmClient, SimulatedLlm};
use lt_serve::http::Connection;
use lt_serve::{start, ServerConfig};
use lt_workloads::Benchmark;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Warm/cold token-per-session reduction the full run must reach.
const TOKEN_FACTOR: f64 = 10.0;
/// Warm/cold evaluation-time-per-session reduction the full run must reach.
const EVAL_FACTOR: f64 = 5.0;
/// Transfer quality bound (the lt-drift warm-retune contract).
const QUALITY_BOUND: f64 = 1.05;
/// Transfer prompt-token bound relative to a cold run.
const TRANSFER_TOKEN_BOUND: f64 = 0.5;

/// One of the K request shapes the fleet repeats.
struct Archetype {
    benchmark: &'static str,
    num_configs: usize,
}

const ARCHETYPES: [Archetype; 4] = [
    Archetype {
        benchmark: "tpch-sf1",
        num_configs: 2,
    },
    Archetype {
        benchmark: "tpch-sf1",
        num_configs: 3,
    },
    Archetype {
        benchmark: "tpcds-sf1",
        num_configs: 2,
    },
    Archetype {
        benchmark: "tpcds-sf1",
        num_configs: 3,
    },
];

/// Rounds to microseconds. Virtual-time totals are sums over spans whose
/// accumulation order follows worker scheduling; the values agree to
/// ~1e-12 relative across schedules but not bit-for-bit, and the CI
/// determinism gate byte-diffs this JSON across thread counts.
fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

/// Counter total by name (0 when the counter never fired).
fn counter_total(name: &str) -> u64 {
    obs::snapshot()
        .counters
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// The deterministic work measures of everything run so far: LLM tokens
/// billed, pipeline (`tune` span) executions and their virtual seconds.
#[derive(Debug, Clone, Copy)]
struct WorkMark {
    tokens: u64,
    tunes: u64,
    tune_vt: f64,
}

impl WorkMark {
    fn now() -> WorkMark {
        let snap = obs::snapshot();
        let tune = snap.phases().into_iter().find(|p| p.name == "tune");
        WorkMark {
            tokens: counter_total("llm.prompt_tokens") + counter_total("llm.completion_tokens"),
            tunes: tune.as_ref().map(|p| p.count).unwrap_or(0),
            tune_vt: tune.as_ref().map(|p| p.vt).unwrap_or(0.0),
        }
    }

    fn since(&self, earlier: &WorkMark) -> WorkMark {
        WorkMark {
            tokens: self.tokens - earlier.tokens,
            tunes: self.tunes - earlier.tunes,
            tune_vt: self.tune_vt - earlier.tune_vt,
        }
    }
}

/// What the server reported for one tenant session.
#[derive(Debug, Clone, PartialEq)]
struct TenantOutcome {
    state: String,
    script: String,
    best_time: f64,
}

/// Submits one session per tenant index, waits for all of them, and fetches
/// the winners. All exchanges share one keep-alive connection.
fn drive_tenants(addr: SocketAddr, seed: u64, tenants: &[usize], k: usize) -> Vec<TenantOutcome> {
    let mut conn = Connection::new(addr);
    let mut ids = Vec::with_capacity(tenants.len());
    for &tenant in tenants {
        let archetype = &ARCHETYPES[tenant % k];
        // Tenants of one archetype share the session seed: at fleet scale
        // the same request recurs, which is exactly what the cache
        // amortizes. Masked into i64 — seeds travel through JSON.
        let session_seed = derive_seed(seed, (tenant % k) as u64) & (i64::MAX as u64);
        let body = json!({
            "benchmark": archetype.benchmark,
            "seed": session_seed,
            "num_configs": archetype.num_configs,
        })
        .to_string_pretty();
        let (status, _, response) = conn
            .call("POST", "/sessions", &[], Some(&body))
            .expect("submit");
        assert_eq!(status, 202, "tenant {tenant} rejected: {response}");
        let id = parse(&response)
            .ok()
            .and_then(|d| d.get("id")?.as_i64())
            .expect("session id");
        ids.push(id);
    }
    let deadline = Instant::now() + Duration::from_secs(600);
    ids.iter()
        .map(|id| loop {
            let (status, _, response) = conn
                .call("GET", &format!("/sessions/{id}"), &[], None)
                .expect("poll");
            assert_eq!(status, 200);
            let doc = parse(&response).expect("status document");
            let state = doc
                .get("state")
                .and_then(Value::as_str)
                .expect("state")
                .to_string();
            match state.as_str() {
                "done" => {
                    let (status, _, config) = conn
                        .call("GET", &format!("/sessions/{id}/config"), &[], None)
                        .expect("config");
                    assert_eq!(status, 200, "{config}");
                    let config = parse(&config).expect("config document");
                    break TenantOutcome {
                        state,
                        script: config
                            .get("script")
                            .and_then(Value::as_str)
                            .unwrap_or_default()
                            .to_string(),
                        best_time: config
                            .get("best_time_s")
                            .and_then(Value::as_f64)
                            .unwrap_or(0.0),
                    };
                }
                "failed" | "cancelled" => panic!("session {id} ended {state}: {response}"),
                _ => {
                    assert!(Instant::now() < deadline, "session {id} stuck in {state}");
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed = base_seed();
    let k = ARCHETYPES.len();
    let tenants = if smoke { 4 * k } else { 16 * k };
    let (token_factor, eval_factor) = if smoke {
        // A 4-per-archetype smoke fleet caps the attainable ratio at ~4×.
        (2.0, 2.0)
    } else {
        (TOKEN_FACTOR, EVAL_FACTOR)
    };
    obs::set_enabled(true);
    println!("Fleet amortization benchmark: tuning cache + batched sampling + transfer");
    println!(
        "(seed {seed}, {tenants} tenants from {k} archetypes, {} worker(s))\n",
        bench_threads()
    );
    let mut all_pass = true;

    // ---- sections 1+2: the tenant fleet through the serving layer ----
    let mut server = start(ServerConfig {
        workers: bench_threads(),
        queue_depth: tenants + 8,
        max_connections: 64,
        tenant_cap: tenants + 8,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.addr();
    let fleet = FleetCache::global();
    let all: Vec<usize> = (0..tenants).collect();

    // 1. Cold: cache off, every session pays full price.
    fleet.set_enabled(false);
    let mark = WorkMark::now();
    let cold_started = Instant::now();
    let cold_outcomes = drive_tenants(addr, seed, &all, k);
    let cold_wall = cold_started.elapsed();
    let cold = WorkMark::now().since(&mark);

    // 2. Warm: populate one session per archetype, then replay the rest.
    // The wave barrier makes the hit count schedule-independent: by the
    // time the second wave is submitted, every archetype is cached.
    fleet.set_enabled(true);
    fleet.clear();
    let hits_before = counter_total("fleet.tune_hit");
    let mark = WorkMark::now();
    let warm_started = Instant::now();
    let mut warm_outcomes = drive_tenants(addr, seed, &all[..k], k);
    warm_outcomes.extend(drive_tenants(addr, seed, &all[k..], k));
    let warm_wall = warm_started.elapsed();
    let warm = WorkMark::now().since(&mark);
    let hits = counter_total("fleet.tune_hit") - hits_before;
    server.shutdown();

    let replay_identical = cold_outcomes == warm_outcomes;
    let expected_hits = (tenants - k) as u64;
    let per = |w: &WorkMark, what: &str| -> (f64, f64) {
        let tokens = w.tokens as f64 / tenants as f64;
        let vt = w.tune_vt / tenants as f64;
        println!(
            "  {what}: {} tokens ({tokens:.0}/session), {} pipeline runs, {:.1} vt-s ({vt:.2}/session)",
            w.tokens, w.tunes, w.tune_vt
        );
        (tokens, vt)
    };
    println!("== fleet: {tenants} tenants, {k} archetypes ==");
    let (cold_tokens, cold_vt) = per(&cold, "cold");
    let (warm_tokens, warm_vt) = per(&warm, "warm");
    let token_ratio = cold_tokens / warm_tokens.max(1e-9);
    let eval_ratio = cold_vt / warm_vt.max(1e-9);
    let fleet_pass = replay_identical
        && hits == expected_hits
        && token_ratio >= token_factor
        && eval_ratio >= eval_factor;
    all_pass &= fleet_pass;
    println!(
        "  hits {hits}/{expected_hits}, replay identical: {replay_identical}, tokens {token_ratio:.1}x (bound {token_factor}x), eval {eval_ratio:.1}x (bound {eval_factor}x) — {}",
        if fleet_pass { "PASS" } else { "FAIL" }
    );
    println!(
        "  wall (stdout only): cold {:.1}s ({:.1} sessions/s), warm {:.1}s ({:.1} sessions/s)\n",
        cold_wall.as_secs_f64(),
        tenants as f64 / cold_wall.as_secs_f64().max(1e-9),
        warm_wall.as_secs_f64(),
        tenants as f64 / warm_wall.as_secs_f64().max(1e-9),
    );

    // The remaining sections run the pipeline directly on this thread; the
    // trace sidecar starts here so `trace_check`'s single-thread accounting
    // holds (the server phases above ran on worker threads).
    let _obs = ObsRun::start("BENCH_fleet");

    // 3. Batched sampling: byte-identical winners at batch size 1 vs 8.
    println!("== batched sampling (batch 1 vs 8) ==");
    let workload = Benchmark::TpchSf1.load();
    let mut batch_runs = Vec::new();
    for batch in [1usize, 8] {
        let mut db = SimDb::new(
            Dbms::Postgres,
            workload.catalog.clone(),
            Hardware::p3_2xlarge(),
            seed,
        );
        let llm = LlmClient::new(SimulatedLlm::new());
        let tuner = lambda_tune::LambdaTune::new(lambda_tune::LambdaTuneOptions {
            num_configs: 8,
            seed,
            ..Default::default()
        })
        .with_sample_batch(batch);
        let result = tuner.tune(&mut db, &workload, &llm).expect("tune");
        let scripts: Vec<String> = result
            .configs
            .iter()
            .map(|c| c.to_script(Dbms::Postgres, &workload.catalog))
            .collect();
        println!(
            "  batch {batch}: {} calls, {} prompt tokens, best {:?} at {:.2}s",
            result.llm_usage.calls,
            result.llm_usage.prompt_tokens,
            result.best_index,
            result.best_time.as_f64()
        );
        batch_runs.push((batch, scripts, result));
    }
    let (_, scripts_1, run_1) = &batch_runs[0];
    let (_, scripts_8, run_8) = &batch_runs[1];
    let batch_identical = scripts_1 == scripts_8
        && run_1.best_index == run_8.best_index
        && run_1.best_time == run_8.best_time
        && run_1.trajectory == run_8.trajectory;
    let batch_token_fraction =
        run_8.llm_usage.prompt_tokens as f64 / run_1.llm_usage.prompt_tokens.max(1) as f64;
    let batch_pass = batch_identical && batch_token_fraction < 1.0;
    all_pass &= batch_pass;
    println!(
        "  identical: {batch_identical}, prompt tokens {batch_token_fraction:.2}x — {}\n",
        if batch_pass { "PASS" } else { "FAIL" }
    );

    // 4. Warm-start transfer on a drifted workload.
    println!(
        "== warm-start transfer (quality ≤ {QUALITY_BOUND}, tokens ≤ {TRANSFER_TOKEN_BOUND}) =="
    );
    let cache = FleetCache::new(16);
    let mut db = SimDb::new(
        Dbms::Postgres,
        workload.catalog.clone(),
        Hardware::p3_2xlarge(),
        seed,
    );
    let llm = LlmClient::new(SimulatedLlm::new());
    fleet_tune(
        &cache,
        &mut db,
        &workload,
        &llm,
        lambda_tune::LambdaTune::new(lambda_tune::LambdaTuneOptions {
            seed,
            ..Default::default()
        }),
        "",
        None,
    )
    .expect("seed the cache");
    let drifted = lt_drift::drifted_workload().expect("drifted workload");
    let run_seed = derive_seed(seed, 77);
    let run_opts = lambda_tune::LambdaTuneOptions {
        seed: run_seed,
        ..Default::default()
    };
    let mut db_cold = SimDb::new(
        Dbms::Postgres,
        workload.catalog.clone(),
        Hardware::p3_2xlarge(),
        run_seed,
    );
    let llm_cold = LlmClient::new(SimulatedLlm::new());
    let cold_run = lambda_tune::LambdaTune::new(run_opts)
        .tune(&mut db_cold, &drifted, &llm_cold)
        .expect("cold drifted run");
    let mut db_warm = SimDb::new(
        Dbms::Postgres,
        workload.catalog.clone(),
        Hardware::p3_2xlarge(),
        run_seed,
    );
    let llm_warm = LlmClient::new(SimulatedLlm::new());
    let transferred = fleet_tune(
        &cache,
        &mut db_warm,
        &drifted,
        &llm_warm,
        lambda_tune::LambdaTune::new(run_opts),
        "",
        Some(TransferOptions {
            max_distance: 1.0,
            budget_fraction: 0.5,
        }),
    )
    .expect("transfer run");
    let distance = match transferred.served {
        Served::Transfer(d) => d,
        other => panic!("expected a transfer, got {other:?}"),
    };
    let quality_ratio = transferred.result.best_time.as_f64() / cold_run.best_time.as_f64();
    let transfer_token_fraction = transferred.result.llm_usage.prompt_tokens as f64
        / cold_run.llm_usage.prompt_tokens.max(1) as f64;
    let transfer_pass =
        quality_ratio <= QUALITY_BOUND && transfer_token_fraction <= TRANSFER_TOKEN_BOUND;
    all_pass &= transfer_pass;
    println!(
        "  distance {distance:.3}, quality {quality_ratio:.4}, prompt tokens {transfer_token_fraction:.2}x — {}\n",
        if transfer_pass { "PASS" } else { "FAIL" }
    );

    let file = if smoke {
        "BENCH_fleet.smoke.json"
    } else {
        "BENCH_fleet.json"
    };
    write_results(
        file,
        &json!({
            "bench": "fleet",
            "seed": seed as f64,
            "tenants": tenants as f64,
            "archetypes": k as f64,
            "fleet": json!({
                "cold_tokens": cold.tokens as f64,
                "cold_pipeline_runs": cold.tunes as f64,
                "cold_tune_vt_s": round6(cold.tune_vt),
                "warm_tokens": warm.tokens as f64,
                "warm_pipeline_runs": warm.tunes as f64,
                "warm_tune_vt_s": round6(warm.tune_vt),
                "cache_hits": hits as f64,
                "expected_hits": expected_hits as f64,
                "replay_identical": replay_identical,
                "tokens_per_session_cold": cold_tokens,
                "tokens_per_session_warm": warm_tokens,
                "token_reduction": round6(token_ratio),
                "token_bound": token_factor,
                "eval_vt_per_session_cold": round6(cold_vt),
                "eval_vt_per_session_warm": round6(warm_vt),
                "eval_reduction": round6(eval_ratio),
                "eval_bound": eval_factor,
                "pass": fleet_pass,
            }),
            "batch": json!({
                "num_configs": 8.0,
                "calls_unbatched": run_1.llm_usage.calls as f64,
                "calls_batched": run_8.llm_usage.calls as f64,
                "prompt_tokens_unbatched": run_1.llm_usage.prompt_tokens as f64,
                "prompt_tokens_batched": run_8.llm_usage.prompt_tokens as f64,
                "identical": batch_identical,
                "token_fraction": batch_token_fraction,
                "pass": batch_pass,
            }),
            "transfer": json!({
                "distance": distance,
                "quality_ratio": quality_ratio,
                "quality_bound": QUALITY_BOUND,
                "token_fraction": transfer_token_fraction,
                "token_bound": TRANSFER_TOKEN_BOUND,
                "pass": transfer_pass,
            }),
            "pass": all_pass,
        }),
    );
    println!("written to results/{file}");
    println!("{}", if all_pass { "PASS" } else { "FAIL" });
    if !all_pass {
        std::process::exit(1);
    }
}
