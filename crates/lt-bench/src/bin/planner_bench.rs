//! Planner micro-benchmark: old (naive all-subsets DP) vs new (DPccp)
//! join enumerator, timed per benchmark and bucketed by relation count.
//!
//! Writes `results/BENCH_planner.json` — the repo's committed perf
//! baseline for plan construction. `--smoke` runs one repetition per
//! query and writes to `results/BENCH_planner.smoke.json` instead, so a
//! CI pass never clobbers the committed numbers with noisy timings.
//!
//! For queries beyond the legacy relation limit (n > 13) the old planner
//! never ran DP at all, so alongside the timings the report records the
//! join-cost evidence the re-baselined results rely on: the DPccp plan's
//! estimated cost next to the greedy plan's on every such query.

use lt_bench::{base_seed, write_results};
use lt_common::json;
use lt_dbms::{
    stats::{extract, JoinEdge, QueryPredicates},
    Catalog, Dbms, IndexCatalog, JoinEnumerator, KnobSet, Optimizer, LEGACY_DP_RELATION_LIMIT,
};
use lt_workloads::Benchmark;
use std::time::Instant;

/// Per-query measurement for one enumerator.
struct Sample {
    relations: usize,
    mean_ns: f64,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn time_enumerator(
    opt: &Optimizer,
    queries: &[(String, lt_dbms::stats::QueryPredicates)],
    enumerator: JoinEnumerator,
    reps: usize,
) -> Vec<Sample> {
    queries
        .iter()
        .map(|(_, preds)| {
            let start = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(opt.plan_extracted_with(preds, enumerator));
            }
            Sample {
                relations: preds.tables.len(),
                mean_ns: start.elapsed().as_nanos() as f64 / reps as f64,
            }
        })
        .collect()
}

fn bucket_stats(samples: &[Sample], relations: usize) -> Option<json::Value> {
    let mut us: Vec<f64> = samples
        .iter()
        .filter(|s| s.relations == relations)
        .map(|s| s.mean_ns / 1e3)
        .collect();
    if us.is_empty() {
        return None;
    }
    us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total_s: f64 = us.iter().sum::<f64>() / 1e6;
    Some(json!({
        "plans_per_sec": us.len() as f64 / total_s,
        "p50_us": percentile(&us, 0.50),
        "p95_us": percentile(&us, 0.95),
    }))
}

/// Builds an n-table catalog and a join graph of the given shape over it
/// (chain: t0–t1–…; star: t0 at the hub; clique: every pair joined).
fn synthetic_graph(shape: &str, n: usize) -> (Catalog, QueryPredicates) {
    let mut c = Catalog::new();
    for i in 0..n {
        let rows = 10_000 + 90_000 * i as u64;
        let name = format!("t{i}");
        let mut b = c.add_table(&name, rows).primary_key("id", 8);
        for j in 0..n {
            if j != i {
                let fk_name = format!("fk{j}");
                b = b.foreign_key(&fk_name, 8, (rows as f64 / 10.0).max(1.0));
            }
        }
        b.finish();
    }
    let pk = |c: &Catalog, i: usize| c.resolve_column(Some(&format!("t{i}")), "id").unwrap();
    let fk = |c: &Catalog, i: usize, j: usize| {
        c.resolve_column(Some(&format!("t{i}")), &format!("fk{j}"))
            .unwrap()
    };
    let mut joins = Vec::new();
    match shape {
        "chain" => {
            for i in 0..n - 1 {
                joins.push(JoinEdge {
                    left: fk(&c, i, i + 1),
                    right: pk(&c, i + 1),
                });
            }
        }
        "star" => {
            for i in 1..n {
                joins.push(JoinEdge {
                    left: fk(&c, 0, i),
                    right: pk(&c, i),
                });
            }
        }
        "clique" => {
            for i in 0..n {
                for j in i + 1..n {
                    joins.push(JoinEdge {
                        left: fk(&c, i, j),
                        right: pk(&c, j),
                    });
                }
            }
        }
        other => panic!("unknown shape {other}"),
    }
    let tables = (0..n)
        .map(|i| c.table_by_name(&format!("t{i}")).unwrap())
        .collect();
    let preds = QueryPredicates {
        tables,
        joins,
        ..Default::default()
    };
    (c, preds)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 1 } else { 5 };
    let seed = base_seed();
    println!("Planner micro-benchmark: naive all-subsets DP (old) vs DPccp (new)");
    println!("(per-query plan construction, {reps} rep(s), seed {seed})\n");

    let mut benches = Vec::new();
    for bench in Benchmark::all() {
        let w = bench.load();
        let knobs = KnobSet::defaults(Dbms::Postgres);
        // Scenario-1-style physical design: single-column index on every
        // primary/foreign key, so index-nested-loop paths participate.
        let mut idx = IndexCatalog::new();
        for col in w.catalog.columns() {
            if col.primary_key || col.foreign_key {
                idx.add(col.table, vec![col.id], None);
            }
        }
        let opt = Optimizer::new(&w.catalog, &knobs, &idx, seed);
        let queries: Vec<(String, lt_dbms::stats::QueryPredicates)> = w
            .queries
            .iter()
            .map(|q| (q.label.clone(), extract(&q.parsed, &w.catalog)))
            .filter(|(_, p)| !p.tables.is_empty())
            .collect();

        // Old = the pre-DPccp planner: naive DP to 13 relations, greedy
        // beyond. New = DPccp to the current default limit, greedy beyond.
        let old = time_enumerator(&opt, &queries, JoinEnumerator::Legacy, reps);
        let new = time_enumerator(&opt, &queries, JoinEnumerator::Auto, reps);

        println!("== {} ({} queries) ==", bench.name(), queries.len());
        println!("  rels | queries | old p50/p95 [µs] | new p50/p95 [µs] | speedup(p50)");
        let mut rel_counts: Vec<usize> = queries.iter().map(|(_, p)| p.tables.len()).collect();
        rel_counts.sort_unstable();
        rel_counts.dedup();
        let mut buckets = Vec::new();
        for &n in &rel_counts {
            let (Some(o), Some(nw)) = (bucket_stats(&old, n), bucket_stats(&new, n)) else {
                continue;
            };
            let count = queries.iter().filter(|(_, p)| p.tables.len() == n).count();
            let (op50, op95) = (
                o.get("p50_us").unwrap().as_f64().unwrap(),
                o.get("p95_us").unwrap().as_f64().unwrap(),
            );
            let (np50, np95) = (
                nw.get("p50_us").unwrap().as_f64().unwrap(),
                nw.get("p95_us").unwrap().as_f64().unwrap(),
            );
            println!(
                "  {n:>4} | {count:>7} | {:>8.1}/{:>8.1} | {:>8.1}/{:>8.1} | {:>6.2}x",
                op50,
                op95,
                np50,
                np95,
                if np50 > 0.0 { op50 / np50 } else { 0.0 },
            );
            buckets.push(json!({
                "relations": n,
                "queries": count,
                "old": o,
                "new": nw,
            }));
        }

        // Join-cost evidence for the raised limit: every query the old
        // planner handed to greedy but the new default plans with full DP.
        let mut large = Vec::new();
        for (label, preds) in &queries {
            let n = preds.tables.len();
            if n <= LEGACY_DP_RELATION_LIMIT {
                continue;
            }
            let dp = opt.plan_extracted_with(preds, JoinEnumerator::Auto);
            let greedy = opt.plan_extracted_with(preds, JoinEnumerator::Greedy);
            let dp_cost = dp.root.est_cost;
            let greedy_cost = greedy.root.est_cost;
            if dp_cost > greedy_cost {
                eprintln!(
                    "warning: DP plan costlier than greedy on {label} ({dp_cost} > {greedy_cost})"
                );
            }
            println!(
                "  {label}: n={n} dp_cost={dp_cost:.0} greedy_cost={greedy_cost:.0} ({:.3}x)",
                dp_cost / greedy_cost
            );
            large.push(json!({
                "query": label.as_str(),
                "relations": n,
                "dp_cost": dp_cost,
                "greedy_cost": greedy_cost,
            }));
        }
        println!();

        benches.push(json!({
            "benchmark": bench.name(),
            "queries": queries.len(),
            "buckets": buckets,
            "beyond_legacy_limit": large,
        }));
    }

    // No benchmark query in this repro exceeds the legacy limit (our JOB
    // uses the single-alias family variants, capping at 12 relations), so
    // synthetic chain/star/clique graphs at n = 13…17 demonstrate what the
    // raised default buys: full DP where the old planner fell back to
    // greedy, at microsecond-scale planning times.
    println!("== synthetic join graphs (n beyond the benchmarks) ==");
    println!("  shape  |  n | old [µs] | new [µs] | dp_cost/greedy_cost");
    let mut synthetic = Vec::new();
    for &n in &[13usize, 15, 17] {
        for shape in ["chain", "star", "clique"] {
            let (catalog, preds) = synthetic_graph(shape, n);
            let idx = IndexCatalog::new();
            let knobs = KnobSet::defaults(Dbms::Postgres);
            let opt = Optimizer::new(&catalog, &knobs, &idx, seed);
            let qs = vec![(format!("{shape}-{n}"), preds)];
            let old = time_enumerator(&opt, &qs, JoinEnumerator::Legacy, reps);
            let new = time_enumerator(&opt, &qs, JoinEnumerator::Auto, reps);
            let dp = opt.plan_extracted_with(&qs[0].1, JoinEnumerator::Auto);
            let greedy = opt.plan_extracted_with(&qs[0].1, JoinEnumerator::Greedy);
            let ratio = dp.root.est_cost / greedy.root.est_cost;
            println!(
                "  {shape:<6} | {n:>2} | {:>8.1} | {:>8.1} | {ratio:.3}",
                old[0].mean_ns / 1e3,
                new[0].mean_ns / 1e3,
            );
            synthetic.push(json!({
                "shape": shape,
                "relations": n,
                "old_us": old[0].mean_ns / 1e3,
                "new_us": new[0].mean_ns / 1e3,
                "dp_cost": dp.root.est_cost,
                "greedy_cost": greedy.root.est_cost,
            }));
        }
    }
    println!();

    let file = if smoke {
        "BENCH_planner.smoke.json"
    } else {
        "BENCH_planner.json"
    };
    write_results(
        file,
        &json!({
            "bench": "planner",
            "reps": reps as f64,
            "seed": seed as f64,
            "legacy_dp_limit": LEGACY_DP_RELATION_LIMIT as f64,
            "benchmarks": benches,
            "synthetic": synthetic,
        }),
    );
    println!("written to results/{file}");
}
