//! Storage-engine benchmark + cost-model calibration (`BENCH_store`).
//!
//! Exercises the real `lt-store` backend on scaled-down replicas of the
//! paper's workloads and closes the loop back to the simulator:
//!
//! 1. **Knob sweeps** — `shared_buffers` and `work_mem` each swept on a
//!    fresh [`StoreDb`]; the buffer-pool hit rate must rise with the pool
//!    and the spill count must fall with the sort/hash budget, proving the
//!    engine genuinely responds to the knobs the tuner turns.
//! 2. **Calibration** — fits the simulator's [`CostConstants`] (I/O, CPU
//!    and spill multipliers, coordinate descent in log space) so simulated
//!    query times track the engine's deterministic proxy times, reporting
//!    the RMS `log10(sim/store)` residual before and after the fit.
//! 3. **Tuning** — runs the full λ-Tune pipeline against the engine and
//!    replays the winning configuration on a fresh instance, checking it
//!    beats the default configuration on measured (proxy) time.
//!
//! Everything numeric in `results/BENCH_store.json` derives from
//! deterministic counters; wall-clock diagnostics are confined to fields
//! whose names start with `wall` so the determinism gate can filter them
//! (`grep -v '"wall'`).

use lambda_tune::{LambdaTune, LambdaTuneOptions};
use lt_bench::{base_seed, parallel_map, write_results, ObsRun};
use lt_common::{json, obs, Secs};
use lt_dbms::{Configuration, CostConstants, Dbms, Hardware, SimDb, TuningTarget};
use lt_llm::{LlmClient, SimulatedLlm};
use lt_store::StoreDb;
use lt_workloads::{Benchmark, Workload};
use std::time::Instant;

/// Which knob a sweep cell varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SweepKnob {
    SharedBuffers,
    WorkMem,
}

/// One measured sweep point.
struct SweepPoint {
    value: &'static str,
    hit_rate: f64,
    spills: u64,
    spill_pages: u64,
    proxy_seconds: f64,
    wall_ms: f64,
}

fn hardware() -> Hardware {
    Hardware::p3_2xlarge()
}

fn fresh_store(w: &Workload, seed: u64) -> StoreDb {
    StoreDb::new(Dbms::Postgres, w.catalog.clone(), hardware(), seed)
}

/// Runs every workload query to completion, returning the total proxy time.
fn run_workload(db: &mut StoreDb, w: &Workload) -> f64 {
    w.queries
        .iter()
        .map(|q| db.execute(&q.parsed, Secs::INFINITY).time.as_f64())
        .sum()
}

/// Measures one sweep cell on a fresh engine: applies the knob script,
/// warms the pool with one workload pass, then measures a steady-state
/// pass. Hit rate and spill counters come from the measured pass only.
fn sweep_cell(benchmark: Benchmark, knob: SweepKnob, value: &'static str, seed: u64) -> SweepPoint {
    let _span = obs::span("sweep");
    let wall = Instant::now();
    let w = benchmark.load();
    let mut db = fresh_store(&w, seed);
    let script = match knob {
        SweepKnob::SharedBuffers => format!("ALTER SYSTEM SET shared_buffers = '{value}';"),
        // Hold the pool fixed while work_mem varies so spill deltas are
        // attributable to the sort/hash budget alone.
        SweepKnob::WorkMem => format!(
            "ALTER SYSTEM SET shared_buffers = '1GB';\nALTER SYSTEM SET work_mem = '{value}';"
        ),
    };
    let config = Configuration::parse(&script, Dbms::Postgres, &w.catalog);
    db.apply_knobs(&config);
    run_workload(&mut db, &w); // warm-up pass
    let bp0 = db.pool_stats();
    let ex0 = db.exec_totals();
    let proxy_seconds = run_workload(&mut db, &w);
    let bp1 = db.pool_stats();
    let ex1 = db.exec_totals();
    let hits = bp1.hits - bp0.hits;
    let misses = bp1.misses - bp0.misses;
    SweepPoint {
        value,
        hit_rate: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
        spills: ex1.spills - ex0.spills,
        spill_pages: ex1.spill_pages - ex0.spill_pages,
        proxy_seconds,
        wall_ms: wall.elapsed().as_secs_f64() * 1e3,
    }
}

/// RMS of `log10(sim/store)` over per-query time pairs.
fn rms_log10(sim: &[f64], store: &[f64]) -> f64 {
    let n = sim.len().max(1) as f64;
    let sum: f64 = sim
        .iter()
        .zip(store)
        .map(|(s, t)| (s.max(1e-12) / t.max(1e-12)).log10().powi(2))
        .sum();
    (sum / n).sqrt()
}

/// Per-query simulated times under scaled cost constants, on a fresh
/// simulator so calibration candidates never contaminate each other.
fn sim_times(w: &Workload, seed: u64, mults: [f64; 3]) -> Vec<f64> {
    let mut db = SimDb::new(Dbms::Postgres, w.catalog.clone(), hardware(), seed);
    db.set_cost_constants(CostConstants::scaled(mults[0], mults[1], mults[2]));
    w.queries
        .iter()
        .map(|q| db.execute(&q.parsed, Secs::INFINITY).time.as_f64())
        .collect()
}

struct Calibration {
    mults: [f64; 3],
    rms_before: f64,
    rms_after: f64,
    evals: usize,
}

/// Fits (io, cpu, spill) multipliers by coordinate descent over relative
/// factors in log space — derivative-free, deterministic, and monotone in
/// the objective (a candidate is only accepted when it strictly improves).
fn calibrate(benchmark: Benchmark, seed: u64, smoke: bool) -> Calibration {
    let _span = obs::span("calibrate");
    let w = benchmark.load();
    let store_times: Vec<f64> = {
        let mut db = fresh_store(&w, seed);
        w.queries
            .iter()
            .map(|q| db.execute(&q.parsed, Secs::INFINITY).time.as_f64())
            .collect()
    };
    let mut evals = 0usize;
    let mut eval = |m: [f64; 3]| {
        evals += 1;
        rms_log10(&sim_times(&w, seed, m), &store_times)
    };
    let mut mults = [1.0f64; 3];
    let rms_before = eval(mults);
    let mut best = rms_before;
    let factors = [0.25, 0.5, 0.7937, 1.26, 2.0, 4.0];
    let passes = if smoke { 2 } else { 3 };
    for _ in 0..passes {
        for dim in 0..3 {
            for &f in &factors {
                let mut candidate = mults;
                candidate[dim] = (candidate[dim] * f).clamp(0.05, 20.0);
                let r = eval(candidate);
                if r + 1e-12 < best {
                    best = r;
                    mults = candidate;
                }
            }
        }
    }
    Calibration {
        mults,
        rms_before,
        rms_after: best,
        evals,
    }
}

struct TuningOutcome {
    default_proxy_seconds: f64,
    tuned_proxy_seconds: f64,
    winner_knobs: usize,
    winner_indexes: usize,
    wall_ms: f64,
}

/// Full λ-Tune run against the storage engine, then an apples-to-apples
/// replay: the winning configuration on a fresh engine vs. the default on
/// a fresh engine, both cold, both measured in proxy seconds.
fn tuning_phase(benchmark: Benchmark, seed: u64, smoke: bool) -> TuningOutcome {
    let _span = obs::span("tune");
    let wall = Instant::now();
    let w = benchmark.load();
    let mut default_db = fresh_store(&w, seed);
    let default_proxy_seconds = run_workload(&mut default_db, &w);
    drop(default_db);

    let llm = LlmClient::new(SimulatedLlm::new());
    let options = LambdaTuneOptions {
        seed,
        num_configs: if smoke { 2 } else { 5 },
        ..Default::default()
    };
    let tuner = LambdaTune::new(options);
    let mut tune_db = fresh_store(&w, seed);
    let result = tuner
        .tune(&mut tune_db, &w, &llm)
        .expect("tuning run must succeed");
    drop(tune_db);
    let best = result
        .best_config
        .expect("selector must produce a winning configuration");

    let mut tuned_db = fresh_store(&w, seed);
    tuned_db.apply_knobs(&best);
    let specs: Vec<_> = best.index_specs().into_iter().cloned().collect();
    for spec in &specs {
        tuned_db.create_index(spec);
    }
    let tuned_proxy_seconds = run_workload(&mut tuned_db, &w);
    TuningOutcome {
        default_proxy_seconds,
        tuned_proxy_seconds,
        winner_knobs: best.knob_changes().count(),
        winner_indexes: specs.len(),
        wall_ms: wall.elapsed().as_secs_f64() * 1e3,
    }
}

fn sweep_json(points: &[&SweepPoint], knob: SweepKnob) -> json::Value {
    json::Value::Array(
        points
            .iter()
            .map(|p| match knob {
                SweepKnob::SharedBuffers => json!({
                    "value": p.value,
                    "hit_rate": p.hit_rate,
                    "proxy_seconds": p.proxy_seconds,
                    "wall_ms": p.wall_ms,
                }),
                SweepKnob::WorkMem => json!({
                    "value": p.value,
                    "spills": p.spills as i64,
                    "spill_pages": p.spill_pages as i64,
                    "proxy_seconds": p.proxy_seconds,
                    "wall_ms": p.wall_ms,
                }),
            })
            .collect(),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let _obs = ObsRun::start("BENCH_store");
    let seed = base_seed();
    let benchmarks: Vec<Benchmark> = if smoke {
        vec![Benchmark::TpchSf1]
    } else {
        vec![Benchmark::TpchSf1, Benchmark::Job]
    };
    let sb_points: &[&'static str] = if smoke {
        &["128MB", "1GB", "15GB"]
    } else {
        &["128MB", "512MB", "2GB", "15GB"]
    };
    let wm_points: &[&'static str] = if smoke {
        &["4MB", "64MB", "4GB"]
    } else {
        &["4MB", "32MB", "256MB", "4GB"]
    };
    println!(
        "BENCH_store: lt-store knob sweeps + cost calibration ({})",
        if smoke { "smoke" } else { "full" }
    );

    // Every sweep cell builds its own engine from the same seed, so the
    // matrix is embarrassingly parallel and thread-count independent.
    let mut cells: Vec<(usize, SweepKnob, &'static str)> = Vec::new();
    for (bi, _) in benchmarks.iter().enumerate() {
        for &v in sb_points {
            cells.push((bi, SweepKnob::SharedBuffers, v));
        }
        for &v in wm_points {
            cells.push((bi, SweepKnob::WorkMem, v));
        }
    }
    let sweep_results = parallel_map(cells, |(bi, knob, value)| {
        (bi, knob, sweep_cell(benchmarks[bi], knob, value, seed))
    });

    // Calibration + tuning per benchmark (independent, so also parallel).
    let fits = parallel_map(benchmarks.clone(), |b| {
        (calibrate(b, seed, smoke), tuning_phase(b, seed, smoke))
    });

    let mut bench_docs = Vec::new();
    for (bi, benchmark) in benchmarks.iter().enumerate() {
        let sb: Vec<&SweepPoint> = sweep_results
            .iter()
            .filter(|(i, k, _)| *i == bi && *k == SweepKnob::SharedBuffers)
            .map(|(_, _, p)| p)
            .collect();
        let wm: Vec<&SweepPoint> = sweep_results
            .iter()
            .filter(|(i, k, _)| *i == bi && *k == SweepKnob::WorkMem)
            .map(|(_, _, p)| p)
            .collect();
        let hit_rate_increases = sb.windows(2).all(|w| w[1].hit_rate >= w[0].hit_rate - 1e-9)
            && sb.last().unwrap().hit_rate > sb.first().unwrap().hit_rate;
        // A workload whose plans never build large hashes or sorts (JOB:
        // tiny filtered dimension build sides, single-group MIN()
        // aggregates) legitimately spills zero pages at every budget; the
        // strict-decrease requirement only applies when the tightest
        // budget forces spills at all.
        let spills_at_min = wm.first().unwrap().spills;
        let spills_decrease = wm.windows(2).all(|w| w[1].spills <= w[0].spills)
            && (spills_at_min == 0 || wm.last().unwrap().spills < spills_at_min);
        assert!(
            hit_rate_increases,
            "{}: hit rate must rise with shared_buffers: {:?}",
            benchmark.name(),
            sb.iter().map(|p| (p.value, p.hit_rate)).collect::<Vec<_>>()
        );
        assert!(
            spills_decrease,
            "{}: spills must fall with work_mem: {:?}",
            benchmark.name(),
            wm.iter().map(|p| (p.value, p.spills)).collect::<Vec<_>>()
        );
        let (calib, tuning) = &fits[bi];
        let improved = tuning.tuned_proxy_seconds < tuning.default_proxy_seconds;
        let improvement_pct = 100.0 * (tuning.default_proxy_seconds - tuning.tuned_proxy_seconds)
            / tuning.default_proxy_seconds;
        assert!(
            improved,
            "{}: tuned configuration must beat the default ({:.3}s vs {:.3}s)",
            benchmark.name(),
            tuning.tuned_proxy_seconds,
            tuning.default_proxy_seconds
        );

        println!("\n== {} ==", benchmark.name());
        println!("  shared_buffers sweep (steady-state hit rate):");
        for p in &sb {
            println!(
                "    {:>6}  hit_rate {:.4}  proxy {:.3}s",
                p.value, p.hit_rate, p.proxy_seconds
            );
        }
        println!("  work_mem sweep (spilled operators per pass):");
        for p in &wm {
            println!(
                "    {:>6}  spills {:>3}  spill_pages {:>6}  proxy {:.3}s",
                p.value, p.spills, p.spill_pages, p.proxy_seconds
            );
        }
        println!(
            "  calibration: io x{:.3} cpu x{:.3} spill x{:.3}  rms log10 {:.3} -> {:.3} ({} evals)",
            calib.mults[0],
            calib.mults[1],
            calib.mults[2],
            calib.rms_before,
            calib.rms_after,
            calib.evals
        );
        println!(
            "  tuning: default {:.3}s -> tuned {:.3}s ({:+.1}% | {} knobs, {} indexes)",
            tuning.default_proxy_seconds,
            tuning.tuned_proxy_seconds,
            improvement_pct,
            tuning.winner_knobs,
            tuning.winner_indexes
        );

        bench_docs.push(json!({
            "name": benchmark.name(),
            "queries": benchmark.load().len() as i64,
            "shared_buffers_sweep": sweep_json(&sb, SweepKnob::SharedBuffers),
            "hit_rate_increases": hit_rate_increases,
            "work_mem_sweep": sweep_json(&wm, SweepKnob::WorkMem),
            "spills_at_min_work_mem": spills_at_min as i64,
            "spills_decrease": spills_decrease,
            "calibration": json!({
                "io_mult": calib.mults[0],
                "cpu_mult": calib.mults[1],
                "spill_mult": calib.mults[2],
                "rms_log10_before": calib.rms_before,
                "rms_log10_after": calib.rms_after,
                "evals": calib.evals as i64,
            }),
            "tuning": json!({
                "default_proxy_seconds": tuning.default_proxy_seconds,
                "tuned_proxy_seconds": tuning.tuned_proxy_seconds,
                "improvement_pct": improvement_pct,
                "improved": improved,
                "winner_knobs": tuning.winner_knobs as i64,
                "winner_indexes": tuning.winner_indexes as i64,
                "wall_ms": tuning.wall_ms,
            }),
        }));
    }

    let doc = json!({
        "benchmark": "BENCH_store",
        "smoke": smoke,
        "seed": seed as i64,
        "backend": "store",
        "benchmarks": json::Value::Array(bench_docs),
    });
    let file = if smoke {
        "BENCH_store.smoke.json"
    } else {
        "BENCH_store.json"
    };
    write_results(file, &doc);
    println!("\nresults written to results/{file}");
}
