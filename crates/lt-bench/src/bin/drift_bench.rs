//! Drift-detection and warm-start re-tuning benchmark.
//!
//! Three sections, each an acceptance bound of the lt-drift subsystem:
//!
//! 1. **False positives** — stationary streams must raise zero alarms.
//! 2. **Detection** — every shifted class (mix, scale, predicate) must be
//!    detected within 500 queries of the shift point, on every trial seed.
//! 3. **Re-tune quality** — the warm-start re-tune must land within 5 % of
//!    the full-budget re-tune's workload time while spending at most half
//!    its LLM-token and evaluation-time budget.
//!
//! Writes `results/BENCH_drift.json` — the committed evidence for the
//! bounds above. `--smoke` shrinks stream lengths and trial counts and
//! writes to `results/BENCH_drift.smoke.json` instead, so a CI pass never
//! clobbers the committed numbers.
//!
//! Determinism: every cell seeds its own simulated database and detector
//! from the base seed, cells run on [`parallel_map`] and are emitted in
//! input order, and no wall-clock value enters stdout or the JSON — the
//! CI gate diffs this artifact across `LT_BENCH_THREADS=1` and `=4`.

use lt_bench::{base_seed, parallel_map, trials, write_results, ObsRun};
use lt_common::{derive_seed, json};
use lt_drift::{compare_retune, run_stream, DriftConfig, StreamRunReport};
use lt_synth::{PhasedStreamSpec, ShiftClass};

/// Detection-latency acceptance bound (queries after the shift point).
const DETECT_BOUND: u64 = 500;
/// Warm-start quality bound: `warm_time / full_time` must stay below this.
const QUALITY_BOUND: f64 = 1.05;
/// Warm-start budget bound on tokens and evaluation time.
const BUDGET_BOUND: f64 = 0.5;

fn events_json(report: &StreamRunReport) -> json::Value {
    json::Value::Array(report.events.iter().map(|e| e.to_json()).collect())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed = base_seed();
    let n_trials = if smoke { 1 } else { trials() };
    let stationary_len = if smoke { 1_500 } else { 10_000 };
    let (shift_at, shifted_len) = (600, 1_400);
    let config = DriftConfig::default();
    let _obs = ObsRun::start("BENCH_drift");
    println!("Drift benchmark: detectors + warm-start re-tuning");
    println!("(seed {seed}, {n_trials} trial(s), stationary len {stationary_len}, shift at {shift_at}/{shifted_len})\n");

    let mut all_pass = true;

    // 1. False positives: stationary streams, every alarm is false.
    let stationary: Vec<StreamRunReport> = parallel_map(
        (0..n_trials)
            .map(|t| PhasedStreamSpec {
                shift: ShiftClass::Stationary,
                shift_at: 0,
                len: stationary_len,
                seed: derive_seed(seed, t as u64),
            })
            .collect(),
        |spec| run_stream(spec, &config),
    );
    let false_alarms: usize = stationary.iter().map(|r| r.false_alarms).sum();
    let fp_pass = false_alarms == 0;
    all_pass &= fp_pass;
    println!("== false positives ==");
    for r in &stationary {
        println!(
            "  stationary seed {:>20}: {} alarms over {} queries",
            r.spec.seed, r.false_alarms, r.spec.len
        );
    }
    println!(
        "  total: {false_alarms} false alarms over {} streams — {}\n",
        stationary.len(),
        if fp_pass { "PASS" } else { "FAIL" }
    );

    // 2. Detection latency per shift class.
    let cells: Vec<(ShiftClass, u64)> = ShiftClass::shifted()
        .into_iter()
        .flat_map(|class| (0..n_trials).map(move |t| (class, t as u64)))
        .collect();
    let reports = parallel_map(cells.clone(), |(class, t)| {
        run_stream(
            PhasedStreamSpec {
                shift: class,
                shift_at,
                len: shifted_len,
                seed: derive_seed(seed, 100 + t),
            },
            &config,
        )
    });
    println!("== detection latency (bound: {DETECT_BOUND} queries) ==");
    let mut detection = Vec::new();
    for class in ShiftClass::shifted() {
        let class_reports: Vec<&StreamRunReport> = cells
            .iter()
            .zip(&reports)
            .filter(|((c, _), _)| *c == class)
            .map(|(_, r)| r)
            .collect();
        let latencies: Vec<Option<u64>> =
            class_reports.iter().map(|r| r.detection_latency).collect();
        let pre_shift: usize = class_reports.iter().map(|r| r.false_alarms).sum();
        let detected = latencies.iter().filter(|l| l.is_some()).count();
        let max_latency = latencies.iter().filter_map(|l| *l).max();
        let class_pass = pre_shift == 0
            && detected == class_reports.len()
            && max_latency.is_some_and(|m| m <= DETECT_BOUND);
        all_pass &= class_pass;
        let shown: Vec<String> = latencies
            .iter()
            .map(|l| l.map_or("miss".to_string(), |v| v.to_string()))
            .collect();
        println!(
            "  {:<15} detected {detected}/{} latencies [{}] pre-shift alarms {pre_shift} — {}",
            class.name(),
            class_reports.len(),
            shown.join(", "),
            if class_pass { "PASS" } else { "FAIL" }
        );
        detection.push(json!({
            "class": class.name(),
            "runs": class_reports.len() as f64,
            "detected": detected as f64,
            "pre_shift_alarms": pre_shift as f64,
            "latencies": json::Value::Array(
                latencies
                    .iter()
                    .map(|l| l.map_or(json::Value::Null, |v| json::Value::Int(v as i64)))
                    .collect(),
            ),
            "bound": DETECT_BOUND as f64,
            "events": json::Value::Array(class_reports.iter().map(|r| events_json(r)).collect()),
            "pass": class_pass,
        }));
    }
    println!();

    // 3. Warm-start re-tune quality vs the full-budget re-tune.
    let comparisons = parallel_map((0..n_trials as u64).collect::<Vec<_>>(), |t| {
        (seed + t, compare_retune(seed + t))
    });
    println!("== warm-start re-tune (quality ≤ {QUALITY_BOUND}, budget ≤ {BUDGET_BOUND}) ==");
    let mut per_seed = Vec::new();
    let mut ratios = Vec::new();
    let mut token_fractions = Vec::new();
    let mut time_fractions = Vec::new();
    for (s, outcome) in &comparisons {
        match outcome {
            Ok(c) => {
                let token_fraction = c.warm_tokens as f64 / c.full_tokens.max(1) as f64;
                let time_fraction = c.warm_tuning_time / c.full_tuning_time.max(1e-9);
                let seed_pass = c.quality_ratio <= QUALITY_BOUND
                    && token_fraction <= BUDGET_BOUND
                    && time_fraction <= BUDGET_BOUND;
                all_pass &= seed_pass;
                println!(
                    "  seed {s}: stale {:.1}s full {:.1}s warm {:.1}s quality {:.4} tokens {:.2}x time {:.2}x — {}",
                    c.stale_time,
                    c.full_time,
                    c.warm_time,
                    c.quality_ratio,
                    token_fraction,
                    time_fraction,
                    if seed_pass { "PASS" } else { "FAIL" }
                );
                ratios.push(c.quality_ratio);
                token_fractions.push(token_fraction);
                time_fractions.push(time_fraction);
                per_seed.push(json!({
                    "seed": *s as f64,
                    "stale_time_s": c.stale_time,
                    "full_time_s": c.full_time,
                    "warm_time_s": c.warm_time,
                    "quality_ratio": c.quality_ratio,
                    "token_fraction": token_fraction,
                    "time_fraction": time_fraction,
                    "pass": seed_pass,
                }));
            }
            Err(e) => {
                all_pass = false;
                println!("  seed {s}: FAIL ({e})");
                per_seed.push(json!({ "seed": *s as f64, "error": format!("{e}") }));
            }
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    println!(
        "  mean: quality {:.4} tokens {:.2}x time {:.2}x\n",
        mean(&ratios),
        mean(&token_fractions),
        mean(&time_fractions)
    );

    let file = if smoke {
        "BENCH_drift.smoke.json"
    } else {
        "BENCH_drift.json"
    };
    write_results(
        file,
        &json!({
            "bench": "drift",
            "seed": seed as f64,
            "trials": n_trials as f64,
            "stationary_len": stationary_len as f64,
            "shift_at": shift_at as f64,
            "shifted_len": shifted_len as f64,
            "false_positives": json!({
                "streams": stationary.len() as f64,
                "queries_per_stream": stationary_len as f64,
                "total_false_alarms": false_alarms as f64,
                "pass": fp_pass,
            }),
            "detection": json::Value::Array(detection),
            "retune": json!({
                "per_seed": json::Value::Array(per_seed),
                "mean_quality_ratio": mean(&ratios),
                "mean_token_fraction": mean(&token_fractions),
                "mean_time_fraction": mean(&time_fractions),
                "quality_bound": QUALITY_BOUND,
                "budget_bound": BUDGET_BOUND,
            }),
            "pass": all_pass,
        }),
    );
    println!("written to results/{file}");
    println!("{}", if all_pass { "PASS" } else { "FAIL" });
    if !all_pass {
        std::process::exit(1);
    }
}
