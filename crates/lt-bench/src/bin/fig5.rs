//! Figure 5: per-query execution times, λ-Tune's configuration vs the
//! default configuration (TPC-H 1GB, PostgreSQL).
//!
//! Usage: `cargo run --release -p lt-bench --bin fig5`

use lambda_tune::{LambdaTune, LambdaTuneOptions};
use lt_bench::{base_seed, make_db, trials, Scenario};
use lt_common::json;
use lt_common::Secs;
use lt_dbms::Dbms;
use lt_llm::{LlmClient, SimulatedLlm};
use lt_workloads::Benchmark;

fn main() {
    let _obs = lt_bench::ObsRun::start("fig5");
    let seed = base_seed();
    let scenario = Scenario {
        benchmark: Benchmark::TpchSf1,
        dbms: Dbms::Postgres,
        initial_indexes: false,
    };

    // Tune.
    let (mut db, workload) = make_db(scenario, seed);
    let llm = LlmClient::new(SimulatedLlm::new());
    let options = LambdaTuneOptions {
        seed,
        ..Default::default()
    };
    let result = LambdaTune::new(options)
        .tune(&mut db, &workload, &llm)
        .expect("tuning succeeds");
    let best = result.best_config.expect("a configuration wins");

    // Measure per-query times under default and tuned configurations on
    // fresh instances.
    let (mut db_default, _) = make_db(scenario, seed);
    let (mut db_tuned, _) = make_db(scenario, seed);
    db_tuned.apply_knobs(&best);
    for spec in best.index_specs() {
        db_tuned.create_index(spec);
    }

    println!("Figure 5: Query Execution Times (TPC-H 1GB, Postgres)");
    println!("λ-Tune vs Default Configuration\n");
    println!(
        "{:<6} {:>12} {:>12} {:>9}",
        "query", "default(s)", "lambda(s)", "speedup"
    );
    let mut rows = Vec::new();
    let mut regressions = 0;
    let mut total_default = 0.0;
    let mut total_tuned = 0.0;
    // Execution times carry ±6% simulated noise, so each query is measured
    // as the mean over `trials()` runs; only the first run per (query,
    // configuration) plans — the repeats are plan-cache hits.
    let n = trials().max(1);
    let measure = |db: &mut lt_dbms::SimDb, wq: &lt_workloads::WorkloadQuery| -> f64 {
        (0..n)
            .map(|_| db.execute(&wq.parsed, Secs::INFINITY).time.as_f64())
            .sum::<f64>()
            / n as f64
    };
    for wq in &workload.queries {
        let d = measure(&mut db_default, wq);
        let t = measure(&mut db_tuned, wq);
        total_default += d;
        total_tuned += t;
        // The paper reports gains or ~equal performance per query; flag
        // anything worse than 10% slower as a regression.
        if t > d * 1.1 {
            regressions += 1;
        }
        println!("{:<6} {:>12.3} {:>12.3} {:>8.1}x", wq.label, d, t, d / t);
        rows.push(json!({ "query": &wq.label, "default_s": d, "lambda_s": t }));
    }
    println!(
        "\ntotal: default {total_default:.1}s, λ-Tune {total_tuned:.1}s ({:.1}x), \
         per-query regressions >10%: {regressions}",
        total_default / total_tuned
    );
    println!("Paper shape: gains or equal performance for every single query.");

    // Each query is planned once per measured configuration; all repeat
    // trials are answered from the SimDb plan cache. The tuning run mostly
    // misses by design: the evaluator creates indexes lazily, so the index
    // set (and hence the plan key) genuinely differs between rounds.
    let tuning = db.cache_stats();
    let m_default = db_default.cache_stats();
    let m_tuned = db_tuned.cache_stats();
    let m_hits = m_default.plan_hits + m_tuned.plan_hits;
    let m_misses = m_default.plan_misses + m_tuned.plan_misses;
    let m_rate = m_hits as f64 / (m_hits + m_misses).max(1) as f64;
    println!(
        "\nplan cache (measurement, {n} trials/query): {m_hits} hits / {m_misses} misses \
         ({:.1}% hit rate)",
        m_rate * 100.0
    );
    println!(
        "plan cache (tuning run): {} hits / {} misses, {} predicate extractions memoized",
        tuning.plan_hits, tuning.plan_misses, tuning.extract_hits,
    );

    lt_bench::write_results(
        "fig5.json",
        &json!({
            "figure": "5",
            "rows": rows,
            "total_default_s": total_default,
            "total_lambda_s": total_tuned,
            "plan_cache": json!({
                "measurement_hits": m_hits,
                "measurement_misses": m_misses,
                "measurement_hit_rate": m_rate,
                "tuning_hits": tuning.plan_hits,
                "tuning_misses": tuning.plan_misses,
                "extract_hits": tuning.extract_hits,
            }),
        }),
    );
}
