//! Figure 5: per-query execution times, λ-Tune's configuration vs the
//! default configuration (TPC-H 1GB, PostgreSQL).
//!
//! Usage: `cargo run --release -p lt-bench --bin fig5`

use lambda_tune::{LambdaTune, LambdaTuneOptions};
use lt_bench::{base_seed, make_db, Scenario};
use lt_common::Secs;
use lt_dbms::Dbms;
use lt_llm::{LlmClient, SimulatedLlm};
use lt_workloads::Benchmark;
use serde_json::json;

fn main() {
    let seed = base_seed();
    let scenario = Scenario {
        benchmark: Benchmark::TpchSf1,
        dbms: Dbms::Postgres,
        initial_indexes: false,
    };

    // Tune.
    let (mut db, workload) = make_db(scenario, seed);
    let llm = LlmClient::new(SimulatedLlm::new());
    let options = LambdaTuneOptions { seed, ..Default::default() };
    let result = LambdaTune::new(options)
        .tune(&mut db, &workload, &llm)
        .expect("tuning succeeds");
    let best = result.best_config.expect("a configuration wins");

    // Measure per-query times under default and tuned configurations on
    // fresh instances.
    let (mut db_default, _) = make_db(scenario, seed);
    let (mut db_tuned, _) = make_db(scenario, seed);
    db_tuned.apply_knobs(&best);
    for spec in best.index_specs() {
        db_tuned.create_index(spec);
    }

    println!("Figure 5: Query Execution Times (TPC-H 1GB, Postgres)");
    println!("λ-Tune vs Default Configuration\n");
    println!("{:<6} {:>12} {:>12} {:>9}", "query", "default(s)", "lambda(s)", "speedup");
    let mut rows = Vec::new();
    let mut regressions = 0;
    let mut total_default = 0.0;
    let mut total_tuned = 0.0;
    for wq in &workload.queries {
        let d = db_default.execute(&wq.parsed, Secs::INFINITY).time.as_f64();
        let t = db_tuned.execute(&wq.parsed, Secs::INFINITY).time.as_f64();
        total_default += d;
        total_tuned += t;
        // The paper reports gains or ~equal performance per query; flag
        // anything worse than 10% slower as a regression.
        if t > d * 1.1 {
            regressions += 1;
        }
        println!("{:<6} {:>12.3} {:>12.3} {:>8.1}x", wq.label, d, t, d / t);
        rows.push(json!({ "query": wq.label, "default_s": d, "lambda_s": t }));
    }
    println!(
        "\ntotal: default {total_default:.1}s, λ-Tune {total_tuned:.1}s ({:.1}x), \
         per-query regressions >10%: {regressions}",
        total_default / total_tuned
    );
    println!("Paper shape: gains or equal performance for every single query.");

    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write(
        "results/fig5.json",
        serde_json::to_string_pretty(&json!({
            "figure": "5",
            "rows": rows,
            "total_default_s": total_default,
            "total_lambda_s": total_tuned,
        }))
        .unwrap(),
    );
}
