//! Figure 3: tuning trajectories, Scenario 1 — pure parameter tuning with
//! default (PK/FK) indexes pre-built. For each (benchmark, DBMS) panel and
//! each tuner, prints the best-found execution time over optimization time
//! with min/max bands over trials.
//!
//! Usage: `cargo run --release -p lt-bench --bin fig3`

fn main() {
    let _obs = lt_bench::ObsRun::start("fig3");
    lt_bench::run_trajectory_figure(
        true,
        "3",
        "Scenario 1: Baselines do not Create Indexes (Pure Parameter Tuning), \
         Default Indexes Available",
    );
}
