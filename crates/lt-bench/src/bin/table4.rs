//! Table 4: number of configurations evaluated per baseline (PostgreSQL).
//!
//! Usage: `cargo run --release -p lt-bench --bin table4`

use lt_bench::{base_seed, parallel_map, run_tuner, tuner_names, Scenario};
use lt_common::json;
use lt_dbms::Dbms;
use lt_workloads::Benchmark;

fn main() {
    let _obs = lt_bench::ObsRun::start("table4");
    let seed = base_seed();
    let tuners = tuner_names();
    println!("Table 4: Number of Configurations Evaluated per Baseline (Postgres)\n");
    println!(
        "{:<14} {:>7} {:>8} {:>7} {:>8} {:>8} {:>10} {:>10}",
        "Scenario", "InitIdx", "λ-Tune", "UDO", "DB-Bert", "GPTuner", "LlamaTune", "ParamTree"
    );

    let mut json_rows = Vec::new();
    let mut scenarios = Vec::new();
    for benchmark in [Benchmark::TpchSf1, Benchmark::TpchSf10] {
        for initial_indexes in [true, false] {
            scenarios.push(Scenario {
                benchmark,
                dbms: Dbms::Postgres,
                initial_indexes,
            });
        }
    }
    // All 4 × 6 cells run concurrently; rows are consumed in table order.
    let cells: Vec<_> = scenarios
        .iter()
        .flat_map(|&scenario| tuners.iter().map(move |&name| (name, scenario)))
        .collect();
    let cell_counts = parallel_map(cells, |(name, scenario)| {
        run_tuner(name, scenario, seed).configs_evaluated
    });
    let mut cell_counts = cell_counts.into_iter();
    for scenario in scenarios {
        {
            let benchmark = scenario.benchmark;
            let initial_indexes = scenario.initial_indexes;
            let counts: Vec<u64> = tuners
                .iter()
                .map(|_| cell_counts.next().expect("one cell per tuner"))
                .collect();
            println!(
                "{:<14} {:>7} {:>8} {:>7} {:>8} {:>8} {:>10} {:>10}",
                benchmark.name(),
                if initial_indexes { "Yes" } else { "No" },
                counts[0],
                counts[1],
                counts[2],
                counts[3],
                counts[4],
                counts[5],
            );
            json_rows.push(json!({
                "scenario": scenario.label(),
                "counts": tuners.iter().zip(&counts).map(|(n, c)| (n.to_string(), *c)).collect::<std::collections::BTreeMap<_,_>>(),
            }));
        }
    }
    println!("\nPaper shape: λ-Tune evaluates exactly the 5 LLM configurations; ParamTree 1;");
    println!("UDO the most (sample-based); counts shrink at scale factor 10 for the");
    println!("iterative tuners as each trial takes longer.");

    lt_bench::write_results("table4.json", &json!({ "table": "4", "rows": json_rows }));
}
