//! Table 3: cost of the best configuration found by each approach, scaled
//! to the cost of the best overall configuration per scenario.
//!
//! Usage: `cargo run --release -p lt-bench --bin table3`

use lt_bench::{base_seed, parallel_map, row, run_tuner, table3_scenarios, tuner_names};
use lt_common::json;

fn main() {
    let _obs = lt_bench::ObsRun::start("table3");
    let seed = base_seed();
    let tuners = tuner_names();
    println!("Table 3: Cost of Best Configuration Found by Each Approach, Scaled to the");
    println!("Cost of the Best Overall Configuration\n");
    println!(
        "{}",
        row(&[
            format!("{:<18}", "Benchmark DBMS"),
            format!("{:>7}", "InitIdx"),
            format!("{:>8}", "λ-Tune"),
            format!("{:>8}", "UDO"),
            format!("{:>8}", "DB-Bert"),
            format!("{:>8}", "GPTuner"),
            format!("{:>9}", "LlamaTune"),
            format!("{:>9}", "ParamTree"),
        ])
    );

    let mut sums = vec![0.0f64; tuners.len()];
    let mut counts = vec![0usize; tuners.len()];
    let mut json_rows = Vec::new();

    // All 14 × 6 cells run concurrently; rows are consumed in table order.
    let scenarios = table3_scenarios();
    let cells: Vec<_> = scenarios
        .iter()
        .flat_map(|&scenario| tuners.iter().map(move |&name| (name, scenario)))
        .collect();
    let cell_times = parallel_map(cells, |(name, scenario)| {
        run_tuner(name, scenario, seed).best_time.as_f64()
    });
    let mut cell_times = cell_times.into_iter();

    for scenario in scenarios {
        let results: Vec<f64> = tuners
            .iter()
            .map(|_| cell_times.next().expect("one cell per tuner"))
            .collect();
        let best = results.iter().copied().fold(f64::INFINITY, f64::min);
        let scaled: Vec<f64> = results.iter().map(|r| r / best).collect();
        for (i, s) in scaled.iter().enumerate() {
            if s.is_finite() {
                sums[i] += s;
                counts[i] += 1;
            }
        }
        let label = scenario.label();
        let parts: Vec<&str> = label.rsplitn(2, ' ').collect();
        println!(
            "{}",
            row(&[
                format!("{:<18}", parts[1]),
                format!("{:>7}", parts[0]),
                format!("{:>8.2}", scaled[0]),
                format!("{:>8.2}", scaled[1]),
                format!("{:>8.2}", scaled[2]),
                format!("{:>8.2}", scaled[3]),
                format!("{:>9.2}", scaled[4]),
                format!("{:>9.2}", scaled[5]),
            ])
        );
        json_rows.push(json!({
            "scenario": label,
            "scaled": tuners.iter().zip(&scaled).map(|(n, s)| (n.to_string(), *s)).collect::<std::collections::BTreeMap<_,_>>(),
            "best_seconds": best,
        }));
    }

    let averages: Vec<f64> = sums
        .iter()
        .zip(&counts)
        .map(|(s, c)| if *c > 0 { s / *c as f64 } else { f64::NAN })
        .collect();
    println!(
        "{}",
        row(&[
            format!("{:<18}", "Average"),
            format!("{:>7}", ""),
            format!("{:>8.2}", averages[0]),
            format!("{:>8.2}", averages[1]),
            format!("{:>8.2}", averages[2]),
            format!("{:>8.2}", averages[3]),
            format!("{:>9.2}", averages[4]),
            format!("{:>9.2}", averages[5]),
        ])
    );
    println!("\nPaper reference averages: λ-Tune 1.41, UDO 2.00, DB-Bert 1.82, GPTuner 1.91, LlamaTune 2.27, ParamTree 4.07");
    println!("Expected shape: λ-Tune lowest average (most robust); ParamTree highest.");

    let out = json!({ "table": "3", "rows": json_rows, "averages": tuners.iter().zip(&averages).map(|(n, a)| (n.to_string(), *a)).collect::<std::collections::BTreeMap<_,_>>() });
    lt_bench::write_results("table3.json", &out);
}
