//! Figure 6: ablation study — JOB on PostgreSQL, no initial indexes.
//!
//! Variants: Default (all components), Adaptive Timeout off (§6.4.1),
//! Query Scheduler off (§6.4.2), Obfuscated workload (§6.4.3), Compressor
//! off / full SQL (§6.4.4).
//!
//! Usage: `cargo run --release -p lt-bench --bin fig6`

use lambda_tune::{LambdaTune, LambdaTuneOptions, SelectorOptions};
use lt_bench::{base_seed, make_db, parallel_map, trajectory_band, trials, Scenario};
use lt_common::json;
use lt_dbms::Dbms;
use lt_workloads::Benchmark;

fn variants() -> Vec<(&'static str, LambdaTuneOptions)> {
    // The paper's 10 s initial timeout assumes the real testbed's 113-query
    // JOB (minutes of execution); our 33-query simulated JOB runs ~10x
    // faster, so the initial timeout is scaled to preserve the paper's
    // execution-time-to-timeout ratio (the regime where the adaptive
    // timeout matters). All variants use the same schedule.
    let default = LambdaTuneOptions {
        selector: SelectorOptions {
            initial_timeout: lt_common::secs(1.0),
            ..SelectorOptions::default()
        },
        ..LambdaTuneOptions::default()
    };
    vec![
        ("Default", default),
        (
            "No Adaptive Timeout",
            LambdaTuneOptions {
                selector: SelectorOptions {
                    adaptive_timeout: false,
                    ..default.selector
                },
                ..default
            },
        ),
        (
            "No Query Scheduler",
            LambdaTuneOptions {
                use_scheduler: false,
                ..default
            },
        ),
        (
            "Obfuscated Workload",
            LambdaTuneOptions {
                obfuscate: true,
                ..default
            },
        ),
        (
            "No Compressor (full SQL)",
            LambdaTuneOptions {
                use_compressor: false,
                token_budget: Some(8000),
                ..default
            },
        ),
    ]
}

fn main() {
    let _obs = lt_bench::ObsRun::start("fig6");
    let seed = base_seed();
    let n_trials = trials();
    let scenario = Scenario {
        benchmark: Benchmark::Job,
        dbms: Dbms::Postgres,
        initial_indexes: false,
    };
    println!("Figure 6: Ablation — JOB, Postgres, No Indexes");
    println!("(x = optimization time [s], y = best execution time found [s]; mean [min, max] over {n_trials} trials)\n");

    // All variant × trial cells run concurrently (per-cell deterministic
    // seeds); results are consumed in the sequential order below.
    let vars = variants();
    let cells: Vec<_> = vars
        .iter()
        .flat_map(|(_, options)| (0..n_trials).map(move |t| (*options, seed + t as u64)))
        .collect();
    let outcomes = parallel_map(cells, |(options, cell_seed)| {
        let (mut db, workload) = make_db(scenario, cell_seed);
        let llm = lt_llm::LlmClient::new(lt_llm::SimulatedLlm::new());
        let opts = LambdaTuneOptions {
            seed: cell_seed,
            ..options
        };
        let result = LambdaTune::new(opts)
            .tune(&mut db, &workload, &llm)
            .expect("tuning succeeds");
        (
            result.trajectory,
            result.best_time.as_f64(),
            result.tuning_time.as_f64(),
        )
    });
    let mut outcomes = outcomes.into_iter();

    let mut series_out = Vec::new();
    let mut summary = Vec::new();
    for (label, _options) in vars {
        let mut runs = Vec::new();
        let mut final_best = Vec::new();
        let mut finish_time = Vec::new();
        for _ in 0..n_trials {
            let (trajectory, best, finish) = outcomes.next().expect("one outcome per cell");
            final_best.push(best);
            finish_time.push(finish);
            runs.push(trajectory);
        }
        let band = trajectory_band(&runs, 8);
        let series: Vec<String> = band
            .iter()
            .map(|(t, mean, min, max)| format!("({t:.0}s, {mean:.1} [{min:.1},{max:.1}])"))
            .collect();
        println!("  {label:<26} {}", series.join(" "));
        let mean_best = final_best.iter().sum::<f64>() / final_best.len() as f64;
        let mean_finish = finish_time.iter().sum::<f64>() / finish_time.len() as f64;
        summary.push((label, mean_finish, mean_best));
        series_out.push(json!({
            "variant": label,
            "points": band.iter().map(|(t, mean, min, max)| json!({
                "opt_time_s": t, "mean_s": mean, "min_s": min, "max_s": max
            })).collect::<Vec<_>>(),
            "mean_tuning_time_s": mean_finish,
            "mean_best_s": mean_best,
        }));
    }

    println!(
        "\n{:<26} {:>16} {:>14}",
        "Variant", "tuning time (s)", "best found (s)"
    );
    for (label, finish, best) in &summary {
        println!("{label:<26} {finish:>16.0} {best:>14.1}");
    }
    println!("\nPaper shape: disabling the adaptive timeout or the scheduler slows tuning");
    println!("(longer time to near-optimal) without degrading final quality; obfuscation");
    println!("is ~equivalent to Default (no pre-training leak); dropping the compressor");
    println!("hurts both tuning time and final configuration quality.");

    lt_bench::write_results("fig6.json", &json!({ "figure": "6", "series": series_out }));
}
