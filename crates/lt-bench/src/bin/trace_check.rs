//! Validates a trace sidecar written by `ObsRun` (CI's trace gate).
//!
//! Checks that the event log contains spans for the LLM-call, ILP-solve and
//! config-eval phases plus the root `run` span, and that the per-phase
//! *exclusive* wall times sum to within 1% of the run's wall time — i.e.
//! the breakdown accounts for the whole run instead of double-counting
//! nested spans. Requires a trace produced with `LT_BENCH_THREADS=1` (with
//! worker threads, spans land outside the root span's tree by design).
//!
//! Usage: `cargo run --release -p lt-bench --bin trace_check -- \
//!         [results/fig6.trace.json]`

use lt_common::json::{parse, Value};
use std::process::ExitCode;

const REQUIRED_PHASES: [&str; 6] = [
    "run",
    "tune",
    "tune.llm_sample",
    "llm.call",
    "ilp.solve",
    "eval.config",
];

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/fig6.trace.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let Some(phases) = doc.get("phases").and_then(Value::as_array) else {
        eprintln!("error: {path}: missing \"phases\" array");
        return ExitCode::FAILURE;
    };
    let name_of = |p: &Value| p.get("name").and_then(Value::as_str).map(str::to_string);
    let mut failures = 0;
    for required in REQUIRED_PHASES {
        if !phases
            .iter()
            .any(|p| name_of(p).as_deref() == Some(required))
        {
            eprintln!("FAIL: phase {required:?} missing from {path}");
            failures += 1;
        }
    }

    let run_wall = phases
        .iter()
        .find(|p| name_of(p).as_deref() == Some("run"))
        .and_then(|p| p.get("wall_s"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let sum_self: f64 = phases
        .iter()
        .filter_map(|p| p.get("wall_self_s").and_then(Value::as_f64))
        .sum();
    if run_wall <= 0.0 {
        eprintln!("FAIL: run span has no positive wall time");
        failures += 1;
    } else {
        let rel = (sum_self - run_wall).abs() / run_wall;
        let verdict = if rel <= 0.01 { "ok" } else { "FAIL" };
        println!(
            "{verdict}: phase self-times sum to {sum_self:.3}s vs run wall \
             {run_wall:.3}s ({:.3}% off)",
            rel * 100.0
        );
        if rel > 0.01 {
            failures += 1;
        }
    }

    let events = doc
        .get("events")
        .and_then(Value::as_array)
        .map_or(0, <[Value]>::len);
    let counters = match doc.get("counters") {
        Some(Value::Object(fields)) => fields.len(),
        _ => 0,
    };
    println!(
        "ok: {} phases, {events} events, {counters} counters",
        phases.len()
    );
    if events == 0 || counters == 0 {
        eprintln!("FAIL: trace has no events or no counters");
        failures += 1;
    }

    if failures > 0 {
        eprintln!("{failures} trace check(s) failed for {path}");
        return ExitCode::FAILURE;
    }
    println!("trace {path} passed all checks");
    ExitCode::SUCCESS
}
