//! Figure 7: compressor token-budget ablation — JOB on PostgreSQL.
//!
//! Sweeps the workload-description token budget and compares against the
//! full-SQL prompt, reporting tokens actually consumed, time until the
//! first configuration is fully evaluated, and the best execution time
//! found.
//!
//! Usage: `cargo run --release -p lt-bench --bin fig7`

use lambda_tune::{LambdaTune, LambdaTuneOptions};
use lt_bench::{base_seed, make_db, parallel_map, Scenario};
use lt_common::json;
use lt_dbms::Dbms;
use lt_workloads::Benchmark;

fn main() {
    let _obs = lt_bench::ObsRun::start("fig7");
    let seed = base_seed();
    let scenario = Scenario {
        benchmark: Benchmark::Job,
        dbms: Dbms::Postgres,
        initial_indexes: false,
    };
    println!("Figure 7: Ablation — Compressor Budget (JOB, Postgres)\n");
    println!(
        "{:<28} {:>8} {:>16} {:>14}",
        "Prompt mode", "tokens", "first config (s)", "best found (s)"
    );

    // Every budget point tunes independently from the same seed, so the
    // sweep runs concurrently and prints in sweep order afterwards.
    let mut modes: Vec<(String, LambdaTuneOptions)> = [196usize, 400, 800, 1600, 3200]
        .into_iter()
        .map(|budget| {
            (
                format!("Compressed (budget {budget})"),
                LambdaTuneOptions {
                    token_budget: Some(budget),
                    seed,
                    ..Default::default()
                },
            )
        })
        .collect();
    modes.push((
        "Full SQL (8000 tokens)".into(),
        LambdaTuneOptions {
            use_compressor: false,
            token_budget: Some(8000),
            seed,
            ..Default::default()
        },
    ));

    let rows: Vec<_> = parallel_map(modes, |(label, options)| {
        let (mut db, workload) = make_db(scenario, seed);
        let llm = lt_llm::LlmClient::new(lt_llm::SimulatedLlm::new());
        let result = LambdaTune::new(options)
            .tune(&mut db, &workload, &llm)
            .expect("tuning succeeds");
        let first = result
            .trajectory
            .first()
            .map(|p| p.opt_time.as_f64())
            .unwrap_or(f64::NAN);
        (
            label,
            result.workload_tokens,
            first,
            result.best_time.as_f64(),
        )
    })
    .into_iter()
    .map(|(label, tokens, first, best)| {
        println!("{label:<28} {tokens:>8} {first:>16.0} {best:>14.2}");
        json!({
            "mode": label,
            "workload_tokens": tokens,
            "first_config_s": first,
            "best_s": best,
        })
    })
    .collect();

    println!("\nPaper shape: compressed prompts reach near-optimal configurations even");
    println!("with >10x fewer tokens than full SQL; only extremely low budgets (~196");
    println!("tokens) degrade quality significantly; full SQL costs the most tokens and");
    println!("does not yield the best configurations.");

    lt_bench::write_results("fig7.json", &json!({ "figure": "7", "rows": rows }));
}
