//! Figure 4: tuning trajectories, Scenario 2 — tuners may create indexes
//! (λ-Tune and UDO tune physical design; parameter-only baselines run on
//! Dexter's recommended indexes). No indexes exist initially.
//!
//! Usage: `cargo run --release -p lt-bench --bin fig4`

fn main() {
    let _obs = lt_bench::ObsRun::start("fig4");
    lt_bench::run_trajectory_figure(
        false,
        "4",
        "Scenario 2: Baselines Create Indexes, no Indexes are Created by Default",
    );
}
