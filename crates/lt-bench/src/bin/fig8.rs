//! Figure 8: comparing index recommendation tools — λ-Tune restricted to
//! index recommendations vs Dexter vs the DB2 Index Advisor vs no indexes,
//! on TPC-H, TPC-DS and JOB (PostgreSQL, default parameters, log-scale y
//! in the paper).
//!
//! Usage: `cargo run --release -p lt-bench --bin fig8`

use lambda_tune::{LambdaTune, LambdaTuneOptions};
use lt_baselines::common::measure_workload;
use lt_baselines::{Db2Advisor, Dexter};
use lt_bench::{base_seed, make_db, parallel_map, Scenario};
use lt_common::json;
use lt_common::Secs;
use lt_dbms::{Dbms, IndexSpec};
use lt_workloads::Benchmark;

/// Measures the workload with the given index set under default knobs.
fn measure_with_indexes(scenario: Scenario, seed: u64, specs: &[IndexSpec]) -> f64 {
    let (mut db, workload) = make_db(scenario, seed);
    for spec in specs {
        db.create_index(spec);
    }
    let (time, done) = measure_workload(&mut db, &workload, Secs::INFINITY);
    assert!(done);
    time.as_f64()
}

fn main() {
    let _obs = lt_bench::ObsRun::start("fig8");
    let seed = base_seed();
    println!("Figure 8: Comparing Index Recommendation Tools");
    println!("(workload execution time [s] under default parameters; log scale in the paper)\n");
    println!(
        "{:<10} {:>12} {:>10} {:>12} {:>12}",
        "Benchmark", "No Indexes", "λ-Tune", "Dexter", "DB2 Advisor"
    );

    // The three benchmark columns are independent; each one tunes and
    // measures on its own thread, then rows print in benchmark order.
    let benchmarks = vec![Benchmark::TpchSf1, Benchmark::TpcdsSf1, Benchmark::Job];
    let measured = parallel_map(benchmarks, |benchmark| {
        let scenario = Scenario {
            benchmark,
            dbms: Dbms::Postgres,
            initial_indexes: false,
        };

        // λ-Tune, index recommendations only.
        let (mut db, workload) = make_db(scenario, seed);
        let llm = lt_llm::LlmClient::new(lt_llm::SimulatedLlm::new());
        let options = LambdaTuneOptions {
            indexes_only: true,
            seed,
            ..Default::default()
        };
        let result = LambdaTune::new(options)
            .tune(&mut db, &workload, &llm)
            .expect("tuning succeeds");
        let lambda_specs: Vec<IndexSpec> = result
            .best_config
            .map(|c| c.index_specs().into_iter().cloned().collect())
            .unwrap_or_default();

        let (probe_db, probe_w) = make_db(scenario, seed);
        let dexter_specs = Dexter::default().recommend(&probe_db, &probe_w);
        let db2_specs = Db2Advisor::default().recommend(&probe_db, &probe_w);

        let none = measure_with_indexes(scenario, seed, &[]);
        let lambda = measure_with_indexes(scenario, seed, &lambda_specs);
        let dexter = measure_with_indexes(scenario, seed, &dexter_specs);
        let db2 = measure_with_indexes(scenario, seed, &db2_specs);
        (
            benchmark,
            none,
            lambda,
            dexter,
            db2,
            lambda_specs,
            dexter_specs,
            db2_specs,
        )
    });

    let mut rows = Vec::new();
    for (benchmark, none, lambda, dexter, db2, lambda_specs, dexter_specs, db2_specs) in measured {
        println!(
            "{:<10} {:>12.1} {:>10.1} {:>12.1} {:>12.1}",
            benchmark.name(),
            none,
            lambda,
            dexter,
            db2
        );
        rows.push(json!({
            "benchmark": benchmark.name(),
            "no_indexes_s": none,
            "lambda_tune_s": lambda,
            "dexter_s": dexter,
            "db2_advisor_s": db2,
            "lambda_indexes": lambda_specs.len(),
            "dexter_indexes": dexter_specs.len(),
            "db2_indexes": db2_specs.len(),
        }));
    }
    println!("\nPaper shape: λ-Tune's indexes cut run time significantly vs no indexes,");
    println!("but the specialized advisors (Dexter, DB2) usually match or beat it —");
    println!("except on TPC-DS, where λ-Tune competes (it has a broader scope).");

    lt_bench::write_results("fig8.json", &json!({ "figure": "8", "rows": rows }));
}
