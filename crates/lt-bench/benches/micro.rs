//! Criterion micro-benchmarks backing the design choices DESIGN.md calls
//! out: ILP compression solve times, the DP scheduler's exponential growth
//! (and why §5.4 caps it at 13), k-means clustering, and optimizer
//! planning throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lambda_tune::{cluster_queries, extract_snippets, find_optimal_order, Compressor};
use lt_dbms::{Dbms, Hardware, SimDb};
use lt_workloads::Benchmark;
use std::hint::black_box;

fn bench_ilp_compression(c: &mut Criterion) {
    let workload = Benchmark::Job.load();
    let db = SimDb::new(Dbms::Postgres, workload.catalog.clone(), Hardware::p3_2xlarge(), 1);
    let snippets = extract_snippets(&db, &workload);
    let compressor = Compressor::new(&workload.catalog);
    let mut group = c.benchmark_group("ilp_compression_job");
    for budget in [100usize, 300, 800] {
        group.bench_with_input(BenchmarkId::from_parameter(budget), &budget, |b, &budget| {
            b.iter(|| compressor.compress(black_box(&snippets), budget).unwrap());
        });
    }
    group.finish();
}

fn bench_dp_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_scheduler");
    for n in [6usize, 9, 11, 13] {
        let items: Vec<Vec<usize>> = (0..n).map(|i| vec![i % 5, (i + 2) % 5]).collect();
        let costs: Vec<f64> = (0..5).map(|i| 1.0 + i as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| find_optimal_order(black_box(&items), black_box(&costs)));
        });
    }
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let items: Vec<Vec<usize>> = (0..113).map(|i| vec![i % 14, (i + 5) % 14]).collect();
    c.bench_function("kmeans_cluster_113_queries", |b| {
        b.iter(|| cluster_queries(black_box(&items), 14, 13, 7));
    });
}

fn bench_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_plan_workload");
    group.sample_size(10);
    for benchmark in [Benchmark::TpchSf1, Benchmark::Job] {
        let workload = benchmark.load();
        let db = SimDb::new(Dbms::Postgres, workload.catalog.clone(), Hardware::p3_2xlarge(), 1);
        group.bench_with_input(
            BenchmarkId::from_parameter(benchmark.name()),
            &workload,
            |b, w| {
                b.iter(|| {
                    for q in &w.queries {
                        black_box(db.explain(&q.parsed));
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_snippet_extraction(c: &mut Criterion) {
    let workload = Benchmark::TpchSf1.load();
    let db = SimDb::new(Dbms::Postgres, workload.catalog.clone(), Hardware::p3_2xlarge(), 1);
    c.bench_function("extract_snippets_tpch", |b| {
        b.iter(|| extract_snippets(black_box(&db), black_box(&workload)));
    });
}

criterion_group!(
    benches,
    bench_ilp_compression,
    bench_dp_scheduler,
    bench_clustering,
    bench_optimizer,
    bench_snippet_extraction
);
criterion_main!(benches);
