//! Micro-benchmarks backing the design choices DESIGN.md calls out: ILP
//! compression solve times, the DP scheduler's exponential growth (and why
//! §5.4 caps it at 13), k-means clustering, optimizer planning throughput,
//! and the plan cache's effect on repeated planning.
//!
//! Plain `std::time::Instant` timing (the workspace builds with zero
//! external crates): each case runs a few warmup iterations, then reports
//! the mean over timed iterations.
//!
//! Usage: `cargo bench -p lt-bench` or
//! `cargo run --release -p lt-bench --bin` is *not* needed — this is the
//! `micro` bench target (`harness = false`).

use lambda_tune::{cluster_queries, extract_snippets, find_optimal_order, Compressor};
use lt_dbms::{Dbms, Hardware, SimDb};
use lt_workloads::Benchmark;
use std::hint::black_box;
use std::time::Instant;

/// Times `f` over `iters` iterations after `warmup` untimed ones and
/// prints the mean per-iteration time.
fn bench(name: &str, warmup: usize, iters: usize, mut f: impl FnMut()) {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = start.elapsed().as_secs_f64() / iters as f64;
    let (value, unit) = if per_iter >= 1e-3 {
        (per_iter * 1e3, "ms")
    } else {
        (per_iter * 1e6, "µs")
    };
    println!("{name:<44} {value:>10.2} {unit}/iter  ({iters} iters)");
}

fn bench_ilp_compression() {
    let workload = Benchmark::Job.load();
    let db = SimDb::new(
        Dbms::Postgres,
        workload.catalog.clone(),
        Hardware::p3_2xlarge(),
        1,
    );
    let snippets = extract_snippets(&db, &workload);
    let compressor = Compressor::new(&workload.catalog);
    for budget in [100usize, 300, 800] {
        bench(&format!("ilp_compression_job/{budget}"), 2, 10, || {
            black_box(compressor.compress(black_box(&snippets), budget).unwrap());
        });
    }
}

fn bench_dp_scheduler() {
    for n in [6usize, 9, 11, 13] {
        let items: Vec<Vec<usize>> = (0..n).map(|i| vec![i % 5, (i + 2) % 5]).collect();
        let costs: Vec<f64> = (0..5).map(|i| 1.0 + i as f64).collect();
        bench(&format!("dp_scheduler/{n}"), 2, 10, || {
            black_box(find_optimal_order(black_box(&items), black_box(&costs)));
        });
    }
}

fn bench_clustering() {
    let items: Vec<Vec<usize>> = (0..113).map(|i| vec![i % 14, (i + 5) % 14]).collect();
    bench("kmeans_cluster_113_queries", 2, 20, || {
        black_box(cluster_queries(black_box(&items), 14, 13, 7));
    });
}

fn bench_optimizer() {
    for benchmark in [Benchmark::TpchSf1, Benchmark::Job] {
        let workload = benchmark.load();
        let db = SimDb::new(
            Dbms::Postgres,
            workload.catalog.clone(),
            Hardware::p3_2xlarge(),
            1,
        );
        // Cold: every iteration plans against a fresh SimDb (cache empty).
        bench(
            &format!("optimizer_plan_workload/{}/cold", benchmark.name()),
            1,
            5,
            || {
                let fresh = SimDb::new(
                    Dbms::Postgres,
                    workload.catalog.clone(),
                    Hardware::p3_2xlarge(),
                    1,
                );
                for q in &workload.queries {
                    black_box(fresh.explain(&q.parsed));
                }
            },
        );
        // Warm: repeated planning on one SimDb is served by the plan cache.
        bench(
            &format!("optimizer_plan_workload/{}/warm", benchmark.name()),
            1,
            5,
            || {
                for q in &workload.queries {
                    black_box(db.explain(&q.parsed));
                }
            },
        );
        let stats = db.cache_stats();
        println!(
            "    plan cache: {} hits / {} misses ({:.1}% hit rate)",
            stats.plan_hits,
            stats.plan_misses,
            stats.plan_hit_rate() * 100.0
        );
    }
}

fn bench_snippet_extraction() {
    let workload = Benchmark::TpchSf1.load();
    let db = SimDb::new(
        Dbms::Postgres,
        workload.catalog.clone(),
        Hardware::p3_2xlarge(),
        1,
    );
    bench("extract_snippets_tpch", 2, 10, || {
        black_box(extract_snippets(black_box(&db), black_box(&workload)));
    });
}

/// Observability overhead: the disabled path (one relaxed atomic load per
/// call site) must be free; the enabled path shows the true recording cost
/// for contrast. A query-execution round-trip with tracing off vs on shows
/// the end-to-end effect on the instrumented hot path.
fn bench_obs_overhead() {
    use lt_common::obs;
    let workload = Benchmark::TpchSf1.load();
    let q = &workload.queries[0].parsed;

    obs::set_enabled(false);
    bench("obs_span_disabled", 1000, 2_000_000, || {
        black_box(obs::span("bench.noop"));
    });
    bench("obs_counter_disabled", 1000, 2_000_000, || {
        obs::counter("bench.noop", 1);
    });
    let mut db = SimDb::new(
        Dbms::Postgres,
        workload.catalog.clone(),
        Hardware::p3_2xlarge(),
        1,
    );
    bench("execute_query_trace_off", 5, 2000, || {
        black_box(db.execute(black_box(q), lt_common::Secs::INFINITY));
    });

    obs::set_enabled(true);
    obs::reset();
    bench("obs_span_enabled", 1000, 200_000, || {
        black_box(obs::span("bench.noop"));
    });
    obs::reset();
    bench("obs_counter_enabled", 1000, 200_000, || {
        obs::counter("bench.noop", 1);
    });
    obs::reset();
    let mut db = SimDb::new(
        Dbms::Postgres,
        workload.catalog.clone(),
        Hardware::p3_2xlarge(),
        1,
    );
    bench("execute_query_trace_on", 5, 2000, || {
        black_box(db.execute(black_box(q), lt_common::Secs::INFINITY));
    });
    obs::reset();
    obs::set_enabled(false);
}

fn main() {
    bench_ilp_compression();
    bench_dp_scheduler();
    bench_clustering();
    bench_optimizer();
    bench_snippet_extraction();
    bench_obs_overhead();
}
