//! GPTuner — manual-reading, GPT-guided Bayesian optimization
//! (Lao et al., VLDB 2024).
//!
//! GPTuner uses an LLM to prune each knob's search range to a region around
//! the documented recommendation, then runs coarse-to-fine optimization
//! inside the pruned space. We reproduce both stages: the mined manual
//! hints (the same knowledge source the LLM distills) define per-knob
//! centers; the search samples multiplicative offsets around the incumbent
//! with a shrinking radius, evaluating full workloads under a timeout.
//! Parameters only.

use crate::common::{config_from_values, measure_config, record_improvement, Tuner, TunerRun};
use crate::manual::{manual_text, mine_hints};
use lt_common::{secs, seeded_rng, Secs};
use lt_dbms::knobs::knob_def;
use lt_dbms::{KnobValue, TuningTarget};
use lt_workloads::Workload;

/// GPTuner options.
#[derive(Debug, Clone, Copy)]
pub struct GpTunerOptions {
    /// Per-evaluation cap on workload time.
    pub eval_timeout: Secs,
    /// Initial multiplicative search radius (log₂ units).
    pub initial_radius: f64,
    /// Radius decay per accepted improvement (coarse → fine).
    pub radius_decay: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GpTunerOptions {
    fn default() -> Self {
        GpTunerOptions {
            eval_timeout: secs(300.0),
            initial_radius: 2.0,
            radius_decay: 0.9,
            seed: 0,
        }
    }
}

/// The GPTuner baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct GpTuner {
    /// Options.
    pub options: GpTunerOptions,
}

impl GpTuner {
    /// GPTuner with options.
    pub fn new(options: GpTunerOptions) -> Self {
        GpTuner { options }
    }
}

impl Tuner for GpTuner {
    fn name(&self) -> &'static str {
        "GPTuner"
    }

    fn tune(&self, db: &mut dyn TuningTarget, workload: &Workload, budget: Secs) -> TunerRun {
        let opts = &self.options;
        let start = db.now();
        let mut rng = seeded_rng(opts.seed);
        // Stage 1: the LLM/manual prunes the space — per-knob centers.
        let centers: Vec<(String, KnobValue)> = mine_hints(manual_text(db.dbms()), db.dbms())
            .iter()
            .filter_map(|h| {
                h.ground(db.dbms(), db.hardware())
                    .map(|v| (h.knob.clone(), v))
            })
            .collect();
        if centers.is_empty() {
            return TunerRun::empty();
        }

        let mut incumbent: Vec<f64> = vec![0.0; centers.len()]; // log2 offsets
        let mut incumbent_time = Secs::INFINITY;
        let mut radius = opts.initial_radius;
        let mut run = TunerRun::empty();

        while db.now() - start < budget {
            // Sample a candidate around the incumbent (coarse-to-fine).
            let candidate: Vec<f64> = incumbent
                .iter()
                .map(|o| {
                    let delta: f64 = rng.gen_range(-radius..=radius);
                    (o + delta).clamp(-2.0, 2.0)
                })
                .collect();
            let knobs: Vec<(String, KnobValue)> = centers
                .iter()
                .zip(&candidate)
                .filter_map(|((name, center), off)| {
                    let def = knob_def(db.dbms(), name)?;
                    let scaled = center.as_f64() * 2f64.powf(*off);
                    let value = def.clamp(match center {
                        KnobValue::Bytes(_) => KnobValue::Bytes(scaled as u64),
                        KnobValue::Float(_) => KnobValue::Float(scaled),
                        KnobValue::Int(_) => KnobValue::Int(scaled.round() as i64),
                        KnobValue::Bool(b) => KnobValue::Bool(*b),
                    });
                    Some((name.clone(), value))
                })
                .collect();
            let borrowed: Vec<(&str, KnobValue)> =
                knobs.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            let config = config_from_values(&borrowed, &[]);
            let (time, done) = measure_config(db, workload, &config, opts.eval_timeout);
            run.configs_evaluated += 1;
            if done && time < incumbent_time {
                incumbent_time = time;
                incumbent = candidate;
                radius = (radius * opts.radius_decay).max(0.5);
                if record_improvement(&mut run.trajectory, &mut run.best_time, db.now(), time) {
                    run.best_config = Some(config);
                }
            }
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_dbms::{Dbms, Hardware, SimDb};
    use lt_workloads::Benchmark;

    fn setup() -> (SimDb, Workload) {
        let w = Benchmark::TpchSf1.load();
        let db = SimDb::new(
            Dbms::Postgres,
            w.catalog.clone(),
            Hardware::p3_2xlarge(),
            17,
        );
        (db, w)
    }

    #[test]
    fn gptuner_beats_defaults() {
        let (mut db, w) = setup();
        let mut probe = SimDb::new(
            Dbms::Postgres,
            w.catalog.clone(),
            Hardware::p3_2xlarge(),
            17,
        );
        let (default_time, _) = crate::common::measure_workload(&mut probe, &w, Secs::INFINITY);
        let run = GpTuner::default().tune(&mut db, &w, secs(2000.0));
        assert!(run.best_config.is_some());
        assert!(run.best_time < default_time);
        assert!(run.configs_evaluated >= 3);
    }

    #[test]
    fn gptuner_is_parameters_only() {
        let (mut db, w) = setup();
        let run = GpTuner::default().tune(&mut db, &w, secs(800.0));
        if let Some(cfg) = run.best_config {
            assert!(cfg.index_specs().is_empty());
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let (mut db1, w) = setup();
        let (mut db2, _) = setup();
        let a = GpTuner::default().tune(&mut db1, &w, secs(600.0));
        let b = GpTuner::default().tune(&mut db2, &w, secs(600.0));
        assert_eq!(a.best_time, b.best_time);
        assert_eq!(a.configs_evaluated, b.configs_evaluated);
    }
}
