//! Dexter — automatic indexer via hypothetical what-if indexes
//! (github.com/ankane/dexter).
//!
//! Dexter proposes candidate indexes from workload predicates and accepts
//! those whose *hypothetical* presence reduces total estimated plan cost
//! by more than a threshold — no real index is built during search. We
//! reproduce it as greedy forward selection over single-column candidates
//! using the simulator's free what-if planning.

use crate::common::{
    config_from_values, index_candidates, measure_config, record_improvement, Tuner, TunerRun,
};
use lt_common::{secs, Secs};
use lt_dbms::{IndexCatalog, IndexSpec, TuningTarget};
use lt_workloads::Workload;

/// Dexter options.
#[derive(Debug, Clone, Copy)]
pub struct DexterOptions {
    /// Minimum relative total-cost improvement to accept an index
    /// (Dexter's default is 50% per query; workload-level we use 2%).
    pub min_improvement: f64,
    /// Maximum number of indexes recommended.
    pub max_indexes: usize,
    /// Cap for the final full-workload measurement.
    pub eval_timeout: Secs,
}

impl Default for DexterOptions {
    fn default() -> Self {
        DexterOptions {
            min_improvement: 0.02,
            max_indexes: 12,
            eval_timeout: secs(1200.0),
        }
    }
}

/// The Dexter baseline (index selection only).
#[derive(Debug, Clone, Copy, Default)]
pub struct Dexter {
    /// Options.
    pub options: DexterOptions,
}

impl Dexter {
    /// Dexter with options.
    pub fn new(options: DexterOptions) -> Self {
        Dexter { options }
    }

    /// Pure index recommendation: greedy what-if selection. Free (uses
    /// EXPLAIN only), so callers can combine it with other tuners — the
    /// paper pre-builds Dexter indexes for the parameter-only baselines in
    /// Scenario 2.
    pub fn recommend(&self, db: &dyn TuningTarget, workload: &Workload) -> Vec<IndexSpec> {
        let candidates = index_candidates(db, workload);
        let total_cost = |idx: &IndexCatalog| -> f64 {
            workload
                .queries
                .iter()
                .map(|q| db.explain_with_indexes(&q.parsed, idx).total_cost())
                .sum()
        };
        let mut chosen = IndexCatalog::new();
        let mut chosen_specs: Vec<IndexSpec> = Vec::new();
        let mut current = total_cost(&chosen);
        while chosen_specs.len() < self.options.max_indexes {
            let mut best: Option<(usize, f64)> = None;
            for (ci, cand) in candidates.iter().enumerate() {
                if chosen.find(cand.table, &cand.columns).is_some() {
                    continue;
                }
                let mut trial = chosen.clone();
                trial.add(cand.table, cand.columns.clone(), None);
                let cost = total_cost(&trial);
                if best.map(|(_, b)| cost < b).unwrap_or(true) {
                    best = Some((ci, cost));
                }
            }
            let Some((ci, cost)) = best else { break };
            if cost >= current * (1.0 - self.options.min_improvement) {
                break; // no candidate helps enough
            }
            let cand = &candidates[ci];
            chosen.add(cand.table, cand.columns.clone(), None);
            chosen_specs.push(cand.clone());
            current = cost;
        }
        chosen_specs
    }
}

impl Tuner for Dexter {
    fn name(&self) -> &'static str {
        "Dexter"
    }

    fn tune(&self, db: &mut dyn TuningTarget, workload: &Workload, _budget: Secs) -> TunerRun {
        let specs = self.recommend(db, workload);
        let config = config_from_values(&[], &specs);
        let mut run = TunerRun::empty();
        let (time, done) = measure_config(db, workload, &config, self.options.eval_timeout);
        run.configs_evaluated = 1;
        if done && record_improvement(&mut run.trajectory, &mut run.best_time, db.now(), time) {
            run.best_config = Some(config);
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_dbms::{Dbms, Hardware, SimDb};
    use lt_workloads::Benchmark;

    fn setup() -> (SimDb, Workload) {
        let w = Benchmark::TpchSf1.load();
        let db = SimDb::new(
            Dbms::Postgres,
            w.catalog.clone(),
            Hardware::p3_2xlarge(),
            29,
        );
        (db, w)
    }

    #[test]
    fn recommends_indexes_that_reduce_estimated_cost() {
        let (db, w) = setup();
        let specs = Dexter::default().recommend(&db, &w);
        assert!(!specs.is_empty(), "TPC-H must benefit from some index");
        assert!(specs.len() <= DexterOptions::default().max_indexes);
        // Recommendation is what-if only: nothing materialized.
        assert!(db.indexes().is_empty());
        // Verify the cost reduction claim.
        let mut idx = IndexCatalog::new();
        for s in &specs {
            idx.add(s.table, s.columns.clone(), None);
        }
        let base: f64 = w
            .queries
            .iter()
            .map(|q| db.explain(&q.parsed).total_cost())
            .sum();
        let with: f64 = w
            .queries
            .iter()
            .map(|q| db.explain_with_indexes(&q.parsed, &idx).total_cost())
            .sum();
        assert!(with < base, "with {with} !< base {base}");
    }

    #[test]
    fn dexter_run_improves_real_time_over_defaults() {
        let (mut db, w) = setup();
        let mut probe = SimDb::new(
            Dbms::Postgres,
            w.catalog.clone(),
            Hardware::p3_2xlarge(),
            29,
        );
        let (default_time, _) = crate::common::measure_workload(&mut probe, &w, Secs::INFINITY);
        let run = Dexter::default().tune(&mut db, &w, secs(1e9));
        assert_eq!(run.configs_evaluated, 1);
        assert!(
            run.best_time < default_time * 1.2,
            "{} vs {default_time}",
            run.best_time
        );
        let cfg = run.best_config.expect("completes");
        assert_eq!(cfg.knob_changes().count(), 0, "Dexter is indexes-only");
    }

    #[test]
    fn recommendation_is_deterministic() {
        let (db, w) = setup();
        let d = Dexter::default();
        assert_eq!(d.recommend(&db, &w), d.recommend(&db, &w));
    }
}
