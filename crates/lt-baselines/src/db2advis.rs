//! DB2 Index Advisor — "an optimizer smart enough to recommend its own
//! indexes" (Valentin et al., ICDE 2000).
//!
//! The DB2 advisor evaluates candidate indexes with what-if optimization
//! and selects a set under a **disk budget** by benefit/size ratio (a
//! knapsack heuristic), rather than Dexter's unbounded greedy-by-benefit.
//! Benefit of a candidate is the workload-level plan-cost reduction when
//! the candidate is added on top of the already-selected set.

use crate::common::{
    config_from_values, index_candidates, measure_config, record_improvement, Tuner, TunerRun,
};
use lt_common::{secs, Secs};
use lt_dbms::{IndexCatalog, IndexSpec, TuningTarget};
use lt_workloads::Workload;

/// DB2 advisor options.
#[derive(Debug, Clone, Copy)]
pub struct Db2AdvisorOptions {
    /// Disk budget for indexes as a fraction of base data size.
    pub disk_budget_fraction: f64,
    /// Cap for the final full-workload measurement.
    pub eval_timeout: Secs,
}

impl Default for Db2AdvisorOptions {
    fn default() -> Self {
        Db2AdvisorOptions {
            disk_budget_fraction: 0.25,
            eval_timeout: secs(1200.0),
        }
    }
}

/// The DB2 Index Advisor baseline (index selection only).
#[derive(Debug, Clone, Copy, Default)]
pub struct Db2Advisor {
    /// Options.
    pub options: Db2AdvisorOptions,
}

impl Db2Advisor {
    /// Advisor with options.
    pub fn new(options: Db2AdvisorOptions) -> Self {
        Db2Advisor { options }
    }

    /// Recommends an index set under the disk budget (what-if only).
    pub fn recommend(&self, db: &dyn TuningTarget, workload: &Workload) -> Vec<IndexSpec> {
        let candidates = index_candidates(db, workload);
        let budget = (db.catalog().total_bytes() as f64 * self.options.disk_budget_fraction) as u64;
        let total_cost = |idx: &IndexCatalog| -> f64 {
            workload
                .queries
                .iter()
                .map(|q| db.explain_with_indexes(&q.parsed, idx).total_cost())
                .sum()
        };
        let size_of = |spec: &IndexSpec| -> u64 {
            let probe = lt_dbms::Index {
                id: lt_common::IndexId(u32::MAX),
                table: spec.table,
                columns: spec.columns.clone(),
                name: String::new(),
            };
            probe.bytes(db.catalog())
        };

        let mut chosen = IndexCatalog::new();
        let mut chosen_specs: Vec<IndexSpec> = Vec::new();
        let mut used_bytes = 0u64;
        let mut current = total_cost(&chosen);
        loop {
            // Pick the candidate with the best benefit/size ratio that fits.
            let mut best: Option<(usize, f64, f64)> = None; // (idx, ratio, cost)
            for (ci, cand) in candidates.iter().enumerate() {
                if chosen.find(cand.table, &cand.columns).is_some() {
                    continue;
                }
                let size = size_of(cand);
                if used_bytes + size > budget {
                    continue;
                }
                let mut trial = chosen.clone();
                trial.add(cand.table, cand.columns.clone(), None);
                let cost = total_cost(&trial);
                let benefit = current - cost;
                if benefit <= 0.0 {
                    continue;
                }
                let ratio = benefit / size.max(1) as f64;
                if best.map(|(_, r, _)| ratio > r).unwrap_or(true) {
                    best = Some((ci, ratio, cost));
                }
            }
            let Some((ci, _, cost)) = best else { break };
            let cand = &candidates[ci];
            used_bytes += size_of(cand);
            chosen.add(cand.table, cand.columns.clone(), None);
            chosen_specs.push(cand.clone());
            current = cost;
        }
        chosen_specs
    }
}

impl Tuner for Db2Advisor {
    fn name(&self) -> &'static str {
        "DB2 Advisor"
    }

    fn tune(&self, db: &mut dyn TuningTarget, workload: &Workload, _budget: Secs) -> TunerRun {
        let specs = self.recommend(db, workload);
        let config = config_from_values(&[], &specs);
        let mut run = TunerRun::empty();
        let (time, done) = measure_config(db, workload, &config, self.options.eval_timeout);
        run.configs_evaluated = 1;
        if done && record_improvement(&mut run.trajectory, &mut run.best_time, db.now(), time) {
            run.best_config = Some(config);
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_dbms::{Dbms, Hardware, SimDb};
    use lt_workloads::Benchmark;

    fn setup() -> (SimDb, Workload) {
        let w = Benchmark::TpchSf1.load();
        let db = SimDb::new(
            Dbms::Postgres,
            w.catalog.clone(),
            Hardware::p3_2xlarge(),
            31,
        );
        (db, w)
    }

    #[test]
    fn respects_the_disk_budget() {
        let (db, w) = setup();
        let advisor = Db2Advisor::default();
        let specs = advisor.recommend(&db, &w);
        assert!(!specs.is_empty());
        let total: u64 = specs
            .iter()
            .map(|s| {
                lt_dbms::Index {
                    id: lt_common::IndexId(0),
                    table: s.table,
                    columns: s.columns.clone(),
                    name: String::new(),
                }
                .bytes(db.catalog())
            })
            .sum();
        let budget =
            (db.catalog().total_bytes() as f64 * advisor.options.disk_budget_fraction) as u64;
        assert!(total <= budget, "{total} > {budget}");
    }

    #[test]
    fn tight_budget_recommends_fewer_indexes() {
        let (db, w) = setup();
        let loose = Db2Advisor::default().recommend(&db, &w);
        let tight = Db2Advisor::new(Db2AdvisorOptions {
            disk_budget_fraction: 0.01,
            ..Default::default()
        })
        .recommend(&db, &w);
        assert!(tight.len() <= loose.len());
    }

    #[test]
    fn run_measures_exactly_once() {
        let (mut db, w) = setup();
        let run = Db2Advisor::default().tune(&mut db, &w, secs(1e9));
        assert_eq!(run.configs_evaluated, 1);
        assert!(run.best_config.is_some());
    }
}
