//! A simulated DBMS tuning manual, and hint mining over it.
//!
//! DB-BERT and GPTuner both extract tuning hints from natural-language
//! documentation. We ship a condensed manual per system (the sentences are
//! paraphrases of the real PostgreSQL / MySQL documentation and of common
//! DBA folklore) and a small information-extraction pass that turns
//! sentences into `(knob, recommended value)` hints — percentages of RAM,
//! absolute sizes, multiples of the core count, or plain numbers.

use lt_dbms::hardware::parse_bytes;
use lt_dbms::knobs::{knob_def, Dbms, KnobValue};
use lt_dbms::Hardware;

/// A recommendation extracted from the manual.
#[derive(Debug, Clone, PartialEq)]
pub struct Hint {
    /// Target knob.
    pub knob: String,
    /// Recommended value, before grounding against the hardware.
    pub kind: HintKind,
}

/// The shape of a mined recommendation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HintKind {
    /// “… X% of the memory in your system”.
    PercentOfRam(f64),
    /// An absolute byte size (“set X to 1GB”).
    Bytes(u64),
    /// A multiple of the CPU core count.
    PerCore(f64),
    /// A plain number (cost constants, counts).
    Number(f64),
}

impl Hint {
    /// Grounds the hint into a concrete knob value for `hardware`,
    /// clamped to the knob's legal range.
    pub fn ground(&self, dbms: Dbms, hardware: Hardware) -> Option<KnobValue> {
        let def = knob_def(dbms, &self.knob)?;
        let raw = match self.kind {
            HintKind::PercentOfRam(p) => {
                KnobValue::Bytes((hardware.memory_bytes as f64 * p / 100.0) as u64)
            }
            HintKind::Bytes(b) => KnobValue::Bytes(b),
            HintKind::PerCore(f) => KnobValue::Int((hardware.cores as f64 * f).round() as i64),
            HintKind::Number(v) => KnobValue::Float(v),
        };
        Some(def.clamp(raw))
    }
}

/// The condensed tuning manual for a system.
pub fn manual_text(dbms: Dbms) -> &'static str {
    match dbms {
        Dbms::Postgres => {
            "A reasonable starting value for shared_buffers is 25% of the memory in \
             your system. \
             For analytical workloads, consider setting work_mem to 1GB so sorts and \
             hashes stay in memory. \
             Set effective_cache_size to 75% of the memory in your system to reflect \
             the OS page cache. \
             Set maintenance_work_mem to 2GB to speed up index builds. \
             Storage that is fast at random access justifies setting random_page_cost \
             to 1.1. \
             On SSDs, set effective_io_concurrency to 200. \
             Set checkpoint_completion_target to 0.9 to spread checkpoint writes. \
             Set wal_buffers to 16MB for write-heavy phases. \
             Set max_parallel_workers_per_gather to 0.5 per core to parallelize \
             large scans. \
             Set max_parallel_workers to 1 per core."
        }
        Dbms::Mysql => {
            "Set innodb_buffer_pool_size to 65% of the memory in your system on a \
             dedicated server. \
             For large joins, set join_buffer_size to 256MB. \
             For large sorts, set sort_buffer_size to 256MB. \
             Set tmp_table_size to 1GB to keep temporary tables in memory, and set \
             max_heap_table_size to 1GB to match. \
             Set innodb_log_file_size to 1GB for sustained write throughput. \
             Analytical workloads tolerate setting innodb_flush_log_at_trx_commit \
             to 2. \
             On SSDs, set innodb_io_capacity to 2000. \
             Set innodb_read_io_threads to 1 per core. \
             Set innodb_parallel_read_threads to 1 per core."
        }
    }
}

/// Mines `(knob, value)` hints from manual text: for each sentence that
/// names a registered knob, extract the recommendation that follows it.
pub fn mine_hints(text: &str, dbms: Dbms) -> Vec<Hint> {
    let mut hints = Vec::new();
    for sentence in split_sentences(text) {
        let sentence = sentence.as_str();
        let words: Vec<&str> = sentence.split_whitespace().collect();
        let Some(pos) = words.iter().position(|w| {
            knob_def(
                dbms,
                w.trim_matches(|c: char| !c.is_ascii_alphanumeric() && c != '_'),
            )
            .is_some()
        }) else {
            continue;
        };
        let knob = words[pos]
            .trim_matches(|c: char| !c.is_ascii_alphanumeric() && c != '_')
            .to_ascii_lowercase();
        // Scan the rest of the sentence for the first value-like token.
        let rest = &words[pos + 1..];
        let per_core = sentence.contains("per core");
        let percent = rest
            .iter()
            .find_map(|w| w.strip_suffix('%').and_then(|p| p.parse::<f64>().ok()));
        let value_token = rest.iter().find_map(|w| {
            let cleaned = w.trim_matches(|c: char| c == ',' || c == ';');
            if cleaned.ends_with('%') {
                return None;
            }
            if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                Some(cleaned.to_string())
            } else {
                None
            }
        });
        let kind = if let Some(p) = percent {
            HintKind::PercentOfRam(p)
        } else if let Some(tok) = value_token {
            if per_core {
                match tok.parse::<f64>() {
                    Ok(f) => HintKind::PerCore(f),
                    Err(_) => continue,
                }
            } else if tok.chars().any(|c| c.is_ascii_alphabetic()) {
                match parse_bytes(&tok) {
                    Some(b) => HintKind::Bytes(b),
                    None => continue,
                }
            } else {
                match tok.parse::<f64>() {
                    Ok(f) => HintKind::Number(f),
                    Err(_) => continue,
                }
            }
        } else {
            continue;
        };
        hints.push(Hint { knob, kind });
    }
    hints
}

/// Splits text into sentences on periods followed by whitespace (or end of
/// text), so decimal numbers like `1.1` survive intact.
fn split_sentences(text: &str) -> Vec<String> {
    let mut sentences = Vec::new();
    let mut current = String::new();
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '.' {
            match chars.peek() {
                Some(n) if n.is_whitespace() => {
                    sentences.push(std::mem::take(&mut current));
                }
                None => {}
                _ => current.push(c),
            }
        } else {
            current.push(c);
        }
    }
    if !current.trim().is_empty() {
        sentences.push(current);
    }
    sentences
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_dbms::hardware::GIB;

    #[test]
    fn mines_postgres_hints() {
        let hints = mine_hints(manual_text(Dbms::Postgres), Dbms::Postgres);
        let find = |k: &str| hints.iter().find(|h| h.knob == k);
        assert_eq!(
            find("shared_buffers").unwrap().kind,
            HintKind::PercentOfRam(25.0)
        );
        assert_eq!(find("work_mem").unwrap().kind, HintKind::Bytes(GIB));
        assert_eq!(
            find("random_page_cost").unwrap().kind,
            HintKind::Number(1.1)
        );
        assert_eq!(
            find("max_parallel_workers_per_gather").unwrap().kind,
            HintKind::PerCore(0.5)
        );
        assert!(hints.len() >= 8, "{hints:?}");
    }

    #[test]
    fn mines_mysql_hints() {
        let hints = mine_hints(manual_text(Dbms::Mysql), Dbms::Mysql);
        let find = |k: &str| hints.iter().find(|h| h.knob == k);
        assert_eq!(
            find("innodb_buffer_pool_size").unwrap().kind,
            HintKind::PercentOfRam(65.0)
        );
        assert_eq!(
            find("innodb_flush_log_at_trx_commit").unwrap().kind,
            HintKind::Number(2.0)
        );
    }

    #[test]
    fn grounding_respects_hardware_and_ranges() {
        let hw = Hardware::p3_2xlarge();
        let h = Hint {
            knob: "shared_buffers".into(),
            kind: HintKind::PercentOfRam(25.0),
        };
        let v = h.ground(Dbms::Postgres, hw).unwrap();
        // 25% of 61GB ≈ 15.25GB.
        let bytes = v.as_f64();
        assert!(
            bytes > 15.0 * GIB as f64 && bytes < 15.5 * GIB as f64,
            "{bytes}"
        );

        let h = Hint {
            knob: "max_parallel_workers_per_gather".into(),
            kind: HintKind::PerCore(0.5),
        };
        assert_eq!(h.ground(Dbms::Postgres, hw).unwrap(), KnobValue::Int(4));

        let h = Hint {
            knob: "nope".into(),
            kind: HintKind::Number(1.0),
        };
        assert!(h.ground(Dbms::Postgres, hw).is_none());
    }

    #[test]
    fn hints_for_unknown_knobs_are_dropped() {
        let hints = mine_hints(
            "Set made_up_parameter to 42. Set work_mem to 512MB.",
            Dbms::Postgres,
        );
        assert_eq!(hints.len(), 1);
        assert_eq!(hints[0].knob, "work_mem");
    }
}
