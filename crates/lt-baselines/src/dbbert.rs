//! DB-BERT — "a database tuning tool that reads the manual"
//! (Trummer, SIGMOD 2022).
//!
//! DB-BERT mines tuning hints from text (we mine [`crate::manual`]) and
//! then searches the *combinatorial space of hint combinations*: each hint
//! can be applied at several scaling factors (the original multiplies
//! recommended values by {0.25, 0.5, 1, 2, 4}) or skipped. A multi-armed
//! bandit over per-hint arms drives the search; every candidate is a full
//! workload evaluation under a timeout. Parameters only — DB-BERT does not
//! create indexes.

use crate::common::{config_from_values, measure_config, record_improvement, Tuner, TunerRun};
use crate::manual::{manual_text, mine_hints, Hint};
use lt_common::{secs, seeded_rng, Secs};
use lt_dbms::{KnobValue, TuningTarget};
use lt_workloads::Workload;

const SCALES: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// DB-BERT options.
#[derive(Debug, Clone, Copy)]
pub struct DbBertOptions {
    /// Per-evaluation cap on workload time.
    pub eval_timeout: Secs,
    /// Bandit exploration probability.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DbBertOptions {
    fn default() -> Self {
        DbBertOptions {
            eval_timeout: secs(300.0),
            epsilon: 0.2,
            seed: 0,
        }
    }
}

/// The DB-BERT baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct DbBert {
    /// Options.
    pub options: DbBertOptions,
}

impl DbBert {
    /// DB-BERT with options.
    pub fn new(options: DbBertOptions) -> Self {
        DbBert { options }
    }

    fn scaled(hint: &Hint, scale: f64, db: &dyn TuningTarget) -> Option<(String, KnobValue)> {
        let grounded = hint.ground(db.dbms(), db.hardware())?;
        let def = lt_dbms::knobs::knob_def(db.dbms(), &hint.knob)?;
        let scaled = def.clamp(match grounded {
            KnobValue::Bytes(b) => KnobValue::Bytes((b as f64 * scale) as u64),
            KnobValue::Float(f) => KnobValue::Float(f * scale),
            KnobValue::Int(i) => KnobValue::Int((i as f64 * scale).round() as i64),
            KnobValue::Bool(b) => KnobValue::Bool(b),
        });
        Some((hint.knob.clone(), scaled))
    }
}

impl Tuner for DbBert {
    fn name(&self) -> &'static str {
        "DB-Bert"
    }

    fn tune(&self, db: &mut dyn TuningTarget, workload: &Workload, budget: Secs) -> TunerRun {
        let opts = &self.options;
        let start = db.now();
        let mut rng = seeded_rng(opts.seed);
        let hints = mine_hints(manual_text(db.dbms()), db.dbms());
        if hints.is_empty() {
            return TunerRun::empty();
        }
        // Bandit state per hint: arm index (scale) plus include flag; value
        // estimates start optimistic at scale 1.0 included.
        let n = hints.len();
        // arm = SCALES.len() means "skip this hint".
        let num_arms = SCALES.len() + 1;
        let mut reward_sum = vec![vec![0.0f64; num_arms]; n];
        let mut reward_cnt = vec![vec![0u32; num_arms]; n];
        let mut run = TunerRun::empty();

        while db.now() - start < budget {
            // Choose an arm per hint: ε-greedy on mean reward (reward is
            // negative workload time, so higher is better).
            let choice: Vec<usize> = (0..n)
                .map(|h| {
                    if rng.gen_bool(opts.epsilon) {
                        rng.gen_range(0..num_arms)
                    } else {
                        (0..num_arms)
                            .max_by(|&a, &b| {
                                let ma = mean(reward_sum[h][a], reward_cnt[h][a]);
                                let mb = mean(reward_sum[h][b], reward_cnt[h][b]);
                                ma.partial_cmp(&mb).unwrap_or(std::cmp::Ordering::Equal)
                            })
                            .expect("arms exist")
                    }
                })
                .collect();
            let mut knobs: Vec<(String, KnobValue)> = Vec::new();
            for (h, &arm) in choice.iter().enumerate() {
                if arm == SCALES.len() {
                    continue; // skipped
                }
                if let Some(kv) = Self::scaled(&hints[h], SCALES[arm], db) {
                    knobs.push(kv);
                }
            }
            let borrowed: Vec<(&str, KnobValue)> =
                knobs.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            let config = config_from_values(&borrowed, &[]);
            let (time, done) = measure_config(db, workload, &config, opts.eval_timeout);
            run.configs_evaluated += 1;
            let reward = -time.as_f64();
            for (h, &arm) in choice.iter().enumerate() {
                reward_sum[h][arm] += reward;
                reward_cnt[h][arm] += 1;
            }
            if done && record_improvement(&mut run.trajectory, &mut run.best_time, db.now(), time) {
                run.best_config = Some(config);
            }
        }
        run
    }
}

fn mean(sum: f64, cnt: u32) -> f64 {
    if cnt == 0 {
        // Optimistic initialization encourages trying every arm once.
        0.0
    } else {
        sum / cnt as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_dbms::{Dbms, Hardware, SimDb};
    use lt_workloads::Benchmark;

    fn setup(dbms: Dbms) -> (SimDb, Workload) {
        let w = Benchmark::TpchSf1.load();
        let db = SimDb::new(dbms, w.catalog.clone(), Hardware::p3_2xlarge(), 13);
        (db, w)
    }

    #[test]
    fn dbbert_finds_a_hint_based_improvement() {
        let (mut db, w) = setup(Dbms::Postgres);
        let mut probe = SimDb::new(
            Dbms::Postgres,
            w.catalog.clone(),
            Hardware::p3_2xlarge(),
            13,
        );
        let (default_time, _) = crate::common::measure_workload(&mut probe, &w, Secs::INFINITY);
        let run = DbBert::default().tune(&mut db, &w, secs(2000.0));
        assert!(run.configs_evaluated >= 3);
        let best = run.best_config.expect("some configuration completes");
        assert!(best.index_specs().is_empty(), "DB-BERT is parameters-only");
        assert!(
            run.best_time < default_time,
            "hints should beat defaults: {} vs {default_time}",
            run.best_time
        );
    }

    #[test]
    fn dbbert_works_on_mysql_too() {
        let (mut db, w) = setup(Dbms::Mysql);
        let run = DbBert::default().tune(&mut db, &w, secs(1500.0));
        assert!(run.best_config.is_some());
        assert!(run.best_time.is_finite());
    }

    #[test]
    fn trajectory_improves_monotonically() {
        let (mut db, w) = setup(Dbms::Postgres);
        let run = DbBert::default().tune(&mut db, &w, secs(1200.0));
        for pair in run.trajectory.windows(2) {
            assert!(pair[0].best_workload_time >= pair[1].best_workload_time);
        }
    }
}
