//! Shared tuner interface and measurement helpers.

use lambda_tune::TrajectoryPoint;
use lt_common::{ColumnId, Secs};
use lt_dbms::{Configuration, IndexSpec, TuningTarget};
use lt_workloads::Workload;
use std::collections::HashMap;

/// Outcome of one baseline tuning run.
#[derive(Debug, Clone)]
pub struct TunerRun {
    /// Best configuration found (None when nothing completed in budget).
    pub best_config: Option<Configuration>,
    /// Full-workload execution time under the best configuration.
    pub best_time: Secs,
    /// Improvement events over optimization time.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Number of configurations evaluated (Table 4).
    pub configs_evaluated: u64,
}

impl TunerRun {
    /// An empty run (nothing found).
    pub fn empty() -> Self {
        TunerRun {
            best_config: None,
            best_time: Secs::INFINITY,
            trajectory: Vec::new(),
            configs_evaluated: 0,
        }
    }
}

/// A database tuning system under evaluation.
pub trait Tuner {
    /// Display name used in tables and figures.
    fn name(&self) -> &'static str;

    /// Tunes `db` for `workload` within `budget` virtual seconds of
    /// optimization time.
    fn tune(&self, db: &mut dyn TuningTarget, workload: &Workload, budget: Secs) -> TunerRun;
}

/// Executes the full workload under the *current* configuration with a
/// total-time cap. Returns the total time and whether all queries finished.
pub fn measure_workload(db: &mut dyn TuningTarget, workload: &Workload, cap: Secs) -> (Secs, bool) {
    let mut total = Secs::ZERO;
    for wq in &workload.queries {
        let remaining = (cap - total).clamp_non_negative();
        let outcome = db.execute(&wq.parsed, remaining);
        total += outcome.time;
        if !outcome.completed {
            return (total, false);
        }
    }
    (total, true)
}

/// Applies `config` (knobs + eager index builds), measures the workload
/// under `cap`, then drops the indexes. Returns `(time, completed)`;
/// `time` covers query execution only (reconfiguration is still charged to
/// the tuning clock, as on a real system).
pub fn measure_config(
    db: &mut dyn TuningTarget,
    workload: &Workload,
    config: &Configuration,
    cap: Secs,
) -> (Secs, bool) {
    db.apply_knobs(config);
    // Build only indexes that do not already exist (pre-built scenario
    // indexes are shared infrastructure and must survive the measurement).
    let mut built = Vec::new();
    for spec in config.index_specs() {
        if db.indexes().find(spec.table, &spec.columns).is_none() {
            let (id, _) = db.create_index(spec);
            built.push(id);
        }
    }
    let result = measure_workload(db, workload, cap);
    for id in built {
        db.drop_index(id);
    }
    result
}

/// Enumerates candidate single-column indexes for a workload: every join
/// or filter column, ranked by the total estimated cost of the operators
/// touching it (most promising first).
pub fn index_candidates(db: &dyn TuningTarget, workload: &Workload) -> Vec<IndexSpec> {
    let mut value: HashMap<ColumnId, f64> = HashMap::new();
    for wq in &workload.queries {
        let plan = db.explain(&wq.parsed);
        for (l, r, cost) in &plan.join_costs {
            *value.entry(*l).or_insert(0.0) += cost;
            *value.entry(*r).or_insert(0.0) += cost;
        }
        let preds = lt_dbms::stats::extract(&wq.parsed, db.catalog());
        for (table, terms) in &preds.filters {
            let table_cost = db.catalog().table(*table).pages(db.catalog()) as f64;
            for t in terms {
                *value.entry(t.column).or_insert(0.0) += table_cost * 0.1;
            }
        }
    }
    let mut ranked: Vec<(ColumnId, f64)> = value.into_iter().collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    ranked
        .into_iter()
        .map(|(col, _)| IndexSpec {
            table: db.catalog().column(col).table,
            columns: vec![col],
            name: None,
        })
        .collect()
}

/// Deduplicated trajectory push: records only improvements.
pub(crate) fn record_improvement(
    trajectory: &mut Vec<TrajectoryPoint>,
    best: &mut Secs,
    now: Secs,
    time: Secs,
) -> bool {
    if time < *best {
        *best = time;
        trajectory.push(TrajectoryPoint {
            opt_time: now,
            best_workload_time: time,
        });
        true
    } else {
        false
    }
}

/// A discrete search grid per tunable knob: the level sets UDO explores and
/// the other parameter tuners derive their ranges from. Grounded against
/// the machine's RAM and core count.
pub fn knob_grid(
    dbms: lt_dbms::Dbms,
    hardware: lt_dbms::Hardware,
) -> Vec<(&'static str, Vec<lt_dbms::KnobValue>)> {
    use lt_dbms::KnobValue as V;
    let ram = hardware.memory_bytes;
    let cores = hardware.cores as i64;
    let frac = |p: f64| V::Bytes((ram as f64 * p) as u64);
    let mib = |m: u64| V::Bytes(m << 20);
    let gib = |g: u64| V::Bytes(g << 30);
    match dbms {
        lt_dbms::Dbms::Postgres => vec![
            (
                "shared_buffers",
                vec![mib(128), gib(1), frac(0.125), frac(0.25), frac(0.5)],
            ),
            ("work_mem", vec![mib(4), mib(64), mib(256), gib(1), gib(4)]),
            ("effective_cache_size", vec![gib(4), frac(0.5), frac(0.75)]),
            ("maintenance_work_mem", vec![mib(64), gib(1), gib(2)]),
            (
                "random_page_cost",
                vec![V::Float(1.1), V::Float(2.0), V::Float(4.0)],
            ),
            (
                "effective_io_concurrency",
                vec![V::Int(1), V::Int(32), V::Int(200)],
            ),
            (
                "max_parallel_workers_per_gather",
                vec![V::Int(0), V::Int(2), V::Int(cores / 2), V::Int(cores)],
            ),
            (
                "max_parallel_workers",
                vec![V::Int(cores), V::Int(2 * cores)],
            ),
            (
                "checkpoint_completion_target",
                vec![V::Float(0.5), V::Float(0.9)],
            ),
            ("wal_buffers", vec![mib(16), mib(64)]),
        ],
        lt_dbms::Dbms::Mysql => vec![
            (
                "innodb_buffer_pool_size",
                vec![mib(128), gib(1), frac(0.25), frac(0.5), frac(0.65)],
            ),
            (
                "sort_buffer_size",
                vec![V::Bytes(256 << 10), mib(64), mib(256)],
            ),
            (
                "join_buffer_size",
                vec![V::Bytes(256 << 10), mib(64), mib(256)],
            ),
            ("tmp_table_size", vec![mib(16), gib(1), gib(2)]),
            ("max_heap_table_size", vec![mib(16), gib(1), gib(2)]),
            ("innodb_log_file_size", vec![mib(48), gib(1)]),
            ("innodb_flush_log_at_trx_commit", vec![V::Int(1), V::Int(2)]),
            (
                "innodb_io_capacity",
                vec![V::Int(200), V::Int(2000), V::Int(10_000)],
            ),
            ("innodb_read_io_threads", vec![V::Int(4), V::Int(cores)]),
            (
                "innodb_parallel_read_threads",
                vec![V::Int(4), V::Int(cores), V::Int(2 * cores)],
            ),
        ],
    }
}

/// Builds a [`Configuration`] from explicit knob assignments (+ optional
/// index specs) without going through script text.
pub fn config_from_values(
    knobs: &[(&str, lt_dbms::KnobValue)],
    indexes: &[IndexSpec],
) -> Configuration {
    let mut config = Configuration::default();
    for (name, value) in knobs {
        config.commands.push(lt_dbms::ConfigCommand::SetKnob {
            name: (*name).to_string(),
            value: *value,
        });
    }
    for spec in indexes {
        config
            .commands
            .push(lt_dbms::ConfigCommand::CreateIndex(spec.clone()));
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_dbms::{Dbms, Hardware, SimDb};
    use lt_workloads::Benchmark;

    fn setup() -> (SimDb, Workload) {
        let w = Benchmark::TpchSf1.load();
        let db = SimDb::new(Dbms::Postgres, w.catalog.clone(), Hardware::p3_2xlarge(), 3);
        (db, w)
    }

    #[test]
    fn measure_workload_completes_without_cap() {
        let (mut db, w) = setup();
        let (time, done) = measure_workload(&mut db, &w, Secs::INFINITY);
        assert!(done);
        assert!(time > Secs::ZERO);
    }

    #[test]
    fn measure_workload_respects_cap() {
        let (mut db, w) = setup();
        let cap = lt_common::secs(1.0);
        let (time, done) = measure_workload(&mut db, &w, cap);
        assert!(!done);
        assert!(time <= cap + lt_common::secs(1e-6));
    }

    #[test]
    fn measure_config_cleans_up_indexes() {
        let (mut db, w) = setup();
        let config = Configuration::parse(
            "ALTER SYSTEM SET work_mem = '1GB'; CREATE INDEX ON lineitem (l_orderkey);",
            Dbms::Postgres,
            db.catalog(),
        );
        let (time, done) = measure_config(&mut db, &w, &config, Secs::INFINITY);
        assert!(done && time > Secs::ZERO);
        assert!(db.indexes().is_empty());
    }

    #[test]
    fn index_candidates_rank_join_keys_high() {
        let (db, w) = setup();
        let cands = index_candidates(&db, &w);
        assert!(!cands.is_empty());
        // l_orderkey or o_orderkey should appear near the top.
        let top: Vec<&str> = cands
            .iter()
            .take(4)
            .map(|s| db.catalog().column(s.columns[0]).name.as_str())
            .collect();
        assert!(
            top.iter().any(|n| n.contains("orderkey")),
            "top candidates: {top:?}"
        );
    }

    #[test]
    fn record_improvement_only_on_progress() {
        let mut traj = Vec::new();
        let mut best = Secs::INFINITY;
        assert!(record_improvement(
            &mut traj,
            &mut best,
            lt_common::secs(1.0),
            lt_common::secs(10.0)
        ));
        assert!(!record_improvement(
            &mut traj,
            &mut best,
            lt_common::secs(2.0),
            lt_common::secs(11.0)
        ));
        assert!(record_improvement(
            &mut traj,
            &mut best,
            lt_common::secs(3.0),
            lt_common::secs(9.0)
        ));
        assert_eq!(traj.len(), 2);
    }
}
