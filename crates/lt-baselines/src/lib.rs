//! Baseline tuners the paper compares λ-Tune against (§6.1).
//!
//! Every baseline implements the same [`Tuner`] trait and runs against the
//! same simulated DBMS, observing only what its real counterpart observes:
//! EXPLAIN cost estimates, measured query times and timeout interrupts.
//!
//! | Baseline | Paper | Strategy reproduced here |
//! |---|---|---|
//! | UDO | Wang et al., VLDB 21 | reinforcement-learning search over knobs *and* indexes, evaluating workload samples |
//! | DB-BERT | Trummer, SIGMOD 22 | hints mined from a manual, combined by a bandit over hint scalings |
//! | GPTuner | Lao et al., VLDB 24 | LLM-pruned knob ranges + coarse-to-fine Bayesian-style optimization |
//! | LlamaTune | Kanellis et al., VLDB 22 | random linear projection to a low-dimensional space + random search |
//! | ParamTree | Yang et al., SIGMOD 23 | calibrates the five PostgreSQL optimizer cost constants, single trial |
//! | Dexter | — | greedy what-if index advisor |
//! | DB2 Advisor | Valentin et al., ICDE 00 | benefit/size knapsack what-if index advisor |

pub mod common;
pub mod db2advis;
pub mod dbbert;
pub mod dexter;
pub mod gptuner;
pub mod lambda;
pub mod llamatune;
pub mod manual;
pub mod paramtree;
pub mod udo;

pub use common::{index_candidates, measure_config, measure_workload, Tuner, TunerRun};
pub use db2advis::Db2Advisor;
pub use dbbert::DbBert;
pub use dexter::Dexter;
pub use gptuner::GpTuner;
pub use lambda::LambdaTuneBaseline;
pub use llamatune::LlamaTune;
pub use paramtree::ParamTree;
pub use udo::Udo;
