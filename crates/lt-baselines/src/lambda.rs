//! λ-Tune wrapped as a [`Tuner`] so the benchmark harness can treat it
//! uniformly with the baselines.

use crate::common::{Tuner, TunerRun};
use lambda_tune::{LambdaTune, LambdaTuneOptions};
use lt_common::Secs;
use lt_dbms::TuningTarget;
use lt_llm::{LlmClient, SimulatedLlm};
use lt_workloads::Workload;

/// λ-Tune under the baseline harness interface.
#[derive(Debug, Clone, Copy, Default)]
pub struct LambdaTuneBaseline {
    /// Pipeline options (k, temperature, budgets, ablation flags).
    pub options: LambdaTuneOptions,
}

impl LambdaTuneBaseline {
    /// λ-Tune with explicit options.
    pub fn new(options: LambdaTuneOptions) -> Self {
        LambdaTuneBaseline { options }
    }
}

impl Tuner for LambdaTuneBaseline {
    fn name(&self) -> &'static str {
        "λ-Tune"
    }

    fn tune(&self, db: &mut dyn TuningTarget, workload: &Workload, _budget: Secs) -> TunerRun {
        // λ-Tune terminates on its own (its selector bounds tuning time as
        // a function of the optimum), so the external budget is unused.
        let llm = LlmClient::new(SimulatedLlm::new());
        match LambdaTune::new(self.options).tune(db, workload, &llm) {
            Ok(result) => TunerRun {
                best_config: result.best_config,
                best_time: result.best_time,
                trajectory: result.trajectory,
                configs_evaluated: result.configs.len() as u64,
            },
            Err(_) => TunerRun::empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_common::secs;
    use lt_dbms::{Dbms, Hardware, SimDb};
    use lt_workloads::Benchmark;

    #[test]
    fn lambda_tune_under_the_tuner_interface() {
        let w = Benchmark::TpchSf1.load();
        let mut db = SimDb::new(
            Dbms::Postgres,
            w.catalog.clone(),
            Hardware::p3_2xlarge(),
            37,
        );
        let run = LambdaTuneBaseline::default().tune(&mut db, &w, secs(1e9));
        assert!(run.best_config.is_some());
        assert_eq!(run.configs_evaluated, 5, "k = 5 LLM samples");
        assert!(run.best_time.is_finite());
    }
}
