//! ParamTree — learned calibration of the optimizer's cost constants
//! (Yang et al., SIGMOD 2023).
//!
//! ParamTree tunes exactly five PostgreSQL planner constants
//! (`cpu_tuple_cost`, `cpu_operator_cost`, `cpu_index_tuple_cost`,
//! `seq_page_cost`, `random_page_cost`) by fitting them to observed
//! behaviour, on a per-operator basis; the paper averages the per-operator
//! recommendations since PostgreSQL takes a single value. We reproduce the
//! observable behaviour: probe a few queries under the default
//! configuration, grid-search constants that make planner cost proportional
//! to measured time, and recommend that single configuration — **one**
//! workload evaluation (Table 4 shows ParamTree at 1 trial). The scope is
//! narrow by design: no memory, parallelism or physical-design tuning, so
//! its configurations stay close to the default's performance — the shape
//! Table 3 reports.

use crate::common::{config_from_values, measure_config, record_improvement, Tuner, TunerRun};
use lt_common::{secs, Secs};
use lt_dbms::{Dbms, KnobValue, TuningTarget};
use lt_workloads::Workload;

/// ParamTree options.
#[derive(Debug, Clone, Copy)]
pub struct ParamTreeOptions {
    /// Per-evaluation cap for the single full-workload trial.
    pub eval_timeout: Secs,
    /// Number of probe queries used for calibration.
    pub probes: usize,
}

impl Default for ParamTreeOptions {
    fn default() -> Self {
        ParamTreeOptions {
            eval_timeout: secs(600.0),
            probes: 5,
        }
    }
}

/// The ParamTree baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParamTree {
    /// Options.
    pub options: ParamTreeOptions,
}

impl ParamTree {
    /// ParamTree with options.
    pub fn new(options: ParamTreeOptions) -> Self {
        ParamTree { options }
    }
}

impl Tuner for ParamTree {
    fn name(&self) -> &'static str {
        "ParamTree"
    }

    fn tune(&self, db: &mut dyn TuningTarget, workload: &Workload, _budget: Secs) -> TunerRun {
        let mut run = TunerRun::empty();
        if workload.is_empty() {
            return run;
        }
        // ParamTree only knows PostgreSQL's exposed cost constants; on
        // MySQL there is nothing it can set, so it evaluates the default
        // configuration once (matching the paper's near-default results).
        let knobs: Vec<(&str, KnobValue)> = if db.dbms() == Dbms::Postgres {
            self.calibrate(db, workload)
        } else {
            Vec::new()
        };
        let config = config_from_values(&knobs, &[]);
        let (time, done) = measure_config(db, workload, &config, self.options.eval_timeout);
        run.configs_evaluated = 1;
        if done && record_improvement(&mut run.trajectory, &mut run.best_time, db.now(), time) {
            run.best_config = Some(config);
        }
        run
    }
}

impl ParamTree {
    /// Calibrates the five planner constants: probe a few queries under
    /// defaults, then grid-search the page-cost ratio whose plan costs
    /// correlate best (in relative terms) with measured times, scaling the
    /// CPU constants to match the observed cost-to-time ratio.
    fn calibrate(
        &self,
        db: &mut dyn TuningTarget,
        workload: &Workload,
    ) -> Vec<(&'static str, KnobValue)> {
        let stride = (workload.len() / self.options.probes.max(1)).max(1);
        let probes: Vec<usize> = (0..workload.len())
            .step_by(stride)
            .take(self.options.probes)
            .collect();
        let mut measured: Vec<(usize, f64)> = Vec::new();
        for &qi in &probes {
            let outcome = db.execute(&workload.queries[qi].parsed, self.options.eval_timeout);
            measured.push((qi, outcome.time.as_f64()));
        }
        // Grid over random_page_cost candidates; keep the one minimizing
        // squared log-error between normalized plan costs and times.
        let mut best = (f64::INFINITY, 4.0);
        for rpc in [1.1, 1.5, 2.0, 3.0, 4.0] {
            let mut knobs = lt_dbms::KnobSet::defaults(Dbms::Postgres);
            knobs
                .set("random_page_cost", KnobValue::Float(rpc))
                .expect("known knob");
            let costs: Vec<f64> = measured
                .iter()
                .map(|(qi, _)| {
                    db.explain_with_knobs(&workload.queries[*qi].parsed, &knobs)
                        .total_cost()
                })
                .collect();
            let cost_sum: f64 = costs.iter().sum();
            let time_sum: f64 = measured.iter().map(|(_, t)| t).sum();
            if cost_sum <= 0.0 || time_sum <= 0.0 {
                continue;
            }
            let err: f64 = costs
                .iter()
                .zip(&measured)
                .map(|(c, (_, t))| {
                    let pc = (c / cost_sum).max(1e-12);
                    let pt = (t / time_sum).max(1e-12);
                    (pc.ln() - pt.ln()).powi(2)
                })
                .sum();
            if err < best.0 {
                best = (err, rpc);
            }
        }
        let rpc = best.1;
        // CPU constants scaled by the same per-operator averaging logic:
        // keep PostgreSQL's relative proportions, anchored at seq = 1.
        vec![
            ("seq_page_cost", KnobValue::Float(1.0)),
            ("random_page_cost", KnobValue::Float(rpc)),
            ("cpu_tuple_cost", KnobValue::Float(0.01)),
            ("cpu_index_tuple_cost", KnobValue::Float(0.005)),
            ("cpu_operator_cost", KnobValue::Float(0.0025)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_dbms::{Hardware, SimDb};
    use lt_workloads::Benchmark;

    fn setup() -> (SimDb, Workload) {
        let w = Benchmark::TpchSf1.load();
        let db = SimDb::new(
            Dbms::Postgres,
            w.catalog.clone(),
            Hardware::p3_2xlarge(),
            23,
        );
        (db, w)
    }

    #[test]
    fn paramtree_evaluates_exactly_one_configuration() {
        let (mut db, w) = setup();
        let run = ParamTree::default().tune(&mut db, &w, secs(10_000.0));
        assert_eq!(run.configs_evaluated, 1);
        let cfg = run.best_config.expect("single trial completes");
        // Only the five optimizer constants, nothing else.
        let names: Vec<&str> = cfg.knob_changes().map(|(n, _)| n).collect();
        assert!(names.len() <= 5);
        for n in names {
            assert!(
                n.contains("cost"),
                "ParamTree must only touch cost constants, got {n}"
            );
        }
        assert!(cfg.index_specs().is_empty());
    }

    #[test]
    fn paramtree_on_mysql_falls_back_to_defaults() {
        let w = Benchmark::TpchSf1.load();
        let mut db = SimDb::new(Dbms::Mysql, w.catalog.clone(), Hardware::p3_2xlarge(), 23);
        let run = ParamTree::default().tune(&mut db, &w, secs(10_000.0));
        assert_eq!(run.configs_evaluated, 1);
        if let Some(cfg) = run.best_config {
            assert_eq!(cfg.knob_changes().count(), 0);
        }
    }

    #[test]
    fn paramtree_never_dramatically_beats_defaults() {
        // Its tuning scope excludes the knobs that matter for OLAP, so the
        // result stays within ~25% of default performance.
        let (mut db, w) = setup();
        let mut probe = SimDb::new(
            Dbms::Postgres,
            w.catalog.clone(),
            Hardware::p3_2xlarge(),
            23,
        );
        let (default_time, _) = crate::common::measure_workload(&mut probe, &w, Secs::INFINITY);
        let run = ParamTree::default().tune(&mut db, &w, secs(10_000.0));
        assert!(run.best_time.as_f64() > default_time.as_f64() * 0.5);
    }
}
