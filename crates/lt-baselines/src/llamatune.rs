//! LlamaTune — sample-efficient DBMS tuning via dimensionality reduction
//! (Kanellis et al., VLDB 2022).
//!
//! LlamaTune searches a random low-dimensional linear subspace of the knob
//! space (HeSBO-style projection): each latent dimension maps to a bucket
//! of knobs with a random sign, and candidates are sampled in the latent
//! cube, decoded to knob values on a log scale between each knob's search
//! bounds. Unlike the hint-based systems it has **no prior** pulling it
//! toward reasonable regions, so some samples are very bad — the behaviour
//! the paper observes ("suffers from configurations with high run times in
//! some scenarios"). Parameters only.

use crate::common::{
    config_from_values, knob_grid, measure_config, record_improvement, Tuner, TunerRun,
};
use lt_common::{secs, seeded_rng, Secs};
use lt_dbms::knobs::knob_def;
use lt_dbms::{KnobValue, TuningTarget};
use lt_workloads::Workload;

/// LlamaTune options.
#[derive(Debug, Clone, Copy)]
pub struct LlamaTuneOptions {
    /// Per-evaluation cap on workload time.
    pub eval_timeout: Secs,
    /// Latent dimensionality (the paper's best setting is 16).
    pub latent_dims: usize,
    /// RNG seed (also fixes the random projection).
    pub seed: u64,
}

impl Default for LlamaTuneOptions {
    fn default() -> Self {
        LlamaTuneOptions {
            eval_timeout: secs(300.0),
            latent_dims: 16,
            seed: 0,
        }
    }
}

/// The LlamaTune baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct LlamaTune {
    /// Options.
    pub options: LlamaTuneOptions,
}

impl LlamaTune {
    /// LlamaTune with options.
    pub fn new(options: LlamaTuneOptions) -> Self {
        LlamaTune { options }
    }
}

impl Tuner for LlamaTune {
    fn name(&self) -> &'static str {
        "LlamaTune"
    }

    fn tune(&self, db: &mut dyn TuningTarget, workload: &Workload, budget: Secs) -> TunerRun {
        let opts = &self.options;
        let start = db.now();
        let mut rng = seeded_rng(opts.seed);
        // Knob search bounds from the grid (min/max of the level sets).
        let grid = knob_grid(db.dbms(), db.hardware());
        let bounds: Vec<(&'static str, f64, f64)> = grid
            .iter()
            .map(|(name, levels)| {
                let lo = levels
                    .iter()
                    .map(|v| v.as_f64())
                    .fold(f64::INFINITY, f64::min);
                let hi = levels.iter().map(|v| v.as_f64()).fold(0.0f64, f64::max);
                (*name, lo.max(1e-6), hi.max(1e-6))
            })
            .collect();
        // HeSBO projection: knob i ← latent[bucket(i)] * sign(i).
        let buckets: Vec<usize> = (0..bounds.len())
            .map(|_| rng.gen_range(0..opts.latent_dims))
            .collect();
        let signs: Vec<f64> = (0..bounds.len())
            .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
            .collect();

        let mut run = TunerRun::empty();
        while db.now() - start < budget {
            // Sample in the latent cube [0, 1]^d.
            let latent: Vec<f64> = (0..opts.latent_dims).map(|_| rng.gen_f64()).collect();
            let knobs: Vec<(&str, KnobValue)> = bounds
                .iter()
                .enumerate()
                .filter_map(|(i, (name, lo, hi))| {
                    let mut u = latent[buckets[i]];
                    if signs[i] < 0.0 {
                        u = 1.0 - u;
                    }
                    // Log-scale decode between the bounds.
                    let value = lo * (hi / lo).powf(u);
                    let def = knob_def(db.dbms(), name)?;
                    let typed = def.clamp(match def.default {
                        KnobValue::Bytes(_) => KnobValue::Bytes(value as u64),
                        KnobValue::Float(_) => KnobValue::Float(value),
                        KnobValue::Int(_) => KnobValue::Int(value.round() as i64),
                        KnobValue::Bool(b) => KnobValue::Bool(b),
                    });
                    Some((*name, typed))
                })
                .collect();
            let config = config_from_values(&knobs, &[]);
            let (time, done) = measure_config(db, workload, &config, opts.eval_timeout);
            run.configs_evaluated += 1;
            if done && record_improvement(&mut run.trajectory, &mut run.best_time, db.now(), time) {
                run.best_config = Some(config);
            }
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_dbms::{Dbms, Hardware, SimDb};
    use lt_workloads::Benchmark;

    fn setup() -> (SimDb, Workload) {
        let w = Benchmark::TpchSf1.load();
        let db = SimDb::new(
            Dbms::Postgres,
            w.catalog.clone(),
            Hardware::p3_2xlarge(),
            19,
        );
        (db, w)
    }

    #[test]
    fn llamatune_finds_some_complete_configuration() {
        let (mut db, w) = setup();
        let run = LlamaTune::default().tune(&mut db, &w, secs(2500.0));
        assert!(run.configs_evaluated >= 3);
        assert!(run.best_config.is_some());
        assert!(run.best_time.is_finite());
    }

    #[test]
    fn projection_is_deterministic_per_seed() {
        let (mut db1, w) = setup();
        let (mut db2, _) = setup();
        let a = LlamaTune::default().tune(&mut db1, &w, secs(800.0));
        let b = LlamaTune::default().tune(&mut db2, &w, secs(800.0));
        assert_eq!(a.best_time, b.best_time);
        let c = LlamaTune::new(LlamaTuneOptions {
            seed: 9,
            ..Default::default()
        });
        let (mut db3, _) = setup();
        let c_run = c.tune(&mut db3, &w, secs(800.0));
        // Different seed explores a different subspace (almost surely a
        // different evaluation count or best time).
        assert!(c_run.best_time != a.best_time || c_run.configs_evaluated != a.configs_evaluated);
    }

    #[test]
    fn parameters_only() {
        let (mut db, w) = setup();
        let run = LlamaTune::default().tune(&mut db, &w, secs(800.0));
        if let Some(cfg) = run.best_config {
            assert!(cfg.index_specs().is_empty());
        }
    }
}
