//! UDO — universal database optimization via reinforcement learning
//! (Wang et al., VLDB 2021).
//!
//! UDO explores knob settings *and* index choices jointly with an RL-style
//! search, evaluating candidate configurations on **workload samples**
//! rather than the full workload (which makes its measurements noisy, as
//! the paper notes). We reproduce it as ε-greedy local search over a
//! discrete state space: one dimension per grid knob plus one boolean per
//! candidate index. Whenever a sample evaluation improves the incumbent,
//! the full workload is re-executed to obtain a comparable measurement
//! (the paper does exactly this re-execution for fairness).

use crate::common::{
    config_from_values, index_candidates, knob_grid, measure_config, record_improvement, Tuner,
    TunerRun,
};
use lt_common::{secs, seeded_rng, Secs};
use lt_dbms::{Configuration, IndexSpec, KnobValue, TuningTarget};
use lt_workloads::Workload;

/// UDO options.
#[derive(Debug, Clone, Copy)]
pub struct UdoOptions {
    /// Per-evaluation cap on workload-sample time.
    pub eval_timeout: Secs,
    /// Number of queries per workload sample.
    pub sample_size: usize,
    /// Exploration probability.
    pub epsilon: f64,
    /// Include index actions (false restricts UDO to parameters —
    /// Scenario 1).
    pub tune_indexes: bool,
    /// Maximum candidate indexes considered.
    pub max_index_candidates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UdoOptions {
    fn default() -> Self {
        UdoOptions {
            eval_timeout: secs(300.0),
            sample_size: 4,
            epsilon: 0.3,
            tune_indexes: true,
            max_index_candidates: 8,
            seed: 0,
        }
    }
}

/// The UDO baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Udo {
    /// Options.
    pub options: UdoOptions,
}

#[derive(Clone)]
struct State {
    knob_levels: Vec<usize>,
    index_on: Vec<bool>,
}

impl Udo {
    /// UDO with options.
    pub fn new(options: UdoOptions) -> Self {
        Udo { options }
    }

    fn materialize(
        &self,
        state: &State,
        grid: &[(&'static str, Vec<KnobValue>)],
        candidates: &[IndexSpec],
    ) -> Configuration {
        let knobs: Vec<(&str, KnobValue)> = grid
            .iter()
            .zip(&state.knob_levels)
            .map(|((name, levels), &l)| (*name, levels[l]))
            .collect();
        let indexes: Vec<IndexSpec> = candidates
            .iter()
            .zip(&state.index_on)
            .filter(|(_, &on)| on)
            .map(|(s, _)| s.clone())
            .collect();
        config_from_values(&knobs, &indexes)
    }

    /// Evaluates a configuration on a rotating workload sample; the reward
    /// is the sample's **slowdown ratio** against the same queries' default
    /// times, which makes rewards comparable across rounds even though each
    /// round samples different queries.
    fn sample_eval(
        &self,
        db: &mut dyn TuningTarget,
        workload: &Workload,
        config: &Configuration,
        round: usize,
        default_times: &[Secs],
    ) -> f64 {
        db.apply_knobs(config);
        let mut built = Vec::new();
        for spec in config.index_specs() {
            if db.indexes().find(spec.table, &spec.columns).is_none() {
                let (id, _) = db.create_index(spec);
                built.push(id);
            }
        }
        let n = workload.len();
        let k = self.options.sample_size.min(n).max(1);
        let mut total = Secs::ZERO;
        let mut baseline = Secs::ZERO;
        let mut interrupted = false;
        for i in 0..k {
            let qi = (round * k + i) % n;
            baseline += default_times[qi];
            let remaining = (self.options.eval_timeout - total).clamp_non_negative();
            let outcome = db.execute(&workload.queries[qi].parsed, remaining);
            total += outcome.time;
            if !outcome.completed {
                interrupted = true;
                break;
            }
        }
        for id in built {
            db.drop_index(id);
        }
        if interrupted {
            f64::INFINITY
        } else {
            total.as_f64() / baseline.as_f64().max(1e-9)
        }
    }
}

impl Tuner for Udo {
    fn name(&self) -> &'static str {
        "UDO"
    }

    fn tune(&self, db: &mut dyn TuningTarget, workload: &Workload, budget: Secs) -> TunerRun {
        let opts = &self.options;
        let start = db.now();
        let mut rng = seeded_rng(opts.seed);
        let grid = knob_grid(db.dbms(), db.hardware());
        let candidates: Vec<IndexSpec> = if opts.tune_indexes {
            index_candidates(db, workload)
                .into_iter()
                .take(opts.max_index_candidates)
                .collect()
        } else {
            Vec::new()
        };

        // Probe each query's default time once: the reward normalizer and
        // the run's initial incumbent (RL starts from the default state).
        let mut default_times: Vec<Secs> = Vec::with_capacity(workload.len());
        let mut default_total = Secs::ZERO;
        let mut default_complete = true;
        for wq in &workload.queries {
            let outcome = db.execute(&wq.parsed, opts.eval_timeout);
            default_complete &= outcome.completed;
            default_times.push(outcome.time);
            default_total += outcome.time;
        }
        let mut run = TunerRun::empty();
        if default_complete
            && record_improvement(
                &mut run.trajectory,
                &mut run.best_time,
                db.now(),
                default_total,
            )
        {
            run.best_config = Some(Configuration::default());
        }

        let mut state = State {
            knob_levels: vec![0; grid.len()],
            index_on: vec![false; candidates.len()],
        };
        let mut state_reward = f64::INFINITY;
        let mut best_state = state.clone();
        let mut round = 0usize;

        while db.now() - start < budget {
            round += 1;
            // ε-greedy action: mutate one to three dimensions.
            let mut next = state.clone();
            let dims = grid.len() + candidates.len();
            let mutations = 1 + rng.gen_range(0..3usize).min(dims - 1);
            for _ in 0..mutations {
                let dim = rng.gen_range(0..dims);
                if dim < grid.len() {
                    let levels = grid[dim].1.len();
                    next.knob_levels[dim] = if rng.gen_bool(opts.epsilon) {
                        rng.gen_range(0..levels)
                    } else {
                        (state.knob_levels[dim] + 1) % levels
                    };
                } else {
                    let i = dim - grid.len();
                    next.index_on[i] = !next.index_on[i];
                }
            }

            let config = self.materialize(&next, &grid, &candidates);
            let reward = self.sample_eval(db, workload, &config, round, &default_times);
            run.configs_evaluated += 1;

            if reward < state_reward || rng.gen_bool(opts.epsilon * 0.3) {
                // Accept the move.
                state = next.clone();
                if reward < state_reward {
                    state_reward = reward;
                    best_state = next;
                }
            }
            // Periodically (and on improvements) re-execute the best-known
            // state on the full workload for a comparable measurement (the
            // paper re-executes UDO's configurations the same way).
            if round.is_multiple_of(8) {
                let best_config = self.materialize(&best_state, &grid, &candidates);
                let (full, done) = measure_config(db, workload, &best_config, opts.eval_timeout);
                if done
                    && record_improvement(&mut run.trajectory, &mut run.best_time, db.now(), full)
                {
                    run.best_config = Some(best_config);
                }
            }
        }
        // Final comparable measurement of the best-known state, with a
        // generous cap so the run always reports a full-workload number.
        let best_config = self.materialize(&best_state, &grid, &candidates);
        let (full, done) = measure_config(db, workload, &best_config, opts.eval_timeout * 4.0);
        if done && record_improvement(&mut run.trajectory, &mut run.best_time, db.now(), full) {
            run.best_config = Some(best_config);
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_dbms::{Dbms, Hardware, SimDb};
    use lt_workloads::Benchmark;

    fn setup() -> (SimDb, Workload) {
        let w = Benchmark::TpchSf1.load();
        let db = SimDb::new(
            Dbms::Postgres,
            w.catalog.clone(),
            Hardware::p3_2xlarge(),
            11,
        );
        (db, w)
    }

    #[test]
    fn udo_improves_over_defaults_given_budget() {
        let (mut db, w) = setup();
        let mut probe = SimDb::new(
            Dbms::Postgres,
            w.catalog.clone(),
            Hardware::p3_2xlarge(),
            11,
        );
        let (default_time, _) = crate::common::measure_workload(&mut probe, &w, Secs::INFINITY);

        let run = Udo::default().tune(&mut db, &w, secs(3000.0));
        assert!(run.configs_evaluated > 10, "{}", run.configs_evaluated);
        assert!(run.best_config.is_some());
        assert!(
            run.best_time < default_time * 1.05,
            "UDO best {} vs default {default_time}",
            run.best_time
        );
    }

    #[test]
    fn udo_respects_budget() {
        let (mut db, w) = setup();
        let start = db.now();
        let budget = secs(200.0);
        Udo::default().tune(&mut db, &w, budget);
        // One in-flight evaluation may overshoot, bounded by the eval cap.
        assert!(db.now() - start <= budget + UdoOptions::default().eval_timeout * 2.0);
    }

    #[test]
    fn params_only_mode_produces_no_indexes() {
        let (mut db, w) = setup();
        let options = UdoOptions {
            tune_indexes: false,
            ..Default::default()
        };
        let run = Udo::new(options).tune(&mut db, &w, secs(800.0));
        if let Some(cfg) = run.best_config {
            assert!(cfg.index_specs().is_empty());
        }
    }

    #[test]
    fn udo_is_deterministic_for_a_seed() {
        let (mut db1, w) = setup();
        let (mut db2, _) = setup();
        let a = Udo::default().tune(&mut db1, &w, secs(400.0));
        let b = Udo::default().tune(&mut db2, &w, secs(400.0));
        assert_eq!(a.configs_evaluated, b.configs_evaluated);
        assert_eq!(a.best_time, b.best_time);
    }
}
