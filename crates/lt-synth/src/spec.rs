//! Declarative workload specifications.
//!
//! A [`WorkloadSpec`] describes a query workload by its *statistics*, not
//! its SQL: how many queries, over which benchmark schema, with which
//! join-shape mix (chain / star / clique and a depth range), which
//! predicate-selectivity band (the workload's cost/cardinality profile,
//! expressed in the same log₂ buckets the drift profiles use), how
//! skewed the table-access distribution is (Zipf over the join-graph
//! tables, heaviest tables first), and within which conformance
//! tolerance the compiled workload must land. The synthesis engine
//! ([`crate::Synthesizer`]) turns a spec into a concrete, catalog-valid
//! [`lt_workloads::Workload`].
//!
//! Specs cross process boundaries (the `POST /sessions/<id>/queries`
//! `"spec"` body, `synth_bench` scenario files), so they parse from and
//! render to JSON with the same strict-validation style as the serve
//! layer's `TuneRequest`.

use lt_common::json::Value;
use lt_common::{json, LtError, Result};
use lt_workloads::Benchmark;

/// Ceiling on `queries` so a client-supplied spec cannot request an
/// unbounded generation loop. Matches the serve layer's feed cap.
pub const MAX_SPEC_QUERIES: usize = 512;

/// Hard ceiling on join depth: the densest join graph we ship (TPC-DS)
/// supports stars of this order around its fact tables.
pub const MAX_SPEC_DEPTH: usize = 8;

/// Relative weights of the three join shapes a spec can ask for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinMix {
    /// Path-shaped joins: `a – b – c – …`.
    pub chain: f64,
    /// One anchor joined to `depth − 1` satellites.
    pub star: f64,
    /// Anchor + neighbours with *every* available edge among them.
    pub clique: f64,
}

impl Default for JoinMix {
    fn default() -> Self {
        JoinMix {
            chain: 0.5,
            star: 0.3,
            clique: 0.2,
        }
    }
}

impl JoinMix {
    /// Weights normalized to sum to 1, in `[chain, star, clique]` order.
    pub fn normalized(&self) -> [f64; 3] {
        let sum = (self.chain + self.star + self.clique).max(1e-12);
        [self.chain / sum, self.star / sum, self.clique / sum]
    }
}

/// Declarative description of one synthetic workload; see module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name (also the label prefix of generated queries).
    pub name: String,
    /// Benchmark whose catalog (schema + statistics) the queries target.
    pub benchmark: Benchmark,
    /// Number of queries to generate (1 ..= [`MAX_SPEC_QUERIES`]).
    pub queries: usize,
    /// Seed of every draw the engine makes (defaults to `LT_SYNTH_SEED`).
    pub seed: u64,
    /// Join-shape mix for multi-table queries.
    pub join_mix: JoinMix,
    /// Minimum tables per query (≥ 1; 1 admits single-table scans).
    pub depth_min: usize,
    /// Maximum tables per query (≤ [`MAX_SPEC_DEPTH`]).
    pub depth_max: usize,
    /// Zipf exponent of the anchor-table distribution over the join
    /// graph's tables, heaviest (most rows) first. 0 = uniform.
    pub skew: f64,
    /// Fraction of queries carrying a filter predicate.
    pub filter_rate: f64,
    /// Target selectivity band: lowest log₂ bucket (1 bucket ≙ one
    /// halving of the filtered table's cardinality).
    pub bucket_min: i64,
    /// Highest log₂ bucket of the band.
    pub bucket_max: i64,
    /// Declared conformance tolerance: achieved shape-mix and
    /// anchor-frequency deviations must stay within this bound.
    pub tolerance: f64,
}

/// Base seed for specs that do not pin one (`LT_SYNTH_SEED`, default 42).
pub fn default_seed() -> u64 {
    std::env::var("LT_SYNTH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// Validation-retry cap of the generation loop (`LT_SYNTH_RETRY_MAX`,
/// default 4): attempts per query before the engine gives up.
pub fn retry_max() -> usize {
    std::env::var("LT_SYNTH_RETRY_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize)
        .max(1)
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            name: "synth".to_string(),
            benchmark: Benchmark::TpchSf1,
            queries: 16,
            seed: default_seed(),
            join_mix: JoinMix::default(),
            depth_min: 2,
            depth_max: 4,
            skew: 0.8,
            filter_rate: 0.75,
            bucket_min: 0,
            bucket_max: 8,
            tolerance: 0.2,
        }
    }
}

impl WorkloadSpec {
    /// Strictly validates the spec's internal consistency.
    pub fn validate(&self) -> Result<()> {
        let bad = |msg: String| Err(LtError::Config(msg));
        if self.queries == 0 || self.queries > MAX_SPEC_QUERIES {
            return bad(format!(
                "spec queries must be in 1..={MAX_SPEC_QUERIES}, got {}",
                self.queries
            ));
        }
        if self.depth_min == 0 || self.depth_min > self.depth_max || self.depth_max > MAX_SPEC_DEPTH
        {
            return bad(format!(
                "spec depth range {}..={} invalid (1..={MAX_SPEC_DEPTH})",
                self.depth_min, self.depth_max
            ));
        }
        let [c, s, k] = self.join_mix.normalized();
        if !(c.is_finite() && s.is_finite() && k.is_finite()) || c < 0.0 || s < 0.0 || k < 0.0 {
            return bad("spec join_mix weights must be finite and non-negative".to_string());
        }
        if !(0.0..=2.0).contains(&self.skew) || !self.skew.is_finite() {
            return bad(format!("spec skew must be in 0..=2, got {}", self.skew));
        }
        if !(0.0..=1.0).contains(&self.filter_rate) {
            return bad(format!(
                "spec filter_rate must be in 0..=1, got {}",
                self.filter_rate
            ));
        }
        if self.bucket_min < 0 || self.bucket_min > self.bucket_max || self.bucket_max > 40 {
            return bad(format!(
                "spec bucket band {}..={} invalid (0..=40)",
                self.bucket_min, self.bucket_max
            ));
        }
        if !(0.0..=1.0).contains(&self.tolerance) {
            return bad(format!(
                "spec tolerance must be in 0..=1, got {}",
                self.tolerance
            ));
        }
        Ok(())
    }

    /// Parses a spec from its JSON form. Every field is optional — absent
    /// fields keep their [`Default`] — but present fields are strictly
    /// typed and range-checked, so a malformed client spec is a
    /// [`LtError::Config`], never a silently defaulted value.
    pub fn from_json(doc: &Value) -> Result<WorkloadSpec> {
        let bad = |msg: &str| LtError::Config(format!("bad workload spec: {msg}"));
        if doc.as_object().is_none() {
            return Err(bad("spec must be a JSON object"));
        }
        let mut spec = WorkloadSpec::default();
        let known = [
            "name",
            "benchmark",
            "queries",
            "seed",
            "join_mix",
            "depth_min",
            "depth_max",
            "skew",
            "filter_rate",
            "bucket_min",
            "bucket_max",
            "tolerance",
        ];
        for (key, _) in doc.as_object().expect("checked above") {
            if !known.contains(&key.as_str()) {
                return Err(bad(&format!("unknown field {key:?}")));
            }
        }
        if let Some(v) = doc.get("name") {
            spec.name = v
                .as_str()
                .ok_or_else(|| bad("\"name\" must be a string"))?
                .to_string();
        }
        if let Some(v) = doc.get("benchmark") {
            let name = v
                .as_str()
                .ok_or_else(|| bad("\"benchmark\" must be a string"))?;
            spec.benchmark = Benchmark::parse(name)?;
        }
        let uint = |v: &Value, field: &str| -> Result<usize> {
            match v.as_i64() {
                Some(n) if n >= 0 => Ok(n as usize),
                _ => Err(bad(&format!("{field:?} must be a non-negative integer"))),
            }
        };
        let float = |v: &Value, field: &str| -> Result<f64> {
            v.as_f64()
                .filter(|f| f.is_finite())
                .ok_or_else(|| bad(&format!("{field:?} must be a finite number")))
        };
        if let Some(v) = doc.get("queries") {
            spec.queries = uint(v, "queries")?;
        }
        if let Some(v) = doc.get("seed") {
            // Seeds are full 64-bit values (`derive_seed` uses the whole
            // range); JSON integers are i64, so the wire format is the
            // i64 bit-pattern — negative values round-trip, they are not
            // rejected.
            spec.seed = v
                .as_i64()
                .ok_or_else(|| bad("\"seed\" must be an integer"))? as u64;
        }
        if let Some(v) = doc.get("join_mix") {
            if v.as_object().is_none() {
                return Err(bad("\"join_mix\" must be an object"));
            }
            for (key, _) in v.as_object().expect("checked above") {
                if !["chain", "star", "clique"].contains(&key.as_str()) {
                    return Err(bad(&format!("unknown join_mix field {key:?}")));
                }
            }
            if let Some(c) = v.get("chain") {
                spec.join_mix.chain = float(c, "join_mix.chain")?;
            }
            if let Some(s) = v.get("star") {
                spec.join_mix.star = float(s, "join_mix.star")?;
            }
            if let Some(k) = v.get("clique") {
                spec.join_mix.clique = float(k, "join_mix.clique")?;
            }
        }
        if let Some(v) = doc.get("depth_min") {
            spec.depth_min = uint(v, "depth_min")?;
        }
        if let Some(v) = doc.get("depth_max") {
            spec.depth_max = uint(v, "depth_max")?;
        }
        if let Some(v) = doc.get("skew") {
            spec.skew = float(v, "skew")?;
        }
        if let Some(v) = doc.get("filter_rate") {
            spec.filter_rate = float(v, "filter_rate")?;
        }
        if let Some(v) = doc.get("bucket_min") {
            spec.bucket_min = uint(v, "bucket_min")? as i64;
        }
        if let Some(v) = doc.get("bucket_max") {
            spec.bucket_max = uint(v, "bucket_max")? as i64;
        }
        if let Some(v) = doc.get("tolerance") {
            spec.tolerance = float(v, "tolerance")?;
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Renders the spec back to JSON ([`WorkloadSpec::from_json`]'s exact
    /// inverse; benchmark as its canonical display name).
    pub fn to_json(&self) -> Value {
        json!({
            "name": self.name.clone(),
            "benchmark": self.benchmark.name(),
            "queries": self.queries as i64,
            "seed": self.seed as i64,
            "join_mix": json!({
                "chain": self.join_mix.chain,
                "star": self.join_mix.star,
                "clique": self.join_mix.clique,
            }),
            "depth_min": self.depth_min as i64,
            "depth_max": self.depth_max as i64,
            "skew": self.skew,
            "filter_rate": self.filter_rate,
            "bucket_min": self.bucket_min,
            "bucket_max": self.bucket_max,
            "tolerance": self.tolerance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let spec = WorkloadSpec {
            name: "rt".to_string(),
            benchmark: Benchmark::Job,
            queries: 24,
            seed: 7,
            join_mix: JoinMix {
                chain: 0.2,
                star: 0.5,
                clique: 0.3,
            },
            depth_min: 2,
            depth_max: 5,
            skew: 1.25,
            filter_rate: 0.5,
            bucket_min: 1,
            bucket_max: 6,
            tolerance: 0.1,
        };
        let back = WorkloadSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        // Derived seeds use the full u64 range; the i64 bit-pattern on
        // the wire must round-trip, not reject as negative.
        let wide = WorkloadSpec {
            seed: u64::MAX - 5,
            ..WorkloadSpec::default()
        };
        let back = WorkloadSpec::from_json(&wide.to_json()).unwrap();
        assert_eq!(back.seed, wide.seed);
    }

    #[test]
    fn absent_fields_default_and_unknown_fields_reject() {
        let spec = WorkloadSpec::from_json(&lt_common::json::parse("{}").unwrap()).unwrap();
        assert_eq!(spec, WorkloadSpec::default());
        let err = WorkloadSpec::from_json(&lt_common::json::parse(r#"{"quries": 3}"#).unwrap())
            .unwrap_err();
        assert!(err.message().contains("unknown field"), "{err}");
    }

    #[test]
    fn out_of_range_fields_reject() {
        for bad in [
            r#"{"queries": 0}"#,
            r#"{"queries": 100000}"#,
            r#"{"depth_min": 0}"#,
            r#"{"depth_min": 4, "depth_max": 2}"#,
            r#"{"depth_max": 99}"#,
            r#"{"skew": -1.0}"#,
            r#"{"filter_rate": 1.5}"#,
            r#"{"bucket_min": 9, "bucket_max": 3}"#,
            r#"{"tolerance": 2.0}"#,
            r#"{"benchmark": "tpcc"}"#,
            r#"{"seed": "x"}"#,
            r#"{"join_mix": {"chian": 1.0}}"#,
            r#"[1]"#,
        ] {
            let doc = lt_common::json::parse(bad).unwrap();
            assert!(WorkloadSpec::from_json(&doc).is_err(), "{bad} passed");
        }
    }

    #[test]
    fn mix_normalization_sums_to_one() {
        let [c, s, k] = JoinMix {
            chain: 2.0,
            star: 1.0,
            clique: 1.0,
        }
        .normalized();
        assert!((c + s + k - 1.0).abs() < 1e-12);
        assert!((c - 0.5).abs() < 1e-12);
    }
}
