//! Seeded phased query streams for workload-drift experiments.
//!
//! λ-Tune tunes for a fixed workload; the drift subsystem (`lt-drift`)
//! needs *streams* whose statistics change at known points so detection
//! latency and false-positive rates can be measured deterministically.
//!
//! A stream is data, not code: a [`StreamSpec`] lists phases, each
//! drawing from a declarative [`PoolSpec`] — a benchmark's queries, the
//! fixed predicate-template pools, or a synthesized workload compiled
//! from a [`WorkloadSpec`] by the [`crate::Synthesizer`]. The historical
//! drift scenarios ([`ShiftClass`]) are now just four canned specs (see
//! [`ShiftClass::to_stream_spec`]); [`PhasedStream::new`] keeps the old
//! constructor signature and replays the exact byte streams it always
//! has (pinned by this module's regression tests).
//!
//! - [`ShiftClass::Stationary`] — never shifts; the false-positive control.
//! - [`ShiftClass::MixShift`] — uniform TPC-H queries, then a 70/30
//!   TPC-DS/TPC-H mix (the table/join frequency vector moves).
//! - [`ShiftClass::ScaleJump`] — the same TPC-H queries, but executed
//!   against the SF-10 database after the shift (latencies jump ~10×
//!   while the query *text* distribution stays identical).
//! - [`ShiftClass::PredicateShift`] — a fixed pool of lineitem/orders
//!   templates whose filter *shapes* flip from range/BETWEEN scans to
//!   equality/IN probes: same tables, same joins, different selectivity
//!   histogram.
//!
//! Every draw comes from a seeded [`lt_common::Rng`], so the same spec
//! replays the same stream byte-for-byte on any thread count.

use crate::generate::Synthesizer;
use crate::spec::WorkloadSpec;
use lt_common::{seeded_rng, Result, Rng};
use lt_sql::ast::Query;
use lt_workloads::{Benchmark, Workload};

/// The historical drift scenarios, kept as named shorthands for the
/// [`StreamSpec`]s they compile to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftClass {
    /// No shift ever happens (false-positive control).
    Stationary,
    /// TPC-H uniform → 70/30 TPC-DS/TPC-H mix.
    MixShift,
    /// Same TPC-H queries, executed on the SF-10 database post-shift.
    ScaleJump,
    /// Range/BETWEEN predicate templates → equality/IN templates on the
    /// same tables and join edges.
    PredicateShift,
}

impl ShiftClass {
    /// All classes, the stationary control first.
    pub fn all() -> [ShiftClass; 4] {
        [
            ShiftClass::Stationary,
            ShiftClass::MixShift,
            ShiftClass::ScaleJump,
            ShiftClass::PredicateShift,
        ]
    }

    /// The classes that actually shift (everything but the control).
    pub fn shifted() -> [ShiftClass; 3] {
        [
            ShiftClass::MixShift,
            ShiftClass::ScaleJump,
            ShiftClass::PredicateShift,
        ]
    }

    /// Stable lower-case name for JSON and logs.
    pub fn name(self) -> &'static str {
        match self {
            ShiftClass::Stationary => "stationary",
            ShiftClass::MixShift => "mix_shift",
            ShiftClass::ScaleJump => "scale_jump",
            ShiftClass::PredicateShift => "predicate_shift",
        }
    }

    /// Compiles the scenario to the declarative [`StreamSpec`] it has
    /// always denoted. Byte-compatibility with the pre-spec generator is
    /// pinned by regression tests over captured stream digests.
    pub fn to_stream_spec(self, shift_at: usize, len: usize, seed: u64) -> StreamSpec {
        let phase0 = |pool: PoolSpec| PhaseSpec {
            at: 0,
            major: pool,
            minor: None,
        };
        let phases = match self {
            ShiftClass::Stationary => vec![phase0(PoolSpec::Bench(Benchmark::TpchSf1))],
            ShiftClass::MixShift => vec![
                phase0(PoolSpec::Bench(Benchmark::TpchSf1)),
                PhaseSpec {
                    at: shift_at,
                    major: PoolSpec::Bench(Benchmark::TpcdsSf1),
                    // Threshold 0.7: the historical 70/30 TPC-DS/TPC-H mix.
                    minor: Some((0.7, PoolSpec::Bench(Benchmark::TpchSf1))),
                },
            ],
            ShiftClass::ScaleJump => vec![
                phase0(PoolSpec::Bench(Benchmark::TpchSf1)),
                PhaseSpec {
                    at: shift_at,
                    major: PoolSpec::BenchAs {
                        queries: Benchmark::TpchSf1,
                        source: Benchmark::TpchSf10,
                    },
                    minor: None,
                },
            ],
            ShiftClass::PredicateShift => vec![
                phase0(PoolSpec::Templates(Phase::Before)),
                PhaseSpec {
                    at: shift_at,
                    major: PoolSpec::Templates(Phase::After),
                    minor: None,
                },
            ],
        };
        StreamSpec { len, seed, phases }
    }
}

/// Parameters of one phased stream in the historical 2-phase form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhasedStreamSpec {
    /// Which drift scenario to inject.
    pub shift: ShiftClass,
    /// Query index at which the distribution changes. Ignored for
    /// [`ShiftClass::Stationary`].
    pub shift_at: usize,
    /// Total queries in the stream.
    pub len: usize,
    /// Seed for the draw sequence.
    pub seed: u64,
}

/// A declarative template pool a stream phase draws from.
#[derive(Debug, Clone, PartialEq)]
pub enum PoolSpec {
    /// All queries of a benchmark workload.
    Bench(Benchmark),
    /// One benchmark's query texts re-labeled to execute against another
    /// source database (the scale-jump scenario: identical text, bigger
    /// catalog).
    BenchAs {
        /// Benchmark whose query texts to draw.
        queries: Benchmark,
        /// Database the drawn queries should execute against.
        source: Benchmark,
    },
    /// The fixed lineitem/orders predicate-template pool of a phase.
    Templates(Phase),
    /// A workload synthesized from a declarative spec.
    Synth(WorkloadSpec),
}

/// One phase of a [`StreamSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// First query index of this phase (phases are sorted ascending; the
    /// last phase whose `at` ≤ the index is active).
    pub at: usize,
    /// Pool drawn by default.
    pub major: PoolSpec,
    /// Optional `(threshold, pool)` minority mix: whenever the phase's
    /// uniform draw lands **at or above** `threshold`, the minor pool is
    /// drawn instead — i.e. with probability `1 − threshold`. Stored as
    /// the threshold (not the weight) so the draw comparison reproduces
    /// the historical generator bit-for-bit.
    pub minor: Option<(f64, PoolSpec)>,
}

/// A phased stream as data: phases over declarative pools.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    /// Total queries in the stream.
    pub len: usize,
    /// Seed for the draw sequence.
    pub seed: u64,
    /// Phases, ascending by [`PhaseSpec::at`]; the first must start at 0.
    pub phases: Vec<PhaseSpec>,
}

/// One query drawn from a [`PhasedStream`].
#[derive(Debug, Clone)]
pub struct StreamQuery {
    /// Position in the stream (0-based).
    pub index: usize,
    /// The database this query should execute against. For everything but
    /// [`ShiftClass::ScaleJump`] post-shift this is the phase-A benchmark.
    pub source: Benchmark,
    /// Template label, e.g. `"q6"` or `"narrow-2"`.
    pub label: String,
    /// SQL text.
    pub sql: String,
    /// Parsed query (templates are pre-parsed once at stream construction).
    pub parsed: Query,
}

/// Which phase of a predicate-shift scenario a template pool belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Before the shift point.
    Before,
    /// At and after the shift point.
    After,
}

/// Predicate-template pool for [`ShiftClass::PredicateShift`]: `(label,
/// sql)` pairs over the TPC-H `lineitem`/`orders` tables. Phase A uses
/// range/BETWEEN filter shapes, phase B equality/IN shapes — same tables,
/// same join edges, so only the selectivity histogram moves. Exposed so
/// the re-tune quality experiment can build a post-shift [`Workload`]
/// from the exact pool the stream draws from.
pub fn predicate_templates(phase: Phase) -> Vec<(String, String)> {
    let raw: &[(&str, &str)] = match phase {
        Phase::Before => &[
            (
                "narrow-0",
                "select count(*) from lineitem where l_quantity < 24",
            ),
            (
                "narrow-1",
                "select sum(l_extendedprice) from lineitem \
                 where l_shipdate <= date '1995-01-01'",
            ),
            (
                "narrow-2",
                "select sum(l_extendedprice * l_discount) from lineitem \
                 where l_discount between 0.05 and 0.07 and l_quantity < 25",
            ),
            (
                "narrow-3",
                "select count(*) from lineitem, orders \
                 where l_orderkey = o_orderkey and o_orderdate < date '1995-03-15'",
            ),
        ],
        Phase::After => &[
            (
                "wide-0",
                "select count(*) from lineitem where l_quantity in (1, 2, 3, 4, 5)",
            ),
            (
                "wide-1",
                "select sum(l_extendedprice) from lineitem \
                 where l_shipdate = date '1995-06-17'",
            ),
            (
                "wide-2",
                "select sum(l_extendedprice * l_discount) from lineitem \
                 where l_discount = 0.05 and l_quantity = 24",
            ),
            (
                "wide-3",
                "select count(*) from lineitem, orders \
                 where l_orderkey = o_orderkey and o_orderstatus = 'F'",
            ),
        ],
    };
    raw.iter()
        .map(|(l, s)| ((*l).to_string(), (*s).to_string()))
        .collect()
}

/// A pre-parsed template the stream can draw.
#[derive(Debug, Clone)]
struct Template {
    source: Benchmark,
    label: String,
    sql: String,
    parsed: Query,
}

fn workload_templates(bench: Benchmark, w: &Workload) -> Vec<Template> {
    w.queries
        .iter()
        .map(|q| Template {
            source: bench,
            label: q.label.clone(),
            sql: q.sql.clone(),
            parsed: q.parsed.clone(),
        })
        .collect()
}

fn parsed_templates(bench: Benchmark, pairs: &[(String, String)]) -> Vec<Template> {
    pairs
        .iter()
        .map(|(label, sql)| Template {
            source: bench,
            label: label.clone(),
            sql: sql.clone(),
            parsed: lt_sql::parse_query(sql).expect("stream template must parse"),
        })
        .collect()
}

/// A materialized phase: pre-parsed pools, ready to draw.
#[derive(Debug)]
struct BuiltPhase {
    at: usize,
    major: Vec<Template>,
    minor: Option<(f64, Vec<Template>)>,
}

impl PoolSpec {
    /// Materializes the pool's templates (loads benchmarks, synthesizes
    /// spec pools through the shared per-benchmark engine).
    fn build(&self) -> Result<Vec<Template>> {
        Ok(match self {
            PoolSpec::Bench(b) => workload_templates(*b, &b.load()),
            PoolSpec::BenchAs { queries, source } => {
                let mut pool = workload_templates(*queries, &queries.load());
                for t in &mut pool {
                    t.source = *source;
                }
                pool
            }
            PoolSpec::Templates(phase) => {
                parsed_templates(Benchmark::TpchSf1, &predicate_templates(*phase))
            }
            PoolSpec::Synth(spec) => {
                let synthesis = Synthesizer::shared(spec.benchmark).synthesize(spec)?;
                workload_templates(spec.benchmark, &synthesis.workload)
            }
        })
    }
}

/// Deterministic phased query stream; see the module docs.
#[derive(Debug)]
pub struct PhasedStream {
    len: usize,
    rng: Rng,
    next: usize,
    phases: Vec<BuiltPhase>,
    /// Set when constructed through the historical 2-phase shorthand.
    legacy: Option<PhasedStreamSpec>,
}

impl PhasedStream {
    /// Builds a stream from a historical 2-phase spec. Infallible: the
    /// canned scenarios involve no synthesis.
    pub fn new(spec: PhasedStreamSpec) -> PhasedStream {
        let mut stream = PhasedStream::from_spec(&spec.shift.to_stream_spec(
            spec.shift_at,
            spec.len,
            spec.seed,
        ))
        .expect("canned stream specs cannot fail to build");
        stream.legacy = Some(spec);
        stream
    }

    /// Builds a stream from a declarative spec, materializing every
    /// phase's pools up front (synthesized pools can fail, e.g. on an
    /// invalid workload spec).
    pub fn from_spec(spec: &StreamSpec) -> Result<PhasedStream> {
        assert!(
            spec.phases.first().is_some_and(|p| p.at == 0),
            "stream spec needs a phase starting at index 0"
        );
        assert!(
            spec.phases.windows(2).all(|w| w[0].at <= w[1].at),
            "stream phases must be sorted by start index"
        );
        let mut phases = Vec::with_capacity(spec.phases.len());
        for p in &spec.phases {
            let major = p.major.build()?;
            assert!(!major.is_empty(), "empty major pool in stream phase");
            let minor = match &p.minor {
                Some((threshold, pool)) => {
                    let built = pool.build()?;
                    assert!(!built.is_empty(), "empty minor pool in stream phase");
                    Some((*threshold, built))
                }
                None => None,
            };
            phases.push(BuiltPhase {
                at: p.at,
                major,
                minor,
            });
        }
        Ok(PhasedStream {
            len: spec.len,
            rng: seeded_rng(spec.seed),
            next: 0,
            phases,
            legacy: None,
        })
    }

    /// The historical spec this stream was built from, if it was built
    /// through [`PhasedStream::new`].
    pub fn spec(&self) -> Option<PhasedStreamSpec> {
        self.legacy
    }
}

impl Iterator for PhasedStream {
    type Item = StreamQuery;

    fn next(&mut self) -> Option<StreamQuery> {
        if self.next >= self.len {
            return None;
        }
        let index = self.next;
        self.next += 1;
        let pi = self
            .phases
            .iter()
            .rposition(|p| p.at <= index)
            .expect("phase 0 starts at 0");
        // The minor draw consumes one uniform exactly when the active
        // phase declares a minor pool — the historical call pattern.
        let threshold = self.phases[pi].minor.as_ref().map(|(t, _)| *t);
        let use_minor = match threshold {
            Some(t) => self.rng.gen_f64() >= t,
            None => false,
        };
        let phase = &self.phases[pi];
        let pool = if use_minor {
            &phase.minor.as_ref().expect("checked above").1
        } else {
            &phase.major
        };
        let t = &pool[self.rng.gen_range(0..pool.len())];
        Some(StreamQuery {
            index,
            source: t.source,
            label: t.label.clone(),
            sql: t.sql.clone(),
            parsed: t.parsed.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(shift: ShiftClass) -> PhasedStreamSpec {
        PhasedStreamSpec {
            shift,
            shift_at: 50,
            len: 120,
            seed: 42,
        }
    }

    /// Digest of a stream's observable identity: one line per query of
    /// `index|source|label`, hashed. Pinned values below were captured
    /// from the pre-spec generator, so any draw-order regression in the
    /// data-driven rewrite fails these exact constants.
    fn digest(stream: PhasedStream) -> u64 {
        let mut acc = String::new();
        for q in stream {
            acc.push_str(&format!("{}|{}|{}\n", q.index, q.source.name(), q.label));
        }
        lt_common::hash_one(&acc)
    }

    #[test]
    fn replays_the_pre_spec_generator_byte_for_byte() {
        let pinned: [(ShiftClass, u64); 4] = [
            (ShiftClass::Stationary, 0xeb231f74c7913f7c),
            (ShiftClass::MixShift, 0x4c8c84fdd22b367f),
            (ShiftClass::ScaleJump, 0x125658709db7a873),
            (ShiftClass::PredicateShift, 0xa22833448566a9fa),
        ];
        for (shift, want) in pinned {
            let got = digest(PhasedStream::new(spec(shift)));
            assert_eq!(got, want, "{} digest moved", shift.name());
        }
    }

    #[test]
    fn replays_the_harness_shaped_streams_byte_for_byte() {
        use lt_common::derive_seed;
        // The drift harness's stream geometries: long stationary runs and
        // shifted runs at derived seeds.
        let stationary = |len: usize| PhasedStreamSpec {
            shift: ShiftClass::Stationary,
            shift_at: 0,
            len,
            seed: derive_seed(42, 0),
        };
        assert_eq!(
            digest(PhasedStream::new(stationary(1500))),
            0xf04db98176d06001
        );
        assert_eq!(
            digest(PhasedStream::new(stationary(10000))),
            0x8dbcd901f8b2c54e
        );
        let shifted = |shift: ShiftClass| PhasedStreamSpec {
            shift,
            shift_at: 600,
            len: 1400,
            seed: derive_seed(42, 100),
        };
        let pinned: [(ShiftClass, u64); 3] = [
            (ShiftClass::MixShift, 0xd61ccccb23fa0f1b),
            (ShiftClass::ScaleJump, 0x5a91e7b714daf9a0),
            (ShiftClass::PredicateShift, 0x0f660648bd19f1d0),
        ];
        for (shift, want) in pinned {
            assert_eq!(
                digest(PhasedStream::new(shifted(shift))),
                want,
                "{}",
                shift.name()
            );
        }
    }

    #[test]
    fn same_spec_replays_identically() {
        for shift in ShiftClass::all() {
            let a: Vec<(usize, String)> = PhasedStream::new(spec(shift))
                .map(|q| (q.index, q.label))
                .collect();
            let b: Vec<(usize, String)> = PhasedStream::new(spec(shift))
                .map(|q| (q.index, q.label))
                .collect();
            assert_eq!(a, b, "{shift:?}");
            assert_eq!(a.len(), 120);
        }
    }

    #[test]
    fn stationary_never_leaves_tpch() {
        for q in PhasedStream::new(spec(ShiftClass::Stationary)) {
            assert_eq!(q.source, Benchmark::TpchSf1);
        }
    }

    #[test]
    fn mix_shift_introduces_tpcds_only_after_the_shift_point() {
        let queries: Vec<StreamQuery> = PhasedStream::new(spec(ShiftClass::MixShift)).collect();
        assert!(queries[..50].iter().all(|q| q.source == Benchmark::TpchSf1));
        let post_ds = queries[50..]
            .iter()
            .filter(|q| q.source == Benchmark::TpcdsSf1)
            .count();
        // 70% of 70 draws; loose bounds, but it must clearly dominate.
        assert!(post_ds > 30, "only {post_ds} TPC-DS draws post-shift");
        assert!(post_ds < 70, "phase B must remain a mix");
    }

    #[test]
    fn scale_jump_keeps_query_text_but_moves_source() {
        let queries: Vec<StreamQuery> = PhasedStream::new(spec(ShiftClass::ScaleJump)).collect();
        assert!(queries[..50].iter().all(|q| q.source == Benchmark::TpchSf1));
        assert!(queries[50..]
            .iter()
            .all(|q| q.source == Benchmark::TpchSf10));
        let tpch = Benchmark::TpchSf1.load();
        assert!(queries.iter().all(|q| tpch.by_label(&q.label).is_some()));
    }

    #[test]
    fn predicate_shift_swaps_template_pools_at_the_boundary() {
        let queries: Vec<StreamQuery> =
            PhasedStream::new(spec(ShiftClass::PredicateShift)).collect();
        assert!(queries[..50].iter().all(|q| q.label.starts_with("narrow-")));
        assert!(queries[50..].iter().all(|q| q.label.starts_with("wide-")));
    }

    #[test]
    fn predicate_templates_parse_against_the_tpch_catalog() {
        use lt_dbms::stats::extract;
        let tpch = Benchmark::TpchSf1.load();
        for phase in [Phase::Before, Phase::After] {
            for (label, sql) in predicate_templates(phase) {
                let parsed = lt_sql::parse_query(&sql).unwrap_or_else(|e| {
                    panic!("{label}: {e}");
                });
                let preds = extract(&parsed, &tpch.catalog);
                assert!(!preds.tables.is_empty(), "{label} resolves no tables");
            }
        }
    }

    #[test]
    fn synth_pools_draw_generated_queries() {
        let spec = StreamSpec {
            len: 40,
            seed: 9,
            phases: vec![
                PhaseSpec {
                    at: 0,
                    major: PoolSpec::Synth(WorkloadSpec {
                        name: "phase-a".to_string(),
                        queries: 6,
                        seed: 5,
                        ..WorkloadSpec::default()
                    }),
                    minor: None,
                },
                PhaseSpec {
                    at: 20,
                    major: PoolSpec::Templates(Phase::After),
                    minor: None,
                },
            ],
        };
        let queries: Vec<StreamQuery> = PhasedStream::from_spec(&spec).unwrap().collect();
        assert_eq!(queries.len(), 40);
        assert!(queries[..20].iter().all(|q| q.label.starts_with('g')));
        assert!(queries[20..].iter().all(|q| q.label.starts_with("wide-")));
    }
}
