//! LLM-driven workload synthesis.
//!
//! λ-Tune's evaluation (and its drift/serving layers) needs far more
//! workloads than the four benchmark suites ship: streams that shift,
//! workloads with controlled join shapes and selectivities, thousands of
//! distinct tuning scenarios. This crate closes that gap the way the
//! SQLBarber line of work does — by asking a language model to *write*
//! the queries — while keeping every property the rest of the system
//! relies on:
//!
//! * **Declarative input.** A [`WorkloadSpec`] states the target
//!   statistics: query count, join-shape mix (chain/star/clique over a
//!   depth range), predicate-selectivity band in the drift profiles'
//!   log₂ buckets, Zipf skew of table access, conformance tolerance.
//! * **Catalog-validated output.** Every LLM response is parsed and
//!   checked against the benchmark catalog and the assigned structure;
//!   invalid output is retried with `invalid:` feedback up to a hard
//!   cap, and all rejects are counted ([`SynthReport`]).
//! * **Determinism.** Same spec, same bytes — generation is seeded
//!   end-to-end and independent of thread count, so synthesized
//!   workloads can gate CI like any other fixture.
//! * **Streams as data.** The drift streams' shift classes are now
//!   canned [`StreamSpec`]s over declarative pools ([`PoolSpec`]),
//!   including pools synthesized on the fly; the historical
//!   [`PhasedStream`] byte streams are pinned by regression tests.

pub mod generate;
pub mod spec;
pub mod stream;

pub use generate::{Conformance, Shape, SynthReport, Synthesis, Synthesizer};
pub use spec::{default_seed, retry_max, JoinMix, WorkloadSpec, MAX_SPEC_QUERIES};
pub use stream::{
    predicate_templates, Phase, PhaseSpec, PhasedStream, PhasedStreamSpec, PoolSpec, ShiftClass,
    StreamQuery, StreamSpec,
};
