//! The synthesis engine: compiles a [`WorkloadSpec`] into a
//! catalog-valid [`Workload`] by prompting a workload-synthesis LLM.
//!
//! The split of responsibilities mirrors how a production system would
//! drive a real model:
//!
//! 1. **Planning** (deterministic, engine-side). The engine apportions
//!    the spec's join-shape mix and Zipf anchor distribution over the
//!    requested query count with largest-remainder rounding, so the
//!    *assigned* counts deviate from the spec's targets by less than one
//!    query per class. It then walks the benchmark's mined join graph to
//!    assign each query a concrete structure: tables, join edges, an
//!    aggregate, and optionally a filter predicate drawn from a
//!    per-table selectivity **menu** (each menu entry's log₂ bucket is
//!    computed from catalog statistics with the same estimator the drift
//!    profiles use).
//! 2. **Writing** (the LLM). The structure is serialized into a prompt
//!    (`task:` line plus the filter menu) and the model writes the SQL.
//!    The model is prompt-blind and imperfect — see
//!    [`lt_llm::SynthesisLlm`].
//! 3. **Validation** (engine-side, catalog-backed). Every response is
//!    parsed, its tables resolved against the catalog, and its extracted
//!    join edges and filter terms compared to the assignment. A mismatch
//!    is fed back verbatim as an `invalid:` prompt line and the query is
//!    retried, up to [`crate::spec::retry_max`] attempts; every reject is
//!    counted. Because validation demands the *exact* assigned structure,
//!    a workload that comes back is 100% catalog-valid and conforms to
//!    the spec query-by-query — the [`SynthReport`] measures the residual
//!    (apportionment rounding, graph truncation) against the spec's
//!    declared tolerance.

use crate::spec::{retry_max, WorkloadSpec};
use lt_common::json::Value;
use lt_common::{derive_seed, json, obs, seeded_rng, LtError, Result, Rng};
use lt_common::{ColumnId, TableId};
use lt_dbms::stats::{extract, Estimator, FilterKind, FilterTerm, JoinEdge};
use lt_dbms::Catalog;
use lt_llm::{LanguageModel, LlmClient, SynthesisLlm};
use lt_workloads::{Benchmark, Workload};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Sampling temperature of synthesis calls (below 0.7 the simulated
/// model's imperfection shrinks; above, it grows — 0.7 is the realistic
/// operating point the hallucination rate is calibrated for).
const SYNTH_TEMPERATURE: f64 = 0.7;

/// The join shapes a spec can mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Path: each table joins the previous one.
    Chain,
    /// One anchor joined to independent satellites.
    Star,
    /// Anchor + satellites with every available edge among them.
    Clique,
}

impl Shape {
    /// Stable lower-case name (prompt `shape=` token, JSON).
    pub fn name(self) -> &'static str {
        match self {
            Shape::Chain => "chain",
            Shape::Star => "star",
            Shape::Clique => "clique",
        }
    }
}

/// One achievable filter predicate of a table's selectivity menu.
#[derive(Debug, Clone)]
struct MenuEntry {
    column: ColumnId,
    kind: FilterKind,
    /// Rendered predicate, e.g. `lineitem.l_quantity in (1, 2, 3)`.
    sql: String,
}

/// The structure the engine assigns to one query before prompting.
#[derive(Debug, Clone)]
struct Assignment {
    anchor: TableId,
    /// Shape actually realized on the join graph (a clique request can
    /// degrade to a star when no triangle exists at the anchor).
    shape: Shape,
    tables: Vec<TableId>,
    /// Normalized, deduplicated, sorted — the validation ground truth.
    joins: Vec<JoinEdge>,
    /// `None` = `count(*)`; `Some(col)` = `min(col)`.
    agg: Option<ColumnId>,
    /// Assigned filter as `(table, bucket)` into the menu.
    filter: Option<(TableId, i64)>,
}

/// Spec-conformance of a finished synthesis, measured over the
/// assignments the validation loop proved the SQL reproduces.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Conformance {
    /// Max deviation of any shape's achieved frequency from its target.
    pub mix_error: f64,
    /// Max deviation of any anchor table's achieved frequency from its
    /// Zipf target.
    pub skew_error: f64,
    /// Mean tables per query.
    pub mean_depth: f64,
    /// Queries carrying a filter predicate.
    pub filtered: usize,
    /// Filters whose selectivity bucket landed outside the spec's band
    /// (0 by construction; measured anyway).
    pub bucket_violations: usize,
}

/// What a synthesis run did; returned alongside the workload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SynthReport {
    /// Queries generated (= spec.queries on success).
    pub queries: usize,
    /// LLM completion calls made (≥ queries; retries add calls).
    pub llm_calls: u64,
    /// Prompt tokens billed for this synthesis.
    pub prompt_tokens: u64,
    /// Completion tokens billed.
    pub completion_tokens: u64,
    /// Responses rejected by catalog validation (each also fed back).
    pub rejects: usize,
    /// Clique requests degraded to stars (no triangle at the anchor).
    pub shape_fallbacks: usize,
    /// Assigned filters dropped because no menu bucket fell in the
    /// spec's band for any table of the query.
    pub filters_dropped: usize,
    /// Conformance measurements; see [`Conformance`].
    pub conformance: Conformance,
}

impl SynthReport {
    /// JSON form for benchmark result files.
    pub fn to_json(&self) -> Value {
        json!({
            "queries": self.queries as i64,
            "llm_calls": self.llm_calls as i64,
            "prompt_tokens": self.prompt_tokens as i64,
            "completion_tokens": self.completion_tokens as i64,
            "rejects": self.rejects as i64,
            "shape_fallbacks": self.shape_fallbacks as i64,
            "filters_dropped": self.filters_dropped as i64,
            "mix_error": self.conformance.mix_error,
            "skew_error": self.conformance.skew_error,
            "mean_depth": self.conformance.mean_depth,
            "filtered": self.conformance.filtered as i64,
            "bucket_violations": self.conformance.bucket_violations as i64,
        })
    }
}

/// A compiled synthesis: the workload plus the run's report.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The generated, catalog-valid workload.
    pub workload: Workload,
    /// Generation statistics and conformance measurements.
    pub report: SynthReport,
}

/// Workload-synthesis engine for one benchmark schema; see module docs.
///
/// Construction mines the benchmark's join graph and builds the filter
/// menu, which costs a workload load — share one engine per benchmark
/// via [`Synthesizer::shared`] on hot paths.
#[derive(Debug)]
pub struct Synthesizer {
    benchmark: Benchmark,
    catalog: Catalog,
    /// Join-graph tables, heaviest (most rows) first — the Zipf universe.
    universe: Vec<TableId>,
    /// Normalized, deduplicated join edges mined from the benchmark.
    edges: Vec<JoinEdge>,
    /// Table → indices into `edges` incident to it.
    adjacency: BTreeMap<TableId, Vec<usize>>,
    /// Table → bucket → first achievable predicate of that bucket.
    menu: BTreeMap<TableId, BTreeMap<i64, MenuEntry>>,
}

impl Synthesizer {
    /// Builds an engine for `benchmark`, mining its join graph from the
    /// benchmark's own queries and computing the selectivity menu from
    /// catalog statistics.
    pub fn new(benchmark: Benchmark) -> Synthesizer {
        let workload = benchmark.load();
        let catalog = workload.catalog.clone();

        let mut edges: Vec<JoinEdge> = workload
            .queries
            .iter()
            .flat_map(|q| extract(&q.parsed, &catalog).joins)
            .map(JoinEdge::normalized)
            .collect();
        edges.sort_by_key(|j| (j.left, j.right));
        edges.dedup();

        let mut adjacency: BTreeMap<TableId, Vec<usize>> = BTreeMap::new();
        for (i, e) in edges.iter().enumerate() {
            let lt = catalog.column(e.left).table;
            let rt = catalog.column(e.right).table;
            adjacency.entry(lt).or_default().push(i);
            if rt != lt {
                adjacency.entry(rt).or_default().push(i);
            }
        }

        let mut universe: Vec<TableId> = adjacency.keys().copied().collect();
        universe.sort_by(|a, b| {
            let (ta, tb) = (catalog.table(*a), catalog.table(*b));
            tb.rows.cmp(&ta.rows).then(ta.name.cmp(&tb.name))
        });

        let menu = build_menu(&catalog);

        Synthesizer {
            benchmark,
            catalog,
            universe,
            edges,
            adjacency,
            menu,
        }
    }

    /// Process-wide shared engine per benchmark (construction mines the
    /// join graph, so hot paths — serve feeds, streams — reuse one).
    pub fn shared(benchmark: Benchmark) -> Arc<Synthesizer> {
        type Shared = Vec<(Benchmark, Arc<Synthesizer>)>;
        static CACHE: OnceLock<Mutex<Shared>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
        let mut held = cache.lock().unwrap();
        if let Some((_, s)) = held.iter().find(|(b, _)| *b == benchmark) {
            return Arc::clone(s);
        }
        let built = Arc::new(Synthesizer::new(benchmark));
        held.push((benchmark, Arc::clone(&built)));
        built
    }

    /// The benchmark this engine targets.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// The engine's catalog (the benchmark's schema + statistics).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Synthesizes with the default simulated synthesis model.
    pub fn synthesize(&self, spec: &WorkloadSpec) -> Result<Synthesis> {
        self.synthesize_with(spec, &LlmClient::new(SynthesisLlm::new()))
    }

    /// Synthesizes `spec` through an explicit model (tests inject models
    /// with forced hallucination rates to exercise the retry loop).
    pub fn synthesize_with<M: LanguageModel>(
        &self,
        spec: &WorkloadSpec,
        llm: &LlmClient<M>,
    ) -> Result<Synthesis> {
        let _span = obs::span("synth.generate");
        spec.validate()?;
        if spec.benchmark != self.benchmark {
            return Err(LtError::Config(format!(
                "spec targets {} but engine was built for {}",
                spec.benchmark.name(),
                self.benchmark.name()
            )));
        }
        if self.universe.is_empty() {
            return Err(LtError::Config(format!(
                "benchmark {} has no join graph to synthesize from",
                self.benchmark.name()
            )));
        }
        let usage_before = llm.usage();

        let mut report = SynthReport::default();
        let assignments = self.plan(spec, &mut report);

        let cap = retry_max();
        let mut pairs: Vec<(String, String)> = Vec::with_capacity(assignments.len());
        for (i, asg) in assignments.iter().enumerate() {
            let sql = self.generate_one(spec, i, asg, llm, cap, &mut report)?;
            pairs.push((format!("g{i}"), sql));
        }

        report.queries = pairs.len();
        report.conformance = self.measure(spec, &assignments);
        let usage = llm.usage();
        report.llm_calls = usage.calls - usage_before.calls;
        report.prompt_tokens = usage.prompt_tokens - usage_before.prompt_tokens;
        report.completion_tokens = usage.completion_tokens - usage_before.completion_tokens;
        obs::counter("synth.queries", report.queries as u64);

        let refs: Vec<(&str, String)> =
            pairs.iter().map(|(l, s)| (l.as_str(), s.clone())).collect();
        let workload = Workload::from_sql(spec.name.clone(), self.catalog.clone(), &refs)?;
        Ok(Synthesis { workload, report })
    }

    /// Deterministic planning pass: apportion shapes, anchors and filter
    /// slots, then walk the join graph to a concrete structure per query.
    fn plan(&self, spec: &WorkloadSpec, report: &mut SynthReport) -> Vec<Assignment> {
        let n = spec.queries;
        let mut arng = seeded_rng(derive_seed(spec.seed, 1));

        // Zipf over the universe, heaviest tables first.
        let zipf = zipf_weights(self.universe.len(), spec.skew);
        let mut anchors: Vec<TableId> = Vec::with_capacity(n);
        for (t, count) in self.universe.iter().zip(apportion(n, &zipf)) {
            anchors.extend(std::iter::repeat_n(*t, count));
        }
        arng.shuffle(&mut anchors);

        let mix = spec.join_mix.normalized();
        let mut shapes: Vec<Shape> = Vec::with_capacity(n);
        for (shape, count) in [Shape::Chain, Shape::Star, Shape::Clique]
            .iter()
            .zip(apportion(n, &mix))
        {
            shapes.extend(std::iter::repeat_n(*shape, count));
        }
        arng.shuffle(&mut shapes);

        let filtered = ((spec.filter_rate * n as f64).round() as usize).min(n);
        let mut filters: Vec<bool> = (0..n).map(|i| i < filtered).collect();
        arng.shuffle(&mut filters);

        (0..n)
            .map(|i| {
                let mut qrng = seeded_rng(derive_seed(derive_seed(spec.seed, 3), i as u64));
                let depth = qrng.gen_range(spec.depth_min..=spec.depth_max);
                let (tables, joins, shape) =
                    self.build_structure(&mut qrng, anchors[i], shapes[i], depth);
                if shape != shapes[i] {
                    report.shape_fallbacks += 1;
                }
                let agg = if qrng.gen_bool(0.3) {
                    let cols = &self.catalog.table(anchors[i]).columns;
                    qrng.choose(cols).copied()
                } else {
                    None
                };
                let filter = if filters[i] {
                    let picked = self.pick_filter(&mut qrng, spec, &tables);
                    if picked.is_none() {
                        report.filters_dropped += 1;
                    }
                    picked
                } else {
                    None
                };
                Assignment {
                    anchor: anchors[i],
                    shape,
                    tables,
                    joins,
                    agg,
                    filter,
                }
            })
            .collect()
    }

    /// Walks the join graph from `anchor` into the requested shape,
    /// truncating when the graph runs out of fresh neighbors. Returns the
    /// realized `(tables, joins, effective shape)`.
    fn build_structure(
        &self,
        rng: &mut Rng,
        anchor: TableId,
        shape: Shape,
        depth: usize,
    ) -> (Vec<TableId>, Vec<JoinEdge>, Shape) {
        let mut tables = vec![anchor];
        let mut joins: Vec<JoinEdge> = Vec::new();
        let other = |e: &JoinEdge, at: TableId| -> TableId {
            let lt = self.catalog.column(e.left).table;
            if lt == at {
                self.catalog.column(e.right).table
            } else {
                lt
            }
        };

        match shape {
            Shape::Chain => {
                let mut current = anchor;
                while tables.len() < depth {
                    let candidates: Vec<usize> = self
                        .adjacency
                        .get(&current)
                        .map(|v| {
                            v.iter()
                                .copied()
                                .filter(|&ei| !tables.contains(&other(&self.edges[ei], current)))
                                .collect()
                        })
                        .unwrap_or_default();
                    let Some(&ei) = rng.choose(&candidates) else {
                        break;
                    };
                    let next = other(&self.edges[ei], current);
                    tables.push(next);
                    joins.push(self.edges[ei]);
                    current = next;
                }
                (tables, normalize_joins(joins), Shape::Chain)
            }
            Shape::Star | Shape::Clique => {
                // Pick depth−1 satellites around the anchor. For cliques,
                // prefer satellites connected to ones already chosen so a
                // triangle is found whenever the graph has one here.
                while tables.len() < depth {
                    let candidates: Vec<usize> = self
                        .adjacency
                        .get(&anchor)
                        .map(|v| {
                            v.iter()
                                .copied()
                                .filter(|&ei| !tables.contains(&other(&self.edges[ei], anchor)))
                                .collect()
                        })
                        .unwrap_or_default();
                    if candidates.is_empty() {
                        break;
                    }
                    let pick = if shape == Shape::Clique {
                        let score = |&ei: &usize| -> usize {
                            let t = other(&self.edges[ei], anchor);
                            self.adjacency
                                .get(&t)
                                .map(|v| {
                                    v.iter()
                                        .filter(|&&oi| {
                                            let e = &self.edges[oi];
                                            let a = self.catalog.column(e.left).table;
                                            let b = self.catalog.column(e.right).table;
                                            a != anchor
                                                && b != anchor
                                                && (tables.contains(&a) || tables.contains(&b))
                                        })
                                        .count()
                                })
                                .unwrap_or(0)
                        };
                        let best = candidates.iter().map(score).max().unwrap_or(0);
                        let top: Vec<usize> = candidates
                            .iter()
                            .copied()
                            .filter(|ei| score(ei) == best)
                            .collect();
                        *rng.choose(&top).expect("non-empty")
                    } else {
                        *rng.choose(&candidates).expect("non-empty")
                    };
                    let sat = other(&self.edges[pick], anchor);
                    tables.push(sat);
                    joins.push(self.edges[pick]);
                }
                let mut effective = Shape::Star;
                if shape == Shape::Clique {
                    // Add every edge among the chosen set; extra edges
                    // beyond the star skeleton make it a clique.
                    let skeleton = joins.len();
                    for e in &self.edges {
                        let a = self.catalog.column(e.left).table;
                        let b = self.catalog.column(e.right).table;
                        if a != b
                            && tables.contains(&a)
                            && tables.contains(&b)
                            && !joins.contains(e)
                        {
                            joins.push(*e);
                        }
                    }
                    if joins.len() > skeleton {
                        effective = Shape::Clique;
                    }
                }
                (tables, normalize_joins(joins), effective)
            }
        }
    }

    /// Picks `(table, bucket)` for a filter: the anchor first, then the
    /// query's other tables, constrained to the spec's bucket band.
    fn pick_filter(
        &self,
        rng: &mut Rng,
        spec: &WorkloadSpec,
        tables: &[TableId],
    ) -> Option<(TableId, i64)> {
        for t in tables {
            let Some(buckets) = self.menu.get(t) else {
                continue;
            };
            let in_band: Vec<i64> = buckets
                .keys()
                .copied()
                .filter(|b| (spec.bucket_min..=spec.bucket_max).contains(b))
                .collect();
            if let Some(&bucket) = rng.choose(&in_band) {
                return Some((*t, bucket));
            }
        }
        None
    }

    /// One query through the prompt → validate → feedback loop.
    fn generate_one<M: LanguageModel>(
        &self,
        spec: &WorkloadSpec,
        index: usize,
        asg: &Assignment,
        llm: &LlmClient<M>,
        cap: usize,
        report: &mut SynthReport,
    ) -> Result<String> {
        let mut prompt = self.prompt_for(spec, asg);
        let qseed = derive_seed(derive_seed(spec.seed, 2), index as u64);
        for attempt in 0..cap {
            let response = llm.complete(
                &prompt,
                SYNTH_TEMPERATURE,
                derive_seed(qseed, attempt as u64),
            )?;
            match self.validate(&response, asg) {
                Ok(()) => return Ok(response),
                Err(reason) => {
                    report.rejects += 1;
                    obs::counter("synth.rejects", 1);
                    prompt.push_str(&format!("invalid: {reason}\n"));
                }
            }
        }
        Err(LtError::Config(format!(
            "synthesis of {}[g{index}] exhausted {cap} attempts",
            spec.name
        )))
    }

    /// Serializes an assignment into the synthesis-model prompt contract
    /// (see [`lt_llm::SynthesisLlm`]'s module docs).
    fn prompt_for(&self, spec: &WorkloadSpec, asg: &Assignment) -> String {
        let mut prompt = format!(
            "Write exactly one SQL query for the {} schema satisfying the task line.\n",
            spec.benchmark.name()
        );
        if let Some((table, _)) = asg.filter {
            if let Some(buckets) = self.menu.get(&table) {
                let tname = &self.catalog.table(table).name;
                for (bucket, entry) in buckets {
                    prompt.push_str(&format!("filter {tname} bucket={bucket}: {}\n", entry.sql));
                }
            }
        }
        let tables: Vec<&str> = asg
            .tables
            .iter()
            .map(|t| self.catalog.table(*t).name.as_str())
            .collect();
        let joins: Vec<String> = asg
            .joins
            .iter()
            .map(|e| format!("{}={}", self.qualified(e.left), self.qualified(e.right)))
            .collect();
        let agg = match asg.agg {
            Some(col) => format!("min:{}", self.qualified(col)),
            None => "count".to_string(),
        };
        prompt.push_str(&format!(
            "task: shape={} agg={agg} tables={}",
            asg.shape.name(),
            tables.join(",")
        ));
        if !joins.is_empty() {
            prompt.push_str(&format!(" joins={}", joins.join(";")));
        }
        if let Some((table, bucket)) = asg.filter {
            prompt.push_str(&format!(
                " filter_table={} filter_bucket={bucket}",
                self.catalog.table(table).name
            ));
        }
        prompt.push('\n');
        prompt
    }

    /// `table.column` for prompts and feedback lines.
    fn qualified(&self, col: ColumnId) -> String {
        let meta = self.catalog.column(col);
        format!("{}.{}", self.catalog.table(meta.table).name, meta.name)
    }

    /// Catalog-backed validation: the response must parse, resolve every
    /// table, and reproduce the assigned structure *exactly*. The error
    /// string becomes the `invalid:` feedback line.
    fn validate(&self, sql: &str, asg: &Assignment) -> std::result::Result<(), String> {
        let parsed = lt_sql::parse_query(sql).map_err(|e| format!("parse error: {e}"))?;
        let analysis = lt_sql::analysis::analyze(&parsed);
        for t in &analysis.tables {
            if self.catalog.table_by_name(t).is_none() {
                return Err(format!("unknown table {t}"));
            }
        }
        let mut expected_tables: Vec<String> = asg
            .tables
            .iter()
            .map(|t| self.catalog.table(*t).name.clone())
            .collect();
        expected_tables.sort();
        if analysis.tables != expected_tables {
            return Err(format!(
                "wrong tables, expected {}",
                expected_tables.join(",")
            ));
        }
        let preds = extract(&parsed, &self.catalog);
        let mut expected_joins: Vec<JoinEdge> = asg.joins.iter().map(|e| e.normalized()).collect();
        expected_joins.sort_by_key(|j| (j.left, j.right));
        expected_joins.dedup();
        if preds.joins != expected_joins {
            let want: Vec<String> = expected_joins
                .iter()
                .map(|e| format!("{}={}", self.qualified(e.left), self.qualified(e.right)))
                .collect();
            return Err(format!("wrong joins, expected {}", want.join(";")));
        }
        match asg.filter {
            Some((table, bucket)) => {
                let entry = &self.menu[&table][&bucket];
                let expected = vec![FilterTerm {
                    column: entry.column,
                    kind: entry.kind,
                }];
                let ok = preds.filters.len() == 1
                    && preds
                        .filters
                        .get(&table)
                        .is_some_and(|terms| *terms == expected);
                if !ok {
                    return Err(format!(
                        "wrong filter, expected bucket {bucket} on {}",
                        self.catalog.table(table).name
                    ));
                }
            }
            None => {
                if !preds.filters.is_empty() {
                    return Err("unexpected filter predicate".to_string());
                }
            }
        }
        if !preds.has_aggregates {
            return Err("missing aggregate in select list".to_string());
        }
        Ok(())
    }

    /// Conformance of the realized assignments against the spec. The
    /// validation loop proves the SQL reproduces each assignment exactly,
    /// so measuring the assignments *is* measuring the parsed workload.
    fn measure(&self, spec: &WorkloadSpec, assignments: &[Assignment]) -> Conformance {
        let n = assignments.len().max(1) as f64;
        let mix = spec.join_mix.normalized();
        let mut shape_counts = [0usize; 3];
        let mut anchor_counts: BTreeMap<TableId, usize> = BTreeMap::new();
        let mut depth_sum = 0usize;
        let mut filtered = 0usize;
        let mut bucket_violations = 0usize;
        for asg in assignments {
            let si = match asg.shape {
                Shape::Chain => 0,
                Shape::Star => 1,
                Shape::Clique => 2,
            };
            shape_counts[si] += 1;
            *anchor_counts.entry(asg.anchor).or_default() += 1;
            depth_sum += asg.tables.len();
            if let Some((_, bucket)) = asg.filter {
                filtered += 1;
                if !(spec.bucket_min..=spec.bucket_max).contains(&bucket) {
                    bucket_violations += 1;
                }
            }
        }
        let mix_error = (0..3)
            .map(|i| (shape_counts[i] as f64 / n - mix[i]).abs())
            .fold(0.0f64, f64::max);
        let zipf = zipf_weights(self.universe.len(), spec.skew);
        let zsum: f64 = zipf.iter().sum();
        let skew_error = self
            .universe
            .iter()
            .zip(&zipf)
            .map(|(t, w)| {
                let achieved = anchor_counts.get(t).copied().unwrap_or(0) as f64 / n;
                (achieved - w / zsum).abs()
            })
            .fold(0.0f64, f64::max);
        Conformance {
            mix_error,
            skew_error,
            mean_depth: depth_sum as f64 / n,
            filtered,
            bucket_violations,
        }
    }
}

/// Normalizes, sorts and deduplicates a realized join-edge list — the
/// same canonical form `extract` produces, so validation compares sets.
fn normalize_joins(joins: Vec<JoinEdge>) -> Vec<JoinEdge> {
    let mut out: Vec<JoinEdge> = joins.into_iter().map(JoinEdge::normalized).collect();
    out.sort_by_key(|j| (j.left, j.right));
    out.dedup();
    out
}

/// Largest-remainder apportionment of `n` slots over `weights`: assigned
/// counts deviate from exact quotas by strictly less than 1.
fn apportion(n: usize, weights: &[f64]) -> Vec<usize> {
    let sum: f64 = weights.iter().sum::<f64>().max(1e-12);
    let quotas: Vec<f64> = weights.iter().map(|w| n as f64 * w / sum).collect();
    let mut counts: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let (fa, fb) = (quotas[a] - quotas[a].floor(), quotas[b] - quotas[b].floor());
        fb.partial_cmp(&fa).unwrap().then(a.cmp(&b))
    });
    for &i in order.iter().take(n.saturating_sub(assigned)) {
        counts[i] += 1;
    }
    counts
}

/// Zipf weights `1/(rank+1)^skew` over `len` ranks (unnormalized).
fn zipf_weights(len: usize, skew: f64) -> Vec<f64> {
    (0..len).map(|i| ((i + 1) as f64).powf(-skew)).collect()
}

/// Builds the per-table selectivity menu: for each table, the first
/// achievable predicate per log₂ bucket, iterating columns in
/// declaration order and filter kinds from coarse to fine so the choice
/// is deterministic.
fn build_menu(catalog: &Catalog) -> BTreeMap<TableId, BTreeMap<i64, MenuEntry>> {
    let est = Estimator::new(catalog, 0);
    let kinds = [
        FilterKind::IsNotNull,
        FilterKind::Range,
        FilterKind::Between,
        FilterKind::InList(3),
        FilterKind::Equality,
    ];
    let mut menu: BTreeMap<TableId, BTreeMap<i64, MenuEntry>> = BTreeMap::new();
    for table in catalog.tables() {
        let entries = menu.entry(table.id).or_default();
        for &col in &table.columns {
            for kind in kinds {
                let term = FilterTerm { column: col, kind };
                let sel = est.estimated_table_selectivity(&[term]);
                if sel <= 0.0 {
                    continue;
                }
                let bucket = (-sel.log2()).floor().clamp(0.0, 40.0) as i64;
                entries.entry(bucket).or_insert_with(|| MenuEntry {
                    column: col,
                    kind,
                    sql: render_predicate(catalog, col, kind),
                });
            }
        }
    }
    menu
}

/// Renders a filter predicate whose extracted [`FilterKind`] matches the
/// menu entry (literal values are irrelevant: the estimator is
/// statistics-driven and never reads them).
fn render_predicate(catalog: &Catalog, col: ColumnId, kind: FilterKind) -> String {
    let q = {
        let meta = catalog.column(col);
        format!("{}.{}", catalog.table(meta.table).name, meta.name)
    };
    match kind {
        FilterKind::IsNotNull => format!("{q} is not null"),
        FilterKind::Range => format!("{q} < 100"),
        FilterKind::Between => format!("{q} between 10 and 20"),
        FilterKind::InList(_) => format!("{q} in (1, 2, 3)"),
        _ => format!("{q} = 1"),
    }
}
