//! Seeded property tests for the workload synthesizer: determinism under
//! concurrency and repetition, unconditional catalog validity (even when
//! the model is forced to hallucinate on every first attempt), and
//! conformance of the generated mix to the declared spec tolerances.

use lt_llm::{LlmClient, SynthesisLlm, SynthesisLlmOptions};
use lt_synth::{Synthesizer, WorkloadSpec};
use lt_workloads::Benchmark;

fn spec(queries: usize, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        queries,
        seed,
        ..WorkloadSpec::default()
    }
}

/// Renders a synthesis to the exact bytes a downstream consumer sees.
fn fingerprint(s: &lt_synth::Synthesis) -> String {
    let mut out = String::new();
    for q in &s.workload.queries {
        out.push_str(&q.label);
        out.push('\t');
        out.push_str(&q.sql);
        out.push('\n');
    }
    out
}

/// The same spec synthesized twice sequentially and from four concurrent
/// threads sharing one engine yields byte-identical workloads: generation
/// derives every random draw from the spec seed, never from thread
/// scheduling or shared mutable state.
#[test]
fn same_spec_is_byte_identical_across_runs_and_threads() {
    let engine = Synthesizer::shared(Benchmark::TpchSf1);
    let reference = fingerprint(&engine.synthesize(&spec(24, 1234)).unwrap());
    assert!(!reference.is_empty());
    let again = fingerprint(&engine.synthesize(&spec(24, 1234)).unwrap());
    assert_eq!(reference, again, "repeated runs diverged");

    let concurrent: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let engine = engine.clone();
                scope.spawn(move || fingerprint(&engine.synthesize(&spec(24, 1234)).unwrap()))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, got) in concurrent.iter().enumerate() {
        assert_eq!(&reference, got, "thread {i} diverged from sequential run");
    }

    // Different seeds must actually change the workload — determinism is
    // not degeneracy.
    let other = fingerprint(&engine.synthesize(&spec(24, 4321)).unwrap());
    assert_ne!(reference, other);
}

/// With the hallucination rate forced to 1.0 every query's first attempt
/// is invalid, so the retry-with-feedback loop must repair all of them:
/// the final workload is still 100 % catalog-valid and the rejects are
/// counted, never silently dropped.
#[test]
fn retry_loop_repairs_forced_hallucinations_to_catalog_valid_queries() {
    let engine = Synthesizer::shared(Benchmark::TpchSf1);
    let llm = LlmClient::new(SynthesisLlm::with_options(SynthesisLlmOptions {
        hallucination_rate: 1.0,
    }));
    let synthesis = engine
        .synthesize_with(&spec(32, 99), &llm)
        .expect("retry loop converges under forced hallucination");
    assert_eq!(synthesis.workload.queries.len(), 32);
    assert!(
        synthesis.report.rejects >= 32,
        "every first attempt should have been rejected: {:?}",
        synthesis.report
    );
    for q in &synthesis.workload.queries {
        let analysis = lt_sql::analysis::analyze(&q.parsed);
        assert!(!analysis.tables.is_empty(), "{}: no tables", q.label);
        for table in &analysis.tables {
            assert!(
                engine.catalog().table_by_name(table).is_some(),
                "{}: unknown table {table:?} survived validation",
                q.label
            );
        }
    }
}

/// The generated workload honours its declarative profile: join-shape mix
/// and Zipf table skew within the spec tolerance, depths inside the
/// declared band, and zero selectivity-bucket violations.
#[test]
fn generated_mix_and_skew_stay_within_the_declared_tolerance() {
    let engine = Synthesizer::shared(Benchmark::TpchSf1);
    for seed in [7, 42, 1001] {
        let spec = WorkloadSpec {
            queries: 64,
            seed,
            tolerance: 0.2,
            ..WorkloadSpec::default()
        };
        let report = engine.synthesize(&spec).unwrap().report;
        assert!(
            report.conformance.mix_error <= spec.tolerance,
            "seed {seed}: join-shape mix off by {}",
            report.conformance.mix_error
        );
        assert!(
            report.conformance.skew_error <= spec.tolerance,
            "seed {seed}: table skew off by {}",
            report.conformance.skew_error
        );
        assert_eq!(
            report.conformance.bucket_violations, 0,
            "seed {seed}: selectivity buckets violated"
        );
        assert!(
            report.conformance.mean_depth >= spec.depth_min as f64
                && report.conformance.mean_depth <= spec.depth_max as f64,
            "seed {seed}: mean depth {} outside [{}, {}]",
            report.conformance.mean_depth,
            spec.depth_min,
            spec.depth_max
        );
    }
}
