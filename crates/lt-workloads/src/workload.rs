//! Workload container and benchmark registry.

use lt_common::{LtError, QueryId, Result};
use lt_dbms::Catalog;
use lt_sql::ast::Query;
use std::fmt;

/// One query of a workload: its id, original SQL text and parsed form.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// Position within the workload.
    pub id: QueryId,
    /// Benchmark-native label, e.g. `"q1"` or `"1a"`.
    pub label: String,
    /// SQL text.
    pub sql: String,
    /// Parsed query.
    pub parsed: Query,
}

/// A benchmark workload: catalog plus queries.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name, e.g. `"TPC-H 1GB"`.
    pub name: String,
    /// Schema and statistics at the benchmark's scale factor.
    pub catalog: Catalog,
    /// The analytical queries.
    pub queries: Vec<WorkloadQuery>,
}

impl Workload {
    /// Builds a workload from `(label, sql)` pairs, parsing each query.
    pub fn from_sql(
        name: impl Into<String>,
        catalog: Catalog,
        queries: &[(&str, String)],
    ) -> Result<Workload> {
        let mut out = Vec::with_capacity(queries.len());
        for (i, (label, sql)) in queries.iter().enumerate() {
            let parsed = lt_sql::parse_query(sql)
                .map_err(|e| LtError::Parse(format!("query {label}: {e}")))?;
            out.push(WorkloadQuery {
                id: QueryId::from(i),
                label: (*label).to_string(),
                sql: sql.clone(),
                parsed,
            });
        }
        Ok(Workload {
            name: name.into(),
            catalog,
            queries: out,
        })
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the workload has no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Looks a query up by its benchmark label.
    pub fn by_label(&self, label: &str) -> Option<&WorkloadQuery> {
        self.queries.iter().find(|q| q.label == label)
    }
}

/// The benchmarks of the paper's evaluation (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// TPC-H at scale factor 1 (~1 GB).
    TpchSf1,
    /// TPC-H at scale factor 10 (~10 GB).
    TpchSf10,
    /// TPC-DS at scale factor 1.
    TpcdsSf1,
    /// Join Order Benchmark over the IMDB schema.
    Job,
}

impl Benchmark {
    /// Every benchmark in the paper's scenario matrix.
    pub fn all() -> [Benchmark; 4] {
        [
            Benchmark::TpchSf1,
            Benchmark::TpchSf10,
            Benchmark::TpcdsSf1,
            Benchmark::Job,
        ]
    }

    /// Display name used in tables and figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::TpchSf1 => "TPC-H 1GB",
            Benchmark::TpchSf10 => "TPC-H 10GB",
            Benchmark::TpcdsSf1 => "TPC-DS",
            Benchmark::Job => "JOB",
        }
    }

    /// Generates the workload (catalog + queries).
    pub fn load(self) -> Workload {
        match self {
            Benchmark::TpchSf1 => crate::tpch::workload(1.0),
            Benchmark::TpchSf10 => crate::tpch::workload(10.0),
            Benchmark::TpcdsSf1 => crate::tpcds::workload(),
            Benchmark::Job => crate::job::workload(),
        }
    }

    /// Resolves a benchmark from an external name — display names
    /// (`"TPC-H 1GB"`), kebab slugs (`"tpch-sf1"`) and common shorthands
    /// (`"tpch"`, `"job"`) all work, case-insensitively. Unknown names are
    /// an [`LtError::Config`], so a client-supplied benchmark string can
    /// never panic a server.
    pub fn parse(name: &str) -> Result<Benchmark> {
        let normalized: String = name
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        match normalized.as_str() {
            "tpch" | "tpchsf1" | "tpch1" | "tpch1gb" | "tpch1g" => Ok(Benchmark::TpchSf1),
            "tpchsf10" | "tpch10" | "tpch10gb" | "tpch10g" => Ok(Benchmark::TpchSf10),
            "tpcds" | "tpcdssf1" | "tpcds1" => Ok(Benchmark::TpcdsSf1),
            "job" | "joinorder" | "joinorderbenchmark" => Ok(Benchmark::Job),
            _ => Err(LtError::Config(format!(
                "unknown benchmark {name:?} (expected one of: tpch-sf1, tpch-sf10, tpcds, job)"
            ))),
        }
    }
}

impl std::str::FromStr for Benchmark {
    type Err = LtError;

    fn from_str(s: &str) -> Result<Benchmark> {
        Benchmark::parse(s)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_load_and_parse() {
        for b in Benchmark::all() {
            let w = b.load();
            assert!(!w.is_empty(), "{b} has no queries");
            assert!(!w.catalog.tables().is_empty(), "{b} has no tables");
        }
    }

    #[test]
    fn by_label_finds_queries() {
        let w = Benchmark::TpchSf1.load();
        assert!(w.by_label("q1").is_some());
        assert!(w.by_label("nope").is_none());
    }

    #[test]
    fn parse_accepts_display_names_slugs_and_shorthands() {
        for b in Benchmark::all() {
            assert_eq!(Benchmark::parse(b.name()).unwrap(), b, "{b}");
        }
        assert_eq!(Benchmark::parse("tpch").unwrap(), Benchmark::TpchSf1);
        assert_eq!(Benchmark::parse("tpch-sf1").unwrap(), Benchmark::TpchSf1);
        assert_eq!(Benchmark::parse("TPCH_SF10").unwrap(), Benchmark::TpchSf10);
        assert_eq!(Benchmark::parse("tpc-ds").unwrap(), Benchmark::TpcdsSf1);
        assert_eq!(Benchmark::parse("JOB").unwrap(), Benchmark::Job);
        assert_eq!(
            "tpch-sf10".parse::<Benchmark>().unwrap(),
            Benchmark::TpchSf10
        );
    }

    #[test]
    fn parse_rejects_unknown_names_with_config_error() {
        for bad in ["", "tpcc", "imdb", "tpch-sf100", "🦀"] {
            let err = Benchmark::parse(bad).unwrap_err();
            assert_eq!(err.category(), "config", "{bad:?}");
            assert!(err.message().contains("unknown benchmark"), "{err}");
        }
    }

    #[test]
    fn sf10_has_ten_times_the_rows() {
        let sf1 = Benchmark::TpchSf1.load();
        let sf10 = Benchmark::TpchSf10.load();
        let li1 = sf1
            .catalog
            .table(sf1.catalog.table_by_name("lineitem").unwrap())
            .rows;
        let li10 = sf10
            .catalog
            .table(sf10.catalog.table_by_name("lineitem").unwrap())
            .rows;
        assert_eq!(li10, li1 * 10);
    }
}
