//! Workload obfuscation (paper §6.4.3).
//!
//! To test whether the LLM benefits from recognizing well-known benchmarks
//! in its pre-training data, the paper replaces all table and column names
//! in the extracted query snippets with generic identifiers (`Tx` / `Cy`).
//! The [`Obfuscator`] provides that mapping: deterministic per catalog,
//! applied *after* snippet extraction (full queries are never sent to the
//! LLM in compressed mode), and reversible so generated `CREATE INDEX`
//! commands can be mapped back to real names.

use lt_dbms::Catalog;
use std::collections::HashMap;

/// Bidirectional real-name ↔ generic-name mapping.
#[derive(Debug, Clone)]
pub struct Obfuscator {
    table_fwd: HashMap<String, String>,
    table_rev: HashMap<String, String>,
    column_fwd: HashMap<(String, String), String>,
    column_rev: HashMap<String, (String, String)>,
}

impl Obfuscator {
    /// Builds the mapping for a catalog: table *i* becomes `Ti`, column *j*
    /// becomes `Cj` (catalog-wide numbering, so obfuscated column names stay
    /// unique without qualifiers).
    pub fn new(catalog: &Catalog) -> Self {
        let mut table_fwd = HashMap::new();
        let mut table_rev = HashMap::new();
        for t in catalog.tables() {
            let generic = format!("T{}", t.id.0);
            table_fwd.insert(t.name.clone(), generic.clone());
            table_rev.insert(generic, t.name.clone());
        }
        let mut column_fwd = HashMap::new();
        let mut column_rev = HashMap::new();
        for col in catalog.columns() {
            let table = catalog.table(col.table).name.clone();
            let generic = format!("C{}", col.id.0);
            column_fwd.insert((table.clone(), col.name.clone()), generic.clone());
            column_rev.insert(generic, (table, col.name.clone()));
        }
        Obfuscator {
            table_fwd,
            table_rev,
            column_fwd,
            column_rev,
        }
    }

    /// Obfuscates a table name; unknown names pass through unchanged.
    pub fn table(&self, name: &str) -> String {
        self.table_fwd
            .get(&name.to_ascii_lowercase())
            .cloned()
            .unwrap_or_else(|| name.to_string())
    }

    /// Obfuscates a `table.column` pair.
    pub fn column(&self, table: &str, column: &str) -> String {
        self.column_fwd
            .get(&(table.to_ascii_lowercase(), column.to_ascii_lowercase()))
            .cloned()
            .unwrap_or_else(|| column.to_string())
    }

    /// Reverses an obfuscated table name.
    pub fn deobfuscate_table(&self, generic: &str) -> Option<&str> {
        self.table_rev.get(generic).map(String::as_str)
    }

    /// Reverses an obfuscated column name to `(table, column)`.
    pub fn deobfuscate_column(&self, generic: &str) -> Option<(&str, &str)> {
        self.column_rev
            .get(generic)
            .map(|(t, c)| (t.as_str(), c.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table("orders", 100)
            .primary_key("o_orderkey", 8)
            .column("o_totalprice", 8, 90.0)
            .finish();
        c.add_table("customer", 10)
            .primary_key("c_custkey", 8)
            .finish();
        c
    }

    #[test]
    fn mapping_is_deterministic_and_reversible() {
        let c = catalog();
        let ob = Obfuscator::new(&c);
        assert_eq!(ob.table("orders"), "T0");
        assert_eq!(ob.table("customer"), "T1");
        assert_eq!(ob.column("orders", "o_orderkey"), "C0");
        assert_eq!(ob.deobfuscate_table("T0"), Some("orders"));
        assert_eq!(
            ob.deobfuscate_column("C1"),
            Some(("orders", "o_totalprice"))
        );
    }

    #[test]
    fn unknown_names_pass_through() {
        let c = catalog();
        let ob = Obfuscator::new(&c);
        assert_eq!(ob.table("mystery"), "mystery");
        assert_eq!(ob.column("orders", "mystery"), "mystery");
        assert_eq!(ob.deobfuscate_table("T99"), None);
    }

    #[test]
    fn obfuscated_names_leak_no_benchmark_identity() {
        let c = crate::tpch::catalog(1.0);
        let ob = Obfuscator::new(&c);
        for t in c.tables() {
            let g = ob.table(&t.name);
            assert!(g.starts_with('T'), "{g}");
            assert!(!g.contains(&t.name), "{g} leaks {t:?}");
        }
    }

    #[test]
    fn case_insensitive_lookup() {
        let c = catalog();
        let ob = Obfuscator::new(&c);
        assert_eq!(ob.table("ORDERS"), "T0");
        assert_eq!(ob.column("Orders", "O_ORDERKEY"), "C0");
    }
}
