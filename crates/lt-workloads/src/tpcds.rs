//! TPC-DS (scale factor 1): star-schema subset and 16 representative
//! queries.
//!
//! Row counts match the TPC-DS specification at SF 1. The query set covers
//! the three fact tables (store, catalog and web sales) joined against the
//! shared dimensions, following the official templates' join graphs and
//! filter shapes (ROLLUP and window functions, which our dialect omits,
//! are replaced by plain GROUP BY with the same footprint).

use crate::workload::Workload;
use lt_dbms::Catalog;

/// Builds the TPC-DS SF1 catalog (fact tables + shared dimensions).
pub fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table("date_dim", 73_049)
        .primary_key("d_date_sk", 4)
        .column("d_date", 4, 73_049.0)
        .column("d_year", 4, 201.0)
        .column("d_moy", 4, 12.0)
        .column("d_dom", 4, 31.0)
        .column("d_qoy", 4, 4.0)
        .column("d_day_name", 9, 7.0)
        .finish();
    c.add_table("item", 18_000)
        .primary_key("i_item_sk", 4)
        .column("i_item_id", 16, 9_000.0)
        .column("i_category", 20, 10.0)
        .column("i_class", 20, 99.0)
        .column("i_brand", 30, 714.0)
        .column("i_manufact_id", 4, 1_000.0)
        .column("i_current_price", 8, 9_905.0)
        .column("i_color", 10, 92.0)
        .finish();
    c.add_table("store", 12)
        .primary_key("s_store_sk", 4)
        .column("s_store_name", 20, 8.0)
        .column("s_state", 2, 7.0)
        .column("s_gmt_offset", 4, 2.0)
        .finish();
    c.add_table("customer", 100_000)
        .primary_key("c_customer_sk", 4)
        .column("c_customer_id", 16, 100_000.0)
        .foreign_key("c_current_addr_sk", 4, 50_000.0)
        .foreign_key("c_current_cdemo_sk", 4, 95_000.0)
        .column("c_first_name", 20, 5_000.0)
        .column("c_last_name", 30, 5_000.0)
        .column("c_birth_year", 4, 69.0)
        .finish();
    c.add_table("customer_address", 50_000)
        .primary_key("ca_address_sk", 4)
        .column("ca_state", 2, 52.0)
        .column("ca_city", 20, 704.0)
        .column("ca_country", 20, 1.0)
        .column("ca_gmt_offset", 4, 6.0)
        .finish();
    c.add_table("customer_demographics", 1_920_800)
        .primary_key("cd_demo_sk", 4)
        .column("cd_gender", 1, 2.0)
        .column("cd_marital_status", 1, 5.0)
        .column("cd_education_status", 20, 7.0)
        .finish();
    c.add_table("household_demographics", 7_200)
        .primary_key("hd_demo_sk", 4)
        .column("hd_dep_count", 4, 10.0)
        .column("hd_buy_potential", 15, 6.0)
        .finish();
    c.add_table("promotion", 300)
        .primary_key("p_promo_sk", 4)
        .column("p_channel_email", 1, 2.0)
        .column("p_channel_event", 1, 2.0)
        .finish();
    c.add_table("warehouse", 5)
        .primary_key("w_warehouse_sk", 4)
        .column("w_warehouse_name", 20, 5.0)
        .column("w_state", 2, 4.0)
        .finish();
    c.add_table("ship_mode", 20)
        .primary_key("sm_ship_mode_sk", 4)
        .column("sm_type", 30, 6.0)
        .finish();
    c.add_table("store_sales", 2_880_404)
        .foreign_key("ss_sold_date_sk", 4, 1_823.0)
        .foreign_key("ss_item_sk", 4, 18_000.0)
        .foreign_key("ss_customer_sk", 4, 85_000.0)
        .foreign_key("ss_cdemo_sk", 4, 1_540_000.0)
        .foreign_key("ss_hdemo_sk", 4, 7_200.0)
        .foreign_key("ss_store_sk", 4, 6.0)
        .foreign_key("ss_promo_sk", 4, 300.0)
        .column("ss_quantity", 4, 100.0)
        .column("ss_sales_price", 8, 19_000.0)
        .column("ss_ext_sales_price", 8, 700_000.0)
        .column("ss_net_profit", 8, 900_000.0)
        .column("ss_wholesale_cost", 8, 9_000.0)
        .finish();
    c.add_table("catalog_sales", 1_441_548)
        .foreign_key("cs_sold_date_sk", 4, 1_823.0)
        .foreign_key("cs_item_sk", 4, 18_000.0)
        .foreign_key("cs_bill_customer_sk", 4, 80_000.0)
        .foreign_key("cs_ship_mode_sk", 4, 20.0)
        .foreign_key("cs_warehouse_sk", 4, 5.0)
        .column("cs_quantity", 4, 100.0)
        .column("cs_ext_sales_price", 8, 600_000.0)
        .column("cs_net_profit", 8, 700_000.0)
        .finish();
    c.add_table("web_sales", 719_384)
        .foreign_key("ws_sold_date_sk", 4, 1_823.0)
        .foreign_key("ws_item_sk", 4, 18_000.0)
        .foreign_key("ws_bill_customer_sk", 4, 65_000.0)
        .foreign_key("ws_ship_mode_sk", 4, 20.0)
        .foreign_key("ws_warehouse_sk", 4, 5.0)
        .column("ws_quantity", 4, 100.0)
        .column("ws_ext_sales_price", 8, 480_000.0)
        .column("ws_net_profit", 8, 560_000.0)
        .finish();
    c
}

/// 16 representative TPC-DS query texts, labelled after the official
/// templates they follow.
pub fn queries() -> Vec<(&'static str, String)> {
    let q: Vec<(&'static str, &str)> =
        vec![
        ("q3",
         "select d.d_year, i.i_brand, sum(ss.ss_ext_sales_price) as sum_agg \
          from date_dim d, store_sales ss, item i \
          where d.d_date_sk = ss.ss_sold_date_sk and ss.ss_item_sk = i.i_item_sk \
          and i.i_manufact_id = 128 and d.d_moy = 11 \
          group by d.d_year, i.i_brand order by d.d_year, sum_agg desc limit 100"),
        ("q7",
         "select i.i_item_id, avg(ss.ss_quantity) as agg1, avg(ss.ss_sales_price) as agg2 \
          from store_sales ss, customer_demographics cd, date_dim d, item i, promotion p \
          where ss.ss_sold_date_sk = d.d_date_sk and ss.ss_item_sk = i.i_item_sk \
          and ss.ss_cdemo_sk = cd.cd_demo_sk and ss.ss_promo_sk = p.p_promo_sk \
          and cd.cd_gender = 'M' and cd.cd_marital_status = 'S' \
          and cd.cd_education_status = 'College' and p.p_channel_email = 'N' \
          and d.d_year = 2000 group by i.i_item_id order by i.i_item_id limit 100"),
        ("q13",
         "select avg(ss.ss_quantity), avg(ss.ss_ext_sales_price), avg(ss.ss_wholesale_cost), \
          sum(ss.ss_wholesale_cost) from store_sales ss, store s, customer_demographics cd, \
          household_demographics hd, customer_address ca, date_dim d \
          where s.s_store_sk = ss.ss_store_sk and ss.ss_sold_date_sk = d.d_date_sk \
          and d.d_year = 2001 and ss.ss_hdemo_sk = hd.hd_demo_sk \
          and cd.cd_demo_sk = ss.ss_cdemo_sk and ss.ss_customer_sk in \
          (select c.c_customer_sk from customer c, customer_address ca2 \
           where c.c_current_addr_sk = ca2.ca_address_sk and ca2.ca_country = 'United States') \
          and cd.cd_marital_status = 'M' and cd.cd_education_status = 'Advanced Degree' \
          and ss.ss_customer_sk = ca.ca_address_sk and hd.hd_dep_count = 3"),
        ("q19",
         "select i.i_brand, i.i_manufact_id, sum(ss.ss_ext_sales_price) as ext_price \
          from date_dim d, store_sales ss, item i, customer c, customer_address ca, store s \
          where d.d_date_sk = ss.ss_sold_date_sk and ss.ss_item_sk = i.i_item_sk \
          and i.i_manufact_id = 38 and d.d_moy = 11 and d.d_year = 1998 \
          and ss.ss_customer_sk = c.c_customer_sk and c.c_current_addr_sk = ca.ca_address_sk \
          and ss.ss_store_sk = s.s_store_sk \
          group by i.i_brand, i.i_manufact_id order by ext_price desc limit 100"),
        ("q25",
         "select i.i_item_id, s.s_store_name, sum(ss.ss_net_profit) as store_sales_profit \
          from store_sales ss, date_dim d, store s, item i \
          where d.d_moy = 4 and d.d_year = 2001 and d.d_date_sk = ss.ss_sold_date_sk \
          and i.i_item_sk = ss.ss_item_sk and s.s_store_sk = ss.ss_store_sk \
          group by i.i_item_id, s.s_store_name \
          order by i.i_item_id, s.s_store_name limit 100"),
        ("q26",
         "select i.i_item_id, avg(cs.cs_quantity) as agg1 \
          from catalog_sales cs, customer_demographics cd2, date_dim d, item i, promotion p \
          where cs.cs_sold_date_sk = d.d_date_sk and cs.cs_item_sk = i.i_item_sk \
          and cs.cs_bill_customer_sk = cd2.cd_demo_sk and cs.cs_ship_mode_sk in \
          (select sm.sm_ship_mode_sk from ship_mode sm where sm.sm_type = 'OVERNIGHT') \
          and cd2.cd_gender = 'F' and cd2.cd_marital_status = 'W' and d.d_year = 2000 \
          and p.p_channel_event = 'N' and cs.cs_item_sk = p.p_promo_sk \
          group by i.i_item_id order by i.i_item_id limit 100"),
        ("q42",
         "select d.d_year, i.i_category, sum(ss.ss_ext_sales_price) as total_price \
          from date_dim d, store_sales ss, item i \
          where d.d_date_sk = ss.ss_sold_date_sk and ss.ss_item_sk = i.i_item_sk \
          and i.i_category in ('Books', 'Electronics', 'Sports') and d.d_moy = 11 \
          and d.d_year = 2000 group by d.d_year, i.i_category \
          order by total_price desc, d.d_year limit 100"),
        ("q45",
         "select ca.ca_city, sum(ws.ws_ext_sales_price) as total_sales \
          from web_sales ws, customer c, customer_address ca, date_dim d, item i \
          where ws.ws_bill_customer_sk = c.c_customer_sk \
          and c.c_current_addr_sk = ca.ca_address_sk and ws.ws_item_sk = i.i_item_sk \
          and ws.ws_sold_date_sk = d.d_date_sk and d.d_qoy = 2 and d.d_year = 2001 \
          and i.i_item_id in (select i2.i_item_id from item i2 where i2.i_color in \
          ('firebrick', 'rosy', 'white')) \
          group by ca.ca_city order by total_sales limit 100"),
        ("q52",
         "select d.d_year, i.i_brand, sum(ss.ss_ext_sales_price) as ext_price \
          from date_dim d, store_sales ss, item i \
          where d.d_date_sk = ss.ss_sold_date_sk and ss.ss_item_sk = i.i_item_sk \
          and i.i_manufact_id = 436 and d.d_moy = 12 and d.d_year = 1998 \
          group by d.d_year, i.i_brand order by d.d_year, ext_price desc limit 100"),
        ("q55",
         "select i.i_brand, sum(ss.ss_ext_sales_price) as ext_price \
          from date_dim d, store_sales ss, item i \
          where d.d_date_sk = ss.ss_sold_date_sk and ss.ss_item_sk = i.i_item_sk \
          and i.i_manufact_id = 28 and d.d_moy = 11 and d.d_year = 1999 \
          group by i.i_brand order by ext_price desc, i.i_brand limit 100"),
        ("q61",
         "select sum(ss.ss_ext_sales_price) as promotions \
          from store_sales ss, store s, promotion p, date_dim d, customer c, \
          customer_address ca, item i \
          where ss.ss_sold_date_sk = d.d_date_sk and ss.ss_store_sk = s.s_store_sk \
          and ss.ss_promo_sk = p.p_promo_sk and ss.ss_customer_sk = c.c_customer_sk \
          and ca.ca_address_sk = c.c_current_addr_sk and ss.ss_item_sk = i.i_item_sk \
          and ca.ca_gmt_offset = -5 and i.i_category = 'Jewelry' \
          and p.p_channel_email = 'Y' and s.s_gmt_offset = -5 \
          and d.d_year = 1998 and d.d_moy = 11"),
        ("q68",
         "select c.c_last_name, c.c_first_name, ca.ca_city, sum(ss.ss_ext_sales_price) \
          from store_sales ss, date_dim d, store s, household_demographics hd, \
          customer_address ca, customer c \
          where ss.ss_sold_date_sk = d.d_date_sk and ss.ss_store_sk = s.s_store_sk \
          and ss.ss_hdemo_sk = hd.hd_demo_sk and ss.ss_customer_sk = c.c_customer_sk \
          and c.c_current_addr_sk = ca.ca_address_sk and d.d_dom between 1 and 2 \
          and hd.hd_dep_count = 4 and d.d_year in (1999, 2000, 2001) \
          and s.s_store_name = 'ese' \
          group by c.c_last_name, c.c_first_name, ca.ca_city limit 100"),
        ("q71",
         "select i.i_brand, d.d_moy, sum(ws.ws_ext_sales_price) as ext_price \
          from web_sales ws, date_dim d, item i \
          where d.d_date_sk = ws.ws_sold_date_sk and ws.ws_item_sk = i.i_item_sk \
          and i.i_manufact_id = 436 and d.d_year = 1999 \
          group by i.i_brand, d.d_moy order by ext_price desc limit 100"),
        ("q96",
         "select count(*) as cnt from store_sales ss, household_demographics hd, \
          store s, date_dim d where ss.ss_sold_date_sk = d.d_date_sk \
          and ss.ss_store_sk = s.s_store_sk and ss.ss_hdemo_sk = hd.hd_demo_sk \
          and hd.hd_dep_count = 7 and s.s_store_name = 'ese' and d.d_moy = 4"),
        ("q98",
         "select i.i_item_id, i.i_category, i.i_class, i.i_current_price, \
          sum(ss.ss_ext_sales_price) as itemrevenue \
          from store_sales ss, item i, date_dim d \
          where ss.ss_item_sk = i.i_item_sk and i.i_category in ('Sports', 'Books', 'Home') \
          and ss.ss_sold_date_sk = d.d_date_sk and d.d_date between date '1999-02-22' \
          and date '1999-03-24' group by i.i_item_id, i.i_category, i.i_class, \
          i.i_current_price order by i.i_category, i.i_class, i.i_item_id limit 100"),
        ("q99",
         "select w.w_warehouse_name, sm.sm_type, count(*) as cnt \
          from catalog_sales cs, warehouse w, ship_mode sm, date_dim d \
          where cs.cs_ship_mode_sk = sm.sm_ship_mode_sk \
          and cs.cs_warehouse_sk = w.w_warehouse_sk and cs.cs_sold_date_sk = d.d_date_sk \
          and d.d_year = 2001 group by w.w_warehouse_name, sm.sm_type \
          order by w.w_warehouse_name, sm.sm_type limit 100"),
    ];
    q.into_iter().map(|(l, s)| (l, s.to_string())).collect()
}

/// Builds the full TPC-DS workload.
pub fn workload() -> Workload {
    Workload::from_sql("TPC-DS", catalog(), &queries())
        .expect("TPC-DS queries are in-dialect by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_sql::analysis::analyze;

    #[test]
    fn all_queries_parse() {
        for (label, sql) in queries() {
            assert!(
                lt_sql::parse_query(&sql).is_ok(),
                "TPC-DS {label} failed to parse"
            );
        }
        assert_eq!(queries().len(), 16);
    }

    #[test]
    fn queries_reference_known_tables() {
        let c = catalog();
        for (label, sql) in queries() {
            let q = lt_sql::parse_query(&sql).unwrap();
            for t in analyze(&q).tables {
                assert!(
                    c.table_by_name(&t).is_some(),
                    "TPC-DS {label}: unknown table {t}"
                );
            }
        }
    }

    #[test]
    fn fact_tables_match_spec() {
        let c = catalog();
        let rows = |n: &str| c.table(c.table_by_name(n).unwrap()).rows;
        assert_eq!(rows("store_sales"), 2_880_404);
        assert_eq!(rows("catalog_sales"), 1_441_548);
        assert_eq!(rows("web_sales"), 719_384);
    }
}
