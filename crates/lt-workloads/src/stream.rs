//! Seeded phased query streams for workload-drift experiments.
//!
//! λ-Tune tunes for a fixed workload; the drift subsystem (`lt-drift`)
//! needs *streams* whose statistics change at a known point so detection
//! latency and false-positive rates can be measured deterministically.
//! A [`PhasedStream`] plays a pre-shift phase drawn from one query
//! distribution, then switches at [`PhasedStreamSpec::shift_at`] to a
//! second distribution chosen by the [`ShiftClass`]:
//!
//! - [`ShiftClass::Stationary`] — never shifts; the false-positive control.
//! - [`ShiftClass::MixShift`] — uniform TPC-H queries, then a 70/30
//!   TPC-DS/TPC-H mix (the table/join frequency vector moves).
//! - [`ShiftClass::ScaleJump`] — the same TPC-H queries, but executed
//!   against the SF-10 database after the shift (latencies jump ~10×
//!   while the query *text* distribution stays identical).
//! - [`ShiftClass::PredicateShift`] — a fixed pool of lineitem/orders
//!   templates whose filter *shapes* flip from range/BETWEEN scans to
//!   equality/IN probes: same tables, same joins, different selectivity
//!   histogram.
//!
//! Every draw comes from a seeded [`lt_common::Rng`], so the same spec
//! replays the same stream byte-for-byte on any thread count.

use crate::workload::{Benchmark, Workload};
use lt_common::{seeded_rng, Rng};
use lt_sql::ast::Query;

/// The drift scenarios injected by a [`PhasedStream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftClass {
    /// No shift ever happens (false-positive control).
    Stationary,
    /// TPC-H uniform → 70/30 TPC-DS/TPC-H mix.
    MixShift,
    /// Same TPC-H queries, executed on the SF-10 database post-shift.
    ScaleJump,
    /// Range/BETWEEN predicate templates → equality/IN templates on the
    /// same tables and join edges.
    PredicateShift,
}

impl ShiftClass {
    /// All classes, the stationary control first.
    pub fn all() -> [ShiftClass; 4] {
        [
            ShiftClass::Stationary,
            ShiftClass::MixShift,
            ShiftClass::ScaleJump,
            ShiftClass::PredicateShift,
        ]
    }

    /// The classes that actually shift (everything but the control).
    pub fn shifted() -> [ShiftClass; 3] {
        [
            ShiftClass::MixShift,
            ShiftClass::ScaleJump,
            ShiftClass::PredicateShift,
        ]
    }

    /// Stable lower-case name for JSON and logs.
    pub fn name(self) -> &'static str {
        match self {
            ShiftClass::Stationary => "stationary",
            ShiftClass::MixShift => "mix_shift",
            ShiftClass::ScaleJump => "scale_jump",
            ShiftClass::PredicateShift => "predicate_shift",
        }
    }
}

/// Parameters of one phased stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhasedStreamSpec {
    /// Which drift scenario to inject.
    pub shift: ShiftClass,
    /// Query index at which the distribution changes. Ignored for
    /// [`ShiftClass::Stationary`].
    pub shift_at: usize,
    /// Total queries in the stream.
    pub len: usize,
    /// Seed for the draw sequence.
    pub seed: u64,
}

/// One query drawn from a [`PhasedStream`].
#[derive(Debug, Clone)]
pub struct StreamQuery {
    /// Position in the stream (0-based).
    pub index: usize,
    /// The database this query should execute against. For everything but
    /// [`ShiftClass::ScaleJump`] post-shift this is the phase-A benchmark.
    pub source: Benchmark,
    /// Template label, e.g. `"q6"` or `"narrow-2"`.
    pub label: String,
    /// SQL text.
    pub sql: String,
    /// Parsed query (templates are pre-parsed once at stream construction).
    pub parsed: Query,
}

/// Which phase of a [`PhasedStream`] a template pool belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Before the shift point.
    Before,
    /// At and after the shift point.
    After,
}

/// Predicate-template pool for [`ShiftClass::PredicateShift`]: `(label,
/// sql)` pairs over the TPC-H `lineitem`/`orders` tables. Phase A uses
/// range/BETWEEN filter shapes, phase B equality/IN shapes — same tables,
/// same join edges, so only the selectivity histogram moves. Exposed so
/// the re-tune quality experiment can build a post-shift [`Workload`]
/// from the exact pool the stream draws from.
pub fn predicate_templates(phase: Phase) -> Vec<(String, String)> {
    let raw: &[(&str, &str)] = match phase {
        Phase::Before => &[
            (
                "narrow-0",
                "select count(*) from lineitem where l_quantity < 24",
            ),
            (
                "narrow-1",
                "select sum(l_extendedprice) from lineitem \
                 where l_shipdate <= date '1995-01-01'",
            ),
            (
                "narrow-2",
                "select sum(l_extendedprice * l_discount) from lineitem \
                 where l_discount between 0.05 and 0.07 and l_quantity < 25",
            ),
            (
                "narrow-3",
                "select count(*) from lineitem, orders \
                 where l_orderkey = o_orderkey and o_orderdate < date '1995-03-15'",
            ),
        ],
        Phase::After => &[
            (
                "wide-0",
                "select count(*) from lineitem where l_quantity in (1, 2, 3, 4, 5)",
            ),
            (
                "wide-1",
                "select sum(l_extendedprice) from lineitem \
                 where l_shipdate = date '1995-06-17'",
            ),
            (
                "wide-2",
                "select sum(l_extendedprice * l_discount) from lineitem \
                 where l_discount = 0.05 and l_quantity = 24",
            ),
            (
                "wide-3",
                "select count(*) from lineitem, orders \
                 where l_orderkey = o_orderkey and o_orderstatus = 'F'",
            ),
        ],
    };
    raw.iter()
        .map(|(l, s)| ((*l).to_string(), (*s).to_string()))
        .collect()
}

/// A pre-parsed template the stream can draw.
#[derive(Debug, Clone)]
struct Template {
    source: Benchmark,
    label: String,
    sql: String,
    parsed: Query,
}

fn workload_templates(bench: Benchmark, w: &Workload) -> Vec<Template> {
    w.queries
        .iter()
        .map(|q| Template {
            source: bench,
            label: q.label.clone(),
            sql: q.sql.clone(),
            parsed: q.parsed.clone(),
        })
        .collect()
}

fn parsed_templates(bench: Benchmark, pairs: &[(String, String)]) -> Vec<Template> {
    pairs
        .iter()
        .map(|(label, sql)| Template {
            source: bench,
            label: label.clone(),
            sql: sql.clone(),
            parsed: lt_sql::parse_query(sql).expect("stream template must parse"),
        })
        .collect()
}

/// Deterministic phased query stream; see the module docs.
#[derive(Debug)]
pub struct PhasedStream {
    spec: PhasedStreamSpec,
    rng: Rng,
    next: usize,
    /// Phase-A pool.
    before: Vec<Template>,
    /// Phase-B pool (shares phase A's for [`ShiftClass::Stationary`]).
    after: Vec<Template>,
    /// Phase-B pool drawn 30% of the time post-shift (mix shifts only).
    after_minor: Vec<Template>,
}

impl PhasedStream {
    /// Builds the stream, loading the benchmark workloads the spec needs
    /// and pre-parsing every template.
    pub fn new(spec: PhasedStreamSpec) -> PhasedStream {
        let tpch = Benchmark::TpchSf1.load();
        let tpch_pool = workload_templates(Benchmark::TpchSf1, &tpch);
        let (before, after, after_minor) = match spec.shift {
            ShiftClass::Stationary => (tpch_pool.clone(), tpch_pool, Vec::new()),
            ShiftClass::MixShift => {
                let tpcds = Benchmark::TpcdsSf1.load();
                let tpcds_pool = workload_templates(Benchmark::TpcdsSf1, &tpcds);
                (tpch_pool.clone(), tpcds_pool, tpch_pool)
            }
            ShiftClass::ScaleJump => {
                // Identical query text, executed against the SF-10 catalog
                // (same table/column names) after the shift.
                let jumped: Vec<Template> = tpch_pool
                    .iter()
                    .cloned()
                    .map(|mut t| {
                        t.source = Benchmark::TpchSf10;
                        t
                    })
                    .collect();
                (tpch_pool, jumped, Vec::new())
            }
            ShiftClass::PredicateShift => (
                parsed_templates(Benchmark::TpchSf1, &predicate_templates(Phase::Before)),
                parsed_templates(Benchmark::TpchSf1, &predicate_templates(Phase::After)),
                Vec::new(),
            ),
        };
        PhasedStream {
            rng: seeded_rng(spec.seed),
            next: 0,
            spec,
            before,
            after,
            after_minor,
        }
    }

    /// The spec this stream was built from.
    pub fn spec(&self) -> PhasedStreamSpec {
        self.spec
    }
}

impl Iterator for PhasedStream {
    type Item = StreamQuery;

    fn next(&mut self) -> Option<StreamQuery> {
        if self.next >= self.spec.len {
            return None;
        }
        let index = self.next;
        self.next += 1;
        let shifted =
            !matches!(self.spec.shift, ShiftClass::Stationary) && index >= self.spec.shift_at;
        let pool = if !shifted {
            &self.before
        } else if !self.after_minor.is_empty() && self.rng.gen_f64() >= 0.7 {
            &self.after_minor
        } else {
            &self.after
        };
        let t = &pool[self.rng.gen_range(0..pool.len())];
        Some(StreamQuery {
            index,
            source: t.source,
            label: t.label.clone(),
            sql: t.sql.clone(),
            parsed: t.parsed.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(shift: ShiftClass) -> PhasedStreamSpec {
        PhasedStreamSpec {
            shift,
            shift_at: 50,
            len: 120,
            seed: 42,
        }
    }

    #[test]
    fn same_spec_replays_identically() {
        for shift in ShiftClass::all() {
            let a: Vec<(usize, String)> = PhasedStream::new(spec(shift))
                .map(|q| (q.index, q.label))
                .collect();
            let b: Vec<(usize, String)> = PhasedStream::new(spec(shift))
                .map(|q| (q.index, q.label))
                .collect();
            assert_eq!(a, b, "{shift:?}");
            assert_eq!(a.len(), 120);
        }
    }

    #[test]
    fn stationary_never_leaves_tpch() {
        for q in PhasedStream::new(spec(ShiftClass::Stationary)) {
            assert_eq!(q.source, Benchmark::TpchSf1);
        }
    }

    #[test]
    fn mix_shift_introduces_tpcds_only_after_the_shift_point() {
        let queries: Vec<StreamQuery> = PhasedStream::new(spec(ShiftClass::MixShift)).collect();
        assert!(queries[..50].iter().all(|q| q.source == Benchmark::TpchSf1));
        let post_ds = queries[50..]
            .iter()
            .filter(|q| q.source == Benchmark::TpcdsSf1)
            .count();
        // 70% of 70 draws; loose bounds, but it must clearly dominate.
        assert!(post_ds > 30, "only {post_ds} TPC-DS draws post-shift");
        assert!(post_ds < 70, "phase B must remain a mix");
    }

    #[test]
    fn scale_jump_keeps_query_text_but_moves_source() {
        let queries: Vec<StreamQuery> = PhasedStream::new(spec(ShiftClass::ScaleJump)).collect();
        assert!(queries[..50].iter().all(|q| q.source == Benchmark::TpchSf1));
        assert!(queries[50..]
            .iter()
            .all(|q| q.source == Benchmark::TpchSf10));
        let tpch = Benchmark::TpchSf1.load();
        assert!(queries.iter().all(|q| tpch.by_label(&q.label).is_some()));
    }

    #[test]
    fn predicate_shift_swaps_template_pools_at_the_boundary() {
        let queries: Vec<StreamQuery> =
            PhasedStream::new(spec(ShiftClass::PredicateShift)).collect();
        assert!(queries[..50].iter().all(|q| q.label.starts_with("narrow-")));
        assert!(queries[50..].iter().all(|q| q.label.starts_with("wide-")));
    }

    #[test]
    fn predicate_templates_parse_against_the_tpch_catalog() {
        use lt_dbms::stats::extract;
        let tpch = Benchmark::TpchSf1.load();
        for phase in [Phase::Before, Phase::After] {
            for (label, sql) in predicate_templates(phase) {
                let parsed = lt_sql::parse_query(&sql).unwrap_or_else(|e| {
                    panic!("{label}: {e}");
                });
                let preds = extract(&parsed, &tpch.catalog);
                assert!(!preds.tables.is_empty(), "{label} resolves no tables");
            }
        }
    }
}
