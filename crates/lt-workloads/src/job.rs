//! Join Order Benchmark (JOB) over the IMDB schema.
//!
//! Row counts match the IMDB snapshot used by the original benchmark
//! (Leis et al., "How Good Are Query Optimizers, Really?"). The workload
//! contains 33 queries — one per JOB query family — following the
//! originals' join graphs and filter shapes. Queries always qualify columns
//! (IMDB column names such as `id` and `movie_id` repeat across tables) and
//! avoid self-joins (multiple aliases of one table), which our flattened
//! join-graph extraction does not distinguish; the affected families use
//! their single-alias variant.

use crate::workload::Workload;
use lt_dbms::Catalog;

/// Builds the IMDB catalog.
pub fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table("kind_type", 7)
        .primary_key("id", 4)
        .column("kind", 15, 7.0)
        .finish();
    c.add_table("company_type", 4)
        .primary_key("id", 4)
        .column("kind", 32, 4.0)
        .finish();
    c.add_table("info_type", 113)
        .primary_key("id", 4)
        .column("info", 32, 113.0)
        .finish();
    c.add_table("role_type", 12)
        .primary_key("id", 4)
        .column("role", 32, 12.0)
        .finish();
    c.add_table("link_type", 18)
        .primary_key("id", 4)
        .column("link", 32, 18.0)
        .finish();
    c.add_table("keyword", 134_170)
        .primary_key("id", 4)
        .column("keyword", 24, 134_170.0)
        .column("phonetic_code", 5, 11_482.0)
        .finish();
    c.add_table("company_name", 234_997)
        .primary_key("id", 4)
        .column("name", 40, 234_000.0)
        .column("country_code", 6, 225.0)
        .column("name_pcode_nf", 5, 25_000.0)
        .finish();
    c.add_table("title", 2_528_312)
        .primary_key("id", 4)
        .column("title", 50, 2_300_000.0)
        .column("imdb_index", 5, 33.0)
        .foreign_key("kind_id", 4, 7.0)
        .column("production_year", 4, 133.0)
        .column("phonetic_code", 5, 20_000.0)
        .column("season_nr", 4, 88.0)
        .column("episode_nr", 4, 14_000.0)
        .finish();
    c.add_table("aka_title", 361_472)
        .primary_key("aka_title_id", 4)
        .foreign_key("movie_id", 4, 170_000.0)
        .column("aka_title_name", 50, 300_000.0)
        .finish();
    c.add_table("name", 4_167_491)
        .primary_key("id", 4)
        .column("name", 40, 4_000_000.0)
        .column("gender", 1, 3.0)
        .column("name_pcode_cf", 5, 100_000.0)
        .finish();
    c.add_table("char_name", 3_140_339)
        .primary_key("id", 4)
        .column("name", 40, 3_000_000.0)
        .finish();
    c.add_table("movie_companies", 2_609_129)
        .foreign_key("movie_id", 4, 1_087_236.0)
        .foreign_key("company_id", 4, 234_997.0)
        .foreign_key("company_type_id", 4, 2.0)
        .column("note", 60, 133_000.0)
        .finish();
    c.add_table("movie_keyword", 4_523_930)
        .foreign_key("movie_id", 4, 476_794.0)
        .foreign_key("keyword_id", 4, 134_170.0)
        .finish();
    c.add_table("movie_link", 29_997)
        .foreign_key("movie_id", 4, 6_411.0)
        .foreign_key("linked_movie_id", 4, 16_000.0)
        .foreign_key("link_type_id", 4, 16.0)
        .finish();
    c.add_table("movie_info", 14_835_720)
        .foreign_key("movie_id", 4, 2_468_825.0)
        .foreign_key("info_type_id", 4, 71.0)
        .column("info", 40, 2_720_930.0)
        .column("note", 30, 133_616.0)
        .finish();
    c.add_table("movie_info_idx", 1_380_035)
        .foreign_key("movie_id", 4, 459_925.0)
        .foreign_key("info_type_id", 4, 5.0)
        .column("info", 10, 10_694.0)
        .finish();
    c.add_table("cast_info", 36_244_344)
        .foreign_key("person_id", 4, 4_061_926.0)
        .foreign_key("movie_id", 4, 2_331_601.0)
        .foreign_key("person_role_id", 4, 3_140_339.0)
        .foreign_key("role_id", 4, 11.0)
        .column("note", 20, 300_000.0)
        .column("nr_order", 4, 1_000.0)
        .finish();
    c.add_table("person_info", 2_963_664)
        .foreign_key("person_id", 4, 550_721.0)
        .foreign_key("pi_info_type_id", 4, 22.0)
        .column("pi_info", 50, 1_000_000.0)
        .finish();
    c
}

/// The 33 JOB query-family texts, labelled `1a` … `33a`.
pub fn queries() -> Vec<(&'static str, String)> {
    let q: Vec<(&'static str, &str)> =
        vec![
        ("1a",
         "select min(mc.note), min(t.title), min(t.production_year) \
          from company_type ct, info_type it, movie_companies mc, movie_info_idx mi_idx, title t \
          where ct.kind = 'production companies' and it.info = 'top 250 rank' \
          and mc.note not like '%(as Metro-Goldwyn-Mayer Pictures)%' \
          and ct.id = mc.company_type_id and t.id = mc.movie_id \
          and t.id = mi_idx.movie_id and it.id = mi_idx.info_type_id"),
        ("2a",
         "select min(t.title) from company_name cn, keyword k, movie_companies mc, \
          movie_keyword mk, title t where cn.country_code = '[de]' \
          and k.keyword = 'character-name-in-title' and cn.id = mc.company_id \
          and mc.movie_id = t.id and t.id = mk.movie_id and mk.keyword_id = k.id"),
        ("3a",
         "select min(t.title) from keyword k, movie_info mi, movie_keyword mk, title t \
          where k.keyword like '%sequel%' and mi.info in ('Sweden', 'Norway', 'Germany', \
          'Denmark', 'Swedish', 'Denish', 'Norwegian', 'German') \
          and t.production_year > 2005 and t.id = mi.movie_id and t.id = mk.movie_id \
          and mk.keyword_id = k.id"),
        ("4a",
         "select min(mi_idx.info), min(t.title) from info_type it, keyword k, \
          movie_info_idx mi_idx, movie_keyword mk, title t \
          where it.info = 'rating' and k.keyword like '%sequel%' and mi_idx.info > '5.0' \
          and t.production_year > 2005 and t.id = mi_idx.movie_id and t.id = mk.movie_id \
          and mk.keyword_id = k.id and it.id = mi_idx.info_type_id"),
        ("5a",
         "select min(t.title) from company_type ct, info_type it, movie_companies mc, \
          movie_info mi, title t where ct.kind = 'production companies' \
          and mc.note like '%(theatrical)%' and mc.note like '%(France)%' \
          and mi.info in ('Sweden', 'Norway', 'Germany', 'Denmark', 'Swedish', 'Denish', \
          'Norwegian', 'German') and t.production_year > 2005 and t.id = mi.movie_id \
          and t.id = mc.movie_id and mc.company_type_id = ct.id and it.id = mi.info_type_id"),
        ("6a",
         "select min(k.keyword), min(n.name), min(t.title) from cast_info ci, keyword k, \
          movie_keyword mk, name n, title t where k.keyword = 'marvel-cinematic-universe' \
          and n.name like '%Downey%Robert%' and t.production_year > 2010 \
          and k.id = mk.keyword_id and t.id = mk.movie_id and t.id = ci.movie_id \
          and ci.person_id = n.id"),
        ("7a",
         "select min(n.name), min(t.title) from cast_info ci, info_type it, movie_info mi, \
          name n, person_info pi, title t where it.info = 'mini biography' \
          and n.name_pcode_cf between 'A' and 'F' and n.gender = 'm' \
          and pi.pi_info is not null and t.production_year between 1980 and 1995 \
          and n.id = ci.person_id and ci.movie_id = t.id and t.id = mi.movie_id \
          and n.id = pi.person_id and pi.pi_info_type_id = it.id"),
        ("8a",
         "select min(an.aka_title_name), min(t.title) from aka_title an, cast_info ci, \
          company_name cn, movie_companies mc, role_type rt, title t \
          where ci.note = '(voice: English version)' and cn.country_code = '[jp]' \
          and mc.note like '%(Japan)%' and rt.role = 'actress' \
          and ci.movie_id = t.id and t.id = mc.movie_id and mc.company_id = cn.id \
          and ci.role_id = rt.id and an.movie_id = t.id"),
        ("9a",
         "select min(an.aka_title_name), min(chn.name), min(t.title) from aka_title an, \
          char_name chn, cast_info ci, company_name cn, movie_companies mc, \
          role_type rt, title t where ci.note in ('(voice)', '(voice: Japanese version)', \
          '(voice) (uncredited)', '(voice: English version)') and cn.country_code = '[us]' \
          and rt.role = 'actress' and t.production_year between 2005 and 2015 \
          and ci.movie_id = t.id and t.id = mc.movie_id and mc.company_id = cn.id \
          and ci.role_id = rt.id and an.movie_id = t.id and chn.id = ci.person_role_id"),
        ("10a",
         "select min(chn.name), min(t.title) from char_name chn, cast_info ci, \
          company_name cn, company_type ct, movie_companies mc, role_type rt, title t \
          where ci.note like '%(voice)%' and ci.note like '%(uncredited)%' \
          and cn.country_code = '[ru]' and rt.role = 'actor' and t.production_year > 2005 \
          and t.id = mc.movie_id and t.id = ci.movie_id and ci.person_role_id = chn.id \
          and ci.role_id = rt.id and mc.company_id = cn.id and mc.company_type_id = ct.id"),
        ("11a",
         "select min(cn.name), min(lt.link), min(t.title) from company_name cn, \
          company_type ct, keyword k, link_type lt, movie_companies mc, movie_keyword mk, \
          movie_link ml, title t where cn.country_code <> '[pl]' \
          and cn.name like '%Film%' and ct.kind = 'production companies' \
          and k.keyword = 'sequel' and lt.link like '%follow%' and mc.note is null \
          and t.production_year between 1950 and 2000 and lt.id = ml.link_type_id \
          and ml.movie_id = t.id and t.id = mk.movie_id and mk.keyword_id = k.id \
          and t.id = mc.movie_id and mc.company_type_id = ct.id and mc.company_id = cn.id"),
        ("12a",
         "select min(cn.name), min(mi_idx.info), min(t.title) from company_name cn, \
          company_type ct, info_type it2, movie_companies mc, movie_info_idx mi_idx, title t \
          where cn.country_code = '[us]' and ct.kind = 'production companies' \
          and it2.info = 'rating' and mi_idx.info > '8.0' and t.production_year \
          between 2005 and 2008 and t.id = mi_idx.movie_id and t.id = mc.movie_id \
          and mc.company_type_id = ct.id and mc.company_id = cn.id \
          and mi_idx.info_type_id = it2.id"),
        ("13a",
         "select min(mi.info), min(mi_idx.info), min(t.title) from info_type it, \
          kind_type kt, movie_info mi, movie_info_idx mi_idx, title t \
          where it.info = 'rating' and kt.kind = 'movie' and mi.info like 'B%' \
          and t.id = mi.movie_id and t.id = mi_idx.movie_id and kt.id = t.kind_id \
          and it.id = mi_idx.info_type_id"),
        ("14a",
         "select min(mi_idx.info), min(t.title) from info_type it2, keyword k, kind_type kt, \
          movie_info mi, movie_info_idx mi_idx, movie_keyword mk, title t \
          where it2.info = 'rating' and k.keyword in ('murder', 'murder-in-title', \
          'blood', 'violence') and kt.kind = 'movie' and mi.info in ('Sweden', 'Norway', \
          'Germany', 'Denmark', 'Swedish', 'Denish', 'Norwegian', 'German', 'USA', \
          'American') and mi_idx.info < '8.5' and t.production_year > 2010 \
          and kt.id = t.kind_id and t.id = mi.movie_id and t.id = mk.movie_id \
          and t.id = mi_idx.movie_id and mk.keyword_id = k.id and it2.id = mi_idx.info_type_id"),
        ("15a",
         "select min(mi.info), min(t.title) from aka_title at1, company_name cn, \
          info_type it1, movie_companies mc, movie_info mi, title t \
          where cn.country_code = '[us]' and it1.info = 'release dates' \
          and mc.note like '%(200%)%' and mc.note like '%(worldwide)%' \
          and mi.note like '%internet%' and mi.info like 'USA:% 200%' \
          and t.production_year > 2000 and t.id = at1.movie_id and t.id = mi.movie_id \
          and t.id = mc.movie_id and mc.company_id = cn.id and mi.info_type_id = it1.id"),
        ("16a",
         "select min(an.aka_title_name), min(t.title) from aka_title an, cast_info ci, \
          company_name cn, keyword k, movie_companies mc, movie_keyword mk, name n, title t \
          where cn.country_code = '[us]' and k.keyword = 'character-name-in-title' \
          and t.episode_nr >= 50 and t.episode_nr < 100 and an.movie_id = t.id \
          and n.id = ci.person_id and ci.movie_id = t.id and t.id = mk.movie_id \
          and mk.keyword_id = k.id and t.id = mc.movie_id and mc.company_id = cn.id"),
        ("17a",
         "select min(n.name) from cast_info ci, company_name cn, keyword k, \
          movie_companies mc, movie_keyword mk, name n, title t \
          where cn.country_code = '[us]' and k.keyword = 'character-name-in-title' \
          and n.name like 'B%' and n.id = ci.person_id and ci.movie_id = t.id \
          and t.id = mk.movie_id and mk.keyword_id = k.id and t.id = mc.movie_id \
          and mc.company_id = cn.id"),
        ("18a",
         "select min(mi.info), min(t.title) from cast_info ci, info_type it1, \
          movie_info mi, name n, title t where ci.note in ('(producer)', \
          '(executive producer)') and it1.info = 'budget' and n.gender = 'm' \
          and n.name like '%Tim%' and t.id = mi.movie_id and t.id = ci.movie_id \
          and ci.person_id = n.id and mi.info_type_id = it1.id"),
        ("19a",
         "select min(n.name), min(t.title) from aka_title an, char_name chn, cast_info ci, \
          company_name cn, info_type it, movie_companies mc, movie_info mi, name n, \
          role_type rt, title t where ci.note in ('(voice)', '(voice: Japanese version)', \
          '(voice) (uncredited)', '(voice: English version)') and cn.country_code = '[us]' \
          and it.info = 'release dates' and mc.note like '%(200%)%' \
          and mi.info like 'Japan:%200%' and n.gender = 'f' and n.name like '%Ang%' \
          and rt.role = 'actress' and t.production_year between 2005 and 2009 \
          and t.id = mi.movie_id and t.id = mc.movie_id and t.id = ci.movie_id \
          and mc.company_id = cn.id and ci.person_id = n.id and ci.role_id = rt.id \
          and an.movie_id = t.id and chn.id = ci.person_role_id and it.id = mi.info_type_id"),
        ("20a",
         "select min(t.title) from char_name chn, cast_info ci, keyword k, kind_type kt, \
          movie_keyword mk, title t where chn.name not like '%Sherlock%' \
          and ci.note in ('(voice)', '(voice: Japanese version)', '(voice) (uncredited)', \
          '(voice: English version)') and k.keyword in ('superhero', 'sequel', \
          'second-part', 'marvel-comics', 'based-on-comic', 'tv-special', 'fight', \
          'violence') and kt.kind = 'movie' and t.production_year > 1950 \
          and kt.id = t.kind_id and t.id = mk.movie_id and t.id = ci.movie_id \
          and mk.keyword_id = k.id and chn.id = ci.person_role_id"),
        ("21a",
         "select min(cn.name), min(lt.link), min(t.title) from company_name cn, \
          company_type ct, keyword k, link_type lt, movie_companies mc, movie_info mi, \
          movie_keyword mk, movie_link ml, title t where cn.country_code <> '[pl]' \
          and cn.name like '%Film%' and ct.kind = 'production companies' \
          and k.keyword = 'sequel' and lt.link like '%follow%' and mc.note is null \
          and mi.info in ('Sweden', 'Norway', 'Germany', 'Denmark', 'Swedish', 'Denish', \
          'Norwegian', 'German') and t.production_year between 1950 and 2000 \
          and lt.id = ml.link_type_id and ml.movie_id = t.id and t.id = mk.movie_id \
          and mk.keyword_id = k.id and t.id = mc.movie_id and mc.company_type_id = ct.id \
          and mc.company_id = cn.id and t.id = mi.movie_id"),
        ("22a",
         "select min(cn.name), min(mi_idx.info), min(t.title) from company_name cn, \
          company_type ct, info_type it2, keyword k, kind_type kt, movie_companies mc, \
          movie_info mi, movie_info_idx mi_idx, movie_keyword mk, title t \
          where cn.country_code <> '[us]' and it2.info = 'rating' \
          and k.keyword in ('murder', 'murder-in-title', 'blood', 'violence') \
          and kt.kind in ('movie', 'episode') and mc.note not like '%(USA)%' \
          and mc.note like '%(200%)%' and mi.info in ('Germany', 'German', 'USA', \
          'American') and mi_idx.info < '7.0' and t.production_year > 2008 \
          and kt.id = t.kind_id and t.id = mi.movie_id and t.id = mk.movie_id \
          and t.id = mi_idx.movie_id and t.id = mc.movie_id and mk.keyword_id = k.id \
          and it2.id = mi_idx.info_type_id and mc.company_type_id = ct.id \
          and mc.company_id = cn.id"),
        ("23a",
         "select min(kt.kind), min(t.title) from company_name cn, company_type ct, \
          info_type it1, kind_type kt, movie_companies mc, movie_info mi, title t \
          where cn.country_code = '[us]' and it1.info = 'release dates' \
          and kt.kind in ('movie') and mi.note like '%internet%' \
          and mi.info like 'USA:% 199%' and t.production_year > 2000 \
          and kt.id = t.kind_id and t.id = mi.movie_id and t.id = mc.movie_id \
          and mc.company_type_id = ct.id and mc.company_id = cn.id \
          and mi.info_type_id = it1.id"),
        ("24a",
         "select min(chn.name), min(t.title) from aka_title an, char_name chn, \
          cast_info ci, company_name cn, info_type it, keyword k, movie_companies mc, \
          movie_info mi, movie_keyword mk, name n, role_type rt, title t \
          where ci.note in ('(voice)', '(voice: Japanese version)', \
          '(voice) (uncredited)', '(voice: English version)') and cn.country_code = '[us]' \
          and it.info = 'release dates' and k.keyword in ('hero', 'martial-arts', \
          'hand-to-hand-combat') and mi.info like 'Japan:%201%' and n.gender = 'f' \
          and n.name like '%An%' and rt.role = 'actress' and t.production_year > 2010 \
          and t.id = mi.movie_id and t.id = mc.movie_id and t.id = ci.movie_id \
          and t.id = mk.movie_id and mc.company_id = cn.id and mi.info_type_id = it.id \
          and ci.person_id = n.id and ci.role_id = rt.id and an.movie_id = t.id \
          and chn.id = ci.person_role_id and mk.keyword_id = k.id"),
        ("25a",
         "select min(mi.info), min(mi_idx.info), min(n.name), min(t.title) \
          from cast_info ci, info_type it1, keyword k, movie_info mi, movie_info_idx mi_idx, \
          movie_keyword mk, name n, title t where ci.note in ('(writer)', \
          '(head writer)', '(written by)', '(story)', '(story editor)') \
          and it1.info = 'genres' and k.keyword in ('murder', 'blood', 'gore', \
          'death', 'female-nudity') and mi.info = 'Horror' and n.gender = 'm' \
          and t.id = mi.movie_id and t.id = mi_idx.movie_id and t.id = ci.movie_id \
          and t.id = mk.movie_id and ci.person_id = n.id and mi.info_type_id = it1.id \
          and mk.keyword_id = k.id"),
        ("26a",
         "select min(chn.name), min(mi_idx.info), min(n.name), min(t.title) \
          from char_name chn, cast_info ci, info_type it2, keyword k, kind_type kt, \
          movie_info_idx mi_idx, movie_keyword mk, name n, title t \
          where chn.name is not null and chn.name like '%man%' and it2.info = 'rating' \
          and k.keyword in ('superhero', 'marvel-comics', 'based-on-comic', 'tv-special', \
          'fight', 'violence', 'magnet', 'web', 'claw', 'laser') and kt.kind = 'movie' \
          and mi_idx.info > '7.0' and t.production_year > 2000 and kt.id = t.kind_id \
          and t.id = mk.movie_id and t.id = ci.movie_id and t.id = mi_idx.movie_id \
          and mk.keyword_id = k.id and ci.person_role_id = chn.id and ci.person_id = n.id \
          and mi_idx.info_type_id = it2.id"),
        ("27a",
         "select min(cn.name), min(lt.link), min(t.title) from company_name cn, \
          company_type ct, keyword k, link_type lt, movie_companies mc, movie_info mi, \
          movie_keyword mk, movie_link ml, title t where cn.country_code <> '[pl]' \
          and cn.name like '%Film%' and ct.kind = 'production companies' \
          and k.keyword = 'sequel' and lt.link like '%follow%' and mc.note is null \
          and mi.info in ('Sweden', 'Germany', 'Swedish', 'German') \
          and t.production_year between 1950 and 2010 and lt.id = ml.link_type_id \
          and ml.movie_id = t.id and t.id = mk.movie_id and mk.keyword_id = k.id \
          and t.id = mc.movie_id and mc.company_type_id = ct.id and mc.company_id = cn.id \
          and t.id = mi.movie_id"),
        ("28a",
         "select min(cn.name), min(mi_idx.info), min(t.title) from company_name cn, \
          company_type ct, info_type it2, keyword k, kind_type kt, movie_companies mc, \
          movie_info mi, movie_info_idx mi_idx, movie_keyword mk, title t \
          where cn.country_code <> '[us]' and it2.info = 'rating' \
          and k.keyword in ('murder', 'murder-in-title', 'blood', 'violence') \
          and kt.kind in ('movie', 'episode') and mc.note not like '%(USA)%' \
          and mc.note like '%(200%)%' and mi.info in ('Sweden', 'Germany', 'Swedish', \
          'German', 'USA', 'American') and mi_idx.info < '8.5' and t.production_year > 2000 \
          and kt.id = t.kind_id and t.id = mi.movie_id and t.id = mk.movie_id \
          and t.id = mi_idx.movie_id and t.id = mc.movie_id and mk.keyword_id = k.id \
          and it2.id = mi_idx.info_type_id and mc.company_type_id = ct.id \
          and mc.company_id = cn.id"),
        ("29a",
         "select min(chn.name), min(n.name), min(t.title) from aka_title an, \
          char_name chn, cast_info ci, company_name cn, info_type it, keyword k, \
          movie_companies mc, movie_info mi, movie_keyword mk, name n, role_type rt, \
          title t where ci.note = '(voice)' and chn.name = 'Queen' \
          and cn.country_code = '[us]' and it.info = 'release dates' \
          and k.keyword = 'computer-animation' and mi.info like 'USA:%200%' \
          and n.gender = 'f' and n.name like '%An%' and rt.role = 'actress' \
          and t.title = 'Shrek 2' and t.production_year between 2000 and 2010 \
          and t.id = mi.movie_id and t.id = mc.movie_id and t.id = ci.movie_id \
          and t.id = mk.movie_id and mc.company_id = cn.id and mi.info_type_id = it.id \
          and ci.person_id = n.id and ci.role_id = rt.id and an.movie_id = t.id \
          and chn.id = ci.person_role_id and mk.keyword_id = k.id"),
        ("30a",
         "select min(mi.info), min(mi_idx.info), min(n.name), min(t.title) \
          from cast_info ci, info_type it1, keyword k, movie_info mi, movie_info_idx mi_idx, \
          movie_keyword mk, name n, title t where ci.note in ('(writer)', '(head writer)', \
          '(written by)', '(story)', '(story editor)') and it1.info = 'genres' \
          and k.keyword in ('murder', 'violence', 'blood', 'gore', 'death', \
          'female-nudity', 'hospital') and mi.info in ('Horror', 'Thriller') \
          and n.gender = 'm' and t.production_year > 2000 and t.id = mi.movie_id \
          and t.id = mi_idx.movie_id and t.id = ci.movie_id and t.id = mk.movie_id \
          and ci.person_id = n.id and mi.info_type_id = it1.id and mk.keyword_id = k.id"),
        ("31a",
         "select min(mi.info), min(mi_idx.info), min(n.name), min(t.title) \
          from cast_info ci, company_name cn, info_type it1, keyword k, movie_companies mc, \
          movie_info mi, movie_info_idx mi_idx, movie_keyword mk, name n, title t \
          where ci.note in ('(writer)', '(head writer)', '(written by)', '(story)', \
          '(story editor)') and cn.name like 'Lionsgate%' and it1.info = 'genres' \
          and k.keyword in ('murder', 'violence', 'blood', 'gore', 'death', \
          'female-nudity', 'hospital') and mi.info in ('Horror', 'Thriller') \
          and n.gender = 'm' and t.id = mi.movie_id and t.id = mi_idx.movie_id \
          and t.id = ci.movie_id and t.id = mk.movie_id and t.id = mc.movie_id \
          and ci.person_id = n.id and mi.info_type_id = it1.id and mk.keyword_id = k.id \
          and mc.company_id = cn.id"),
        ("32a",
         "select min(lt.link), min(t.title) from keyword k, link_type lt, movie_keyword mk, \
          movie_link ml, title t where k.keyword = '10,000-mile-club' \
          and mk.keyword_id = k.id and t.id = mk.movie_id and ml.movie_id = t.id \
          and lt.id = ml.link_type_id"),
        ("33a",
         "select min(cn.name), min(mi_idx.info), min(t.title) from company_name cn, \
          info_type it2, kind_type kt, link_type lt, movie_companies mc, \
          movie_info_idx mi_idx, movie_link ml, title t where cn.country_code <> '[us]' \
          and it2.info = 'rating' and kt.kind in ('tv series') and lt.link in ('sequel', \
          'follows', 'followed by') and mi_idx.info < '3.5' \
          and t.production_year between 2005 and 2008 and lt.id = ml.link_type_id \
          and t.id = ml.movie_id and t.id = mi_idx.movie_id and it2.id = mi_idx.info_type_id \
          and kt.id = t.kind_id and t.id = mc.movie_id and cn.id = mc.company_id"),
    ];
    q.into_iter().map(|(l, s)| (l, s.to_string())).collect()
}

/// Builds the full JOB workload.
pub fn workload() -> Workload {
    Workload::from_sql("JOB", catalog(), &queries())
        .expect("JOB queries are in-dialect by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_sql::analysis::analyze;

    #[test]
    fn all_33_families_parse() {
        for (label, sql) in queries() {
            assert!(
                lt_sql::parse_query(&sql).is_ok(),
                "JOB {label} failed to parse"
            );
        }
        assert_eq!(queries().len(), 33);
    }

    #[test]
    fn queries_reference_known_tables() {
        let c = catalog();
        for (label, sql) in queries() {
            let q = lt_sql::parse_query(&sql).unwrap();
            for t in analyze(&q).tables {
                assert!(
                    c.table_by_name(&t).is_some(),
                    "JOB {label}: unknown table {t}"
                );
            }
        }
    }

    #[test]
    fn join_graphs_are_connected() {
        // Every query's tables must be reachable through its join edges —
        // otherwise the simulated optimizer is forced into cross joins the
        // real benchmark does not contain.
        let c = catalog();
        for (label, sql) in queries() {
            let q = lt_sql::parse_query(&sql).unwrap();
            let preds = lt_dbms::stats::extract(&q, &c);
            let n = preds.tables.len();
            assert!(n >= 4, "JOB {label} should join at least 4 tables");
            // Union-find over tables.
            let mut parent: Vec<usize> = (0..n).collect();
            fn find(p: &mut Vec<usize>, i: usize) -> usize {
                if p[i] != i {
                    let r = find(p, p[i]);
                    p[i] = r;
                }
                p[i]
            }
            for e in &preds.joins {
                let lt = c.column(e.left).table;
                let rt = c.column(e.right).table;
                let li = preds.tables.iter().position(|t| *t == lt);
                let ri = preds.tables.iter().position(|t| *t == rt);
                if let (Some(li), Some(ri)) = (li, ri) {
                    let (a, b) = (find(&mut parent, li), find(&mut parent, ri));
                    parent[a] = b;
                }
            }
            let root = find(&mut parent, 0);
            for i in 1..n {
                assert_eq!(
                    find(&mut parent, i),
                    root,
                    "JOB {label}: join graph is disconnected"
                );
            }
        }
    }

    #[test]
    fn catalog_row_counts_match_imdb() {
        let c = catalog();
        let rows = |name: &str| c.table(c.table_by_name(name).unwrap()).rows;
        assert_eq!(rows("cast_info"), 36_244_344);
        assert_eq!(rows("movie_info"), 14_835_720);
        assert_eq!(rows("title"), 2_528_312);
    }
}
