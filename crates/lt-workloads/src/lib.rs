//! Benchmark workloads for the λ-Tune reproduction.
//!
//! The paper evaluates on TPC-H (scale factors 1 and 10), TPC-DS (scale
//! factor 1) and the Join Order Benchmark (JOB). This crate generates, for
//! each benchmark, (a) a catalog with realistic row counts and column
//! statistics for the simulated DBMS and (b) the analytical query texts.
//! Query text follows the original benchmarks' join structure and filter
//! shapes; constructs outside our SQL dialect (outer joins, `substring`)
//! are replaced by equivalents with the same table/column footprint, which
//! is the only property the tuning pipeline consumes.

pub mod job;
pub mod obfuscate;
pub mod tpcds;
pub mod tpch;
pub mod workload;

pub use obfuscate::Obfuscator;
pub use workload::{Benchmark, Workload, WorkloadQuery};
