//! TPC-H schema, statistics and the 22 analytical queries.
//!
//! Row counts and distinct-value statistics match the official TPC-H
//! specification at the given scale factor. The query texts follow the
//! official templates with two dialect adaptations that preserve the
//! table/column footprint: Q13's outer join becomes an inner-join variant
//! and Q22's `substring` country-code test becomes a `LIKE` chain.

use crate::workload::Workload;
use lt_dbms::Catalog;

/// Builds the TPC-H catalog at the given scale factor.
pub fn catalog(scale: f64) -> Catalog {
    let mut c = Catalog::new();
    c.add_table("region", 5)
        .primary_key("r_regionkey", 4)
        .column("r_name", 12, 5.0)
        .column("r_comment", 80, 5.0)
        .finish();
    c.add_table("nation", 25)
        .primary_key("n_nationkey", 4)
        .column("n_name", 12, 25.0)
        .foreign_key("n_regionkey", 4, 5.0)
        .column("n_comment", 80, 25.0)
        .finish();
    c.add_table("supplier", 10_000)
        .primary_key("s_suppkey", 4)
        .column("s_name", 18, 10_000.0)
        .column("s_address", 25, 10_000.0)
        .foreign_key("s_nationkey", 4, 25.0)
        .column("s_phone", 15, 10_000.0)
        .column("s_acctbal", 8, 9_955.0)
        .column("s_comment", 60, 10_000.0)
        .finish();
    c.add_table("customer", 150_000)
        .primary_key("c_custkey", 4)
        .column("c_name", 18, 150_000.0)
        .column("c_address", 25, 150_000.0)
        .foreign_key("c_nationkey", 4, 25.0)
        .column("c_phone", 15, 150_000.0)
        .column("c_acctbal", 8, 140_187.0)
        .column("c_mktsegment", 10, 5.0)
        .column("c_comment", 70, 150_000.0)
        .finish();
    c.add_table("part", 200_000)
        .primary_key("p_partkey", 4)
        .column("p_name", 33, 199_996.0)
        .column("p_mfgr", 25, 5.0)
        .column("p_brand", 10, 25.0)
        .column("p_type", 25, 150.0)
        .column("p_size", 4, 50.0)
        .column("p_container", 10, 40.0)
        .column("p_retailprice", 8, 20_899.0)
        .column("p_comment", 14, 131_753.0)
        .finish();
    c.add_table("partsupp", 800_000)
        .foreign_key("ps_partkey", 4, 200_000.0)
        .foreign_key("ps_suppkey", 4, 10_000.0)
        .column("ps_availqty", 4, 9_999.0)
        .column("ps_supplycost", 8, 99_865.0)
        .column("ps_comment", 124, 799_124.0)
        .finish();
    c.add_table("orders", 1_500_000)
        .primary_key("o_orderkey", 4)
        .foreign_key("o_custkey", 4, 99_996.0)
        .column("o_orderstatus", 1, 3.0)
        .column("o_totalprice", 8, 1_464_556.0)
        .column("o_orderdate", 4, 2_406.0)
        .column("o_orderpriority", 15, 5.0)
        .column("o_clerk", 15, 1_000.0)
        .column("o_shippriority", 4, 1.0)
        .column("o_comment", 49, 1_482_071.0)
        .finish();
    c.add_table("lineitem", 6_001_215)
        .foreign_key("l_orderkey", 4, 1_500_000.0)
        .foreign_key("l_partkey", 4, 200_000.0)
        .foreign_key("l_suppkey", 4, 10_000.0)
        .column("l_linenumber", 4, 7.0)
        .column("l_quantity", 8, 50.0)
        .column("l_extendedprice", 8, 933_900.0)
        .column("l_discount", 8, 11.0)
        .column("l_tax", 8, 9.0)
        .column("l_returnflag", 1, 3.0)
        .column("l_linestatus", 1, 2.0)
        .column("l_shipdate", 4, 2_526.0)
        .column("l_commitdate", 4, 2_466.0)
        .column("l_receiptdate", 4, 2_554.0)
        .column("l_shipinstruct", 25, 4.0)
        .column("l_shipmode", 10, 7.0)
        .column("l_comment", 27, 4_580_667.0)
        .finish();
    if (scale - 1.0).abs() > 1e-9 {
        c.scale(scale);
    }
    c
}

/// The 22 TPC-H query texts (dialect-adapted where noted in the module
/// docs), labelled `q1` … `q22`.
pub fn queries() -> Vec<(&'static str, String)> {
    vec![
        ("q1", q1()),
        ("q2", q2()),
        ("q3", q3()),
        ("q4", q4()),
        ("q5", q5()),
        ("q6", q6()),
        ("q7", q7()),
        ("q8", q8()),
        ("q9", q9()),
        ("q10", q10()),
        ("q11", q11()),
        ("q12", q12()),
        ("q13", q13()),
        ("q14", q14()),
        ("q15", q15()),
        ("q16", q16()),
        ("q17", q17()),
        ("q18", q18()),
        ("q19", q19()),
        ("q20", q20()),
        ("q21", q21()),
        ("q22", q22()),
    ]
}

/// Builds the full TPC-H workload at a scale factor.
pub fn workload(scale: f64) -> Workload {
    let name = if (scale - 1.0).abs() < 1e-9 {
        "TPC-H 1GB".to_string()
    } else {
        format!("TPC-H {}GB", scale as u64)
    };
    Workload::from_sql(name, catalog(scale), &queries())
        .expect("TPC-H queries are in-dialect by construction")
}

fn q1() -> String {
    "select l_returnflag, l_linestatus, sum(l_quantity) as sum_qty, \
     sum(l_extendedprice) as sum_base_price, \
     sum(l_extendedprice * (1 - l_discount)) as sum_disc_price, \
     sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge, \
     avg(l_quantity) as avg_qty, avg(l_extendedprice) as avg_price, \
     avg(l_discount) as avg_disc, count(*) as count_order \
     from lineitem where l_shipdate <= date '1998-09-02' \
     group by l_returnflag, l_linestatus order by l_returnflag, l_linestatus"
        .into()
}

fn q2() -> String {
    "select s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, s_comment \
     from part, supplier, partsupp, nation, region \
     where p_partkey = ps_partkey and s_suppkey = ps_suppkey and p_size = 15 \
     and p_type like '%BRASS' and s_nationkey = n_nationkey and n_regionkey = r_regionkey \
     and r_name = 'EUROPE' and ps_supplycost = \
     (select min(ps_supplycost) from partsupp, supplier, nation, region \
      where s_suppkey = ps_suppkey and s_nationkey = n_nationkey \
      and n_regionkey = r_regionkey and r_name = 'EUROPE') \
     order by s_acctbal desc, n_name, s_name, p_partkey limit 100"
        .into()
}

fn q3() -> String {
    "select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue, \
     o_orderdate, o_shippriority from customer, orders, lineitem \
     where c_mktsegment = 'BUILDING' and c_custkey = o_custkey and l_orderkey = o_orderkey \
     and o_orderdate < date '1995-03-15' and l_shipdate > date '1995-03-15' \
     group by l_orderkey, o_orderdate, o_shippriority \
     order by revenue desc, o_orderdate limit 10"
        .into()
}

fn q4() -> String {
    "select o_orderpriority, count(*) as order_count from orders \
     where o_orderdate >= date '1993-07-01' and o_orderdate < date '1993-10-01' \
     and exists (select * from lineitem where l_orderkey = o_orderkey \
     and l_commitdate < l_receiptdate) \
     group by o_orderpriority order by o_orderpriority"
        .into()
}

fn q5() -> String {
    "select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue \
     from customer, orders, lineitem, supplier, nation, region \
     where c_custkey = o_custkey and l_orderkey = o_orderkey and l_suppkey = s_suppkey \
     and c_nationkey = s_nationkey and s_nationkey = n_nationkey \
     and n_regionkey = r_regionkey and r_name = 'ASIA' \
     and o_orderdate >= date '1994-01-01' and o_orderdate < date '1995-01-01' \
     group by n_name order by revenue desc"
        .into()
}

fn q6() -> String {
    "select sum(l_extendedprice * l_discount) as revenue from lineitem \
     where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01' \
     and l_discount between 0.05 and 0.07 and l_quantity < 24"
        .into()
}

fn q7() -> String {
    "select supp_nation, cust_nation, l_year, sum(volume) as revenue from \
     (select n_name as supp_nation, c_nationkey as cust_nation, \
      extract(year from l_shipdate) as l_year, \
      l_extendedprice * (1 - l_discount) as volume \
      from supplier, lineitem, orders, customer, nation \
      where s_suppkey = l_suppkey and o_orderkey = l_orderkey and c_custkey = o_custkey \
      and s_nationkey = n_nationkey \
      and n_name in ('FRANCE', 'GERMANY') \
      and l_shipdate between date '1995-01-01' and date '1996-12-31') as shipping \
     group by supp_nation, cust_nation, l_year \
     order by supp_nation, cust_nation, l_year"
        .into()
}

fn q8() -> String {
    "select o_year, sum(case when nation = 'BRAZIL' then volume else 0 end) as mkt_share \
     from (select extract(year from o_orderdate) as o_year, \
      l_extendedprice * (1 - l_discount) as volume, n_name as nation \
      from part, supplier, lineitem, orders, customer, nation, region \
      where p_partkey = l_partkey and s_suppkey = l_suppkey and l_orderkey = o_orderkey \
      and o_custkey = c_custkey and c_nationkey = n_nationkey \
      and n_regionkey = r_regionkey and r_name = 'AMERICA' \
      and o_orderdate between date '1995-01-01' and date '1996-12-31' \
      and p_type = 'ECONOMY ANODIZED STEEL') as all_nations \
     group by o_year order by o_year"
        .into()
}

fn q9() -> String {
    "select nation, o_year, sum(amount) as sum_profit from \
     (select n_name as nation, extract(year from o_orderdate) as o_year, \
      l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity as amount \
      from part, supplier, lineitem, partsupp, orders, nation \
      where s_suppkey = l_suppkey and ps_suppkey = l_suppkey and ps_partkey = l_partkey \
      and p_partkey = l_partkey and o_orderkey = l_orderkey and s_nationkey = n_nationkey \
      and p_name like '%green%') as profit \
     group by nation, o_year order by nation, o_year desc"
        .into()
}

fn q10() -> String {
    "select c_custkey, c_name, sum(l_extendedprice * (1 - l_discount)) as revenue, \
     c_acctbal, n_name, c_address, c_phone, c_comment \
     from customer, orders, lineitem, nation \
     where c_custkey = o_custkey and l_orderkey = o_orderkey \
     and o_orderdate >= date '1993-10-01' and o_orderdate < date '1994-01-01' \
     and l_returnflag = 'R' and c_nationkey = n_nationkey \
     group by c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment \
     order by revenue desc limit 20"
        .into()
}

fn q11() -> String {
    "select ps_partkey, sum(ps_supplycost * ps_availqty) as value \
     from partsupp, supplier, nation \
     where ps_suppkey = s_suppkey and s_nationkey = n_nationkey and n_name = 'GERMANY' \
     group by ps_partkey having sum(ps_supplycost * ps_availqty) > \
     (select sum(ps_supplycost * ps_availqty) * 0.0001 from partsupp, supplier, nation \
      where ps_suppkey = s_suppkey and s_nationkey = n_nationkey and n_name = 'GERMANY') \
     order by value desc"
        .into()
}

fn q12() -> String {
    "select l_shipmode, \
     sum(case when o_orderpriority = '1-URGENT' or o_orderpriority = '2-HIGH' \
     then 1 else 0 end) as high_line_count, \
     sum(case when o_orderpriority <> '1-URGENT' and o_orderpriority <> '2-HIGH' \
     then 1 else 0 end) as low_line_count \
     from orders, lineitem where o_orderkey = l_orderkey \
     and l_shipmode in ('MAIL', 'SHIP') and l_commitdate < l_receiptdate \
     and l_shipdate < l_commitdate and l_receiptdate >= date '1994-01-01' \
     and l_receiptdate < date '1995-01-01' \
     group by l_shipmode order by l_shipmode"
        .into()
}

fn q13() -> String {
    // Dialect adaptation: the official query left-joins customer to orders;
    // the inner-join variant preserves the join structure and grouping.
    "select c_count, count(*) as custdist from \
     (select c_custkey, count(o_orderkey) as c_count from customer, orders \
      where c_custkey = o_custkey and o_comment not like '%special%requests%' \
      group by c_custkey) as c_orders \
     group by c_count order by custdist desc, c_count desc"
        .into()
}

fn q14() -> String {
    "select sum(case when p_type like 'PROMO%' then l_extendedprice * (1 - l_discount) \
     else 0 end) * 100.0 / sum(l_extendedprice * (1 - l_discount)) as promo_revenue \
     from lineitem, part where l_partkey = p_partkey \
     and l_shipdate >= date '1995-09-01' and l_shipdate < date '1995-10-01'"
        .into()
}

fn q15() -> String {
    // Dialect adaptation: the official query joins supplier to a revenue
    // view; the flattened variant joins supplier to lineitem directly and
    // filters via HAVING, preserving the same base-table footprint.
    "select s_suppkey, s_name, s_address, s_phone, \
     sum(l_extendedprice * (1 - l_discount)) as total_revenue \
     from supplier, lineitem where s_suppkey = l_suppkey \
     and l_shipdate >= date '1996-01-01' and l_shipdate < date '1996-04-01' \
     group by s_suppkey, s_name, s_address, s_phone \
     having sum(l_extendedprice * (1 - l_discount)) > 1000000 \
     order by s_suppkey"
        .into()
}

fn q16() -> String {
    "select p_brand, p_type, p_size, count(distinct ps_suppkey) as supplier_cnt \
     from partsupp, part where p_partkey = ps_partkey and p_brand <> 'Brand#45' \
     and p_type not like 'MEDIUM POLISHED%' and p_size in (49, 14, 23, 45, 19, 3, 36, 9) \
     and ps_suppkey not in (select s_suppkey from supplier \
     where s_comment like '%Customer%Complaints%') \
     group by p_brand, p_type, p_size \
     order by supplier_cnt desc, p_brand, p_type, p_size"
        .into()
}

fn q17() -> String {
    "select sum(l_extendedprice) / 7.0 as avg_yearly from lineitem, part \
     where p_partkey = l_partkey and p_brand = 'Brand#23' and p_container = 'MED BOX' \
     and l_quantity < (select 0.2 * avg(l_quantity) from lineitem \
     where l_partkey = p_partkey)"
        .into()
}

fn q18() -> String {
    "select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, sum(l_quantity) \
     from customer, orders, lineitem where o_orderkey in \
     (select l_orderkey from lineitem group by l_orderkey having sum(l_quantity) > 300) \
     and c_custkey = o_custkey and o_orderkey = l_orderkey \
     group by c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice \
     order by o_totalprice desc, o_orderdate limit 100"
        .into()
}

fn q19() -> String {
    "select sum(l_extendedprice * (1 - l_discount)) as revenue from lineitem, part \
     where p_partkey = l_partkey and l_shipmode in ('AIR', 'AIR REG') \
     and l_shipinstruct = 'DELIVER IN PERSON' \
     and (p_brand = 'Brand#12' and p_container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG') \
     and l_quantity between 1 and 11 and p_size between 1 and 5 \
     or p_brand = 'Brand#23' and p_container in ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK') \
     and l_quantity between 10 and 20 and p_size between 1 and 10 \
     or p_brand = 'Brand#34' and p_container in ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG') \
     and l_quantity between 20 and 30 and p_size between 1 and 15)"
        .into()
}

fn q20() -> String {
    "select s_name, s_address from supplier, nation \
     where s_suppkey in (select ps_suppkey from partsupp where ps_partkey in \
     (select p_partkey from part where p_name like 'forest%') and ps_availqty > \
     (select 0.5 * sum(l_quantity) from lineitem where l_partkey = ps_partkey \
      and l_suppkey = ps_suppkey and l_shipdate >= date '1994-01-01' \
      and l_shipdate < date '1995-01-01')) \
     and s_nationkey = n_nationkey and n_name = 'CANADA' order by s_name"
        .into()
}

fn q21() -> String {
    // Dialect adaptation: the official query self-joins lineitem twice via
    // EXISTS/NOT EXISTS on other suppliers of the same order; the variant
    // keeps the supplier/lineitem/orders/nation join core and the
    // receipt-delay filter that drive its cost.
    "select s_name, count(*) as numwait from supplier, lineitem, orders, nation \
     where s_suppkey = l_suppkey and o_orderkey = l_orderkey and o_orderstatus = 'F' \
     and l_receiptdate > l_commitdate and s_nationkey = n_nationkey \
     and n_name = 'SAUDI ARABIA' \
     group by s_name order by numwait desc, s_name limit 100"
        .into()
}

fn q22() -> String {
    // Dialect adaptation: country-code `substring` tests become LIKE
    // prefixes on the same column.
    "select cntrycode, count(*) as numcust, sum(c_acctbal) as totacctbal from \
     (select c_phone as cntrycode, c_acctbal from customer \
      where (c_phone like '13%' or c_phone like '31%' or c_phone like '23%' \
      or c_phone like '29%' or c_phone like '30%' or c_phone like '18%' \
      or c_phone like '17%') and c_acctbal > \
      (select avg(c_acctbal) from customer where c_acctbal > 0.00) \
      and not exists (select * from orders where o_custkey = c_custkey)) as custsale \
     group by cntrycode order by cntrycode"
        .into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_sql::analysis::analyze;

    #[test]
    fn all_22_queries_parse() {
        for (label, sql) in queries() {
            assert!(
                lt_sql::parse_query(&sql).is_ok(),
                "TPC-H {label} failed to parse"
            );
        }
        assert_eq!(queries().len(), 22);
    }

    #[test]
    fn catalog_matches_spec_row_counts() {
        let c = catalog(1.0);
        let rows = |name: &str| c.table(c.table_by_name(name).unwrap()).rows;
        assert_eq!(rows("lineitem"), 6_001_215);
        assert_eq!(rows("orders"), 1_500_000);
        assert_eq!(rows("partsupp"), 800_000);
        assert_eq!(rows("part"), 200_000);
        assert_eq!(rows("customer"), 150_000);
        assert_eq!(rows("supplier"), 10_000);
        assert_eq!(rows("nation"), 25);
        assert_eq!(rows("region"), 5);
    }

    #[test]
    fn every_query_references_known_tables() {
        let c = catalog(1.0);
        for (label, sql) in queries() {
            let q = lt_sql::parse_query(&sql).unwrap();
            let a = analyze(&q);
            for t in &a.tables {
                assert!(
                    c.table_by_name(t).is_some(),
                    "TPC-H {label} references unknown table {t}"
                );
            }
        }
    }

    #[test]
    fn q5_has_the_expected_join_graph() {
        let q = lt_sql::parse_query(&q5()).unwrap();
        let a = analyze(&q);
        assert_eq!(a.tables.len(), 6);
        assert_eq!(
            a.unique_join_pairs().len(),
            6,
            "{:?}",
            a.unique_join_pairs()
        );
    }

    #[test]
    fn workload_size_is_about_1gb() {
        let w = workload(1.0);
        let gb = w.catalog.total_bytes() as f64 / (1u64 << 30) as f64;
        assert!(
            gb > 0.6 && gb < 1.6,
            "TPC-H SF1 should be ≈1GB, got {gb:.2}GB"
        );
    }
}
