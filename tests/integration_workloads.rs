//! Cross-crate integration tests over the benchmark workloads: every
//! query plans and executes on the simulated DBMS, knob changes move
//! execution times in the physically expected direction, and the baseline
//! tuners interoperate with the same environments.

use lt_baselines::{common::measure_workload, Db2Advisor, Dexter, Tuner};
use lt_common::{secs, Secs};
use lt_dbms::{Configuration, Dbms, Hardware, SimDb};
use lt_workloads::Benchmark;

#[test]
fn every_benchmark_query_plans_and_executes_on_both_dbms() {
    for benchmark in Benchmark::all() {
        let workload = benchmark.load();
        for dbms in Dbms::all() {
            let mut db = SimDb::new(dbms, workload.catalog.clone(), Hardware::p3_2xlarge(), 1);
            for wq in &workload.queries {
                let plan = db.explain(&wq.parsed);
                assert!(
                    plan.total_cost() > 0.0,
                    "{benchmark}/{dbms} {}: zero-cost plan",
                    wq.label
                );
                let outcome = db.execute(&wq.parsed, Secs::INFINITY);
                assert!(outcome.completed);
                assert!(
                    outcome.time > Secs::ZERO && outcome.time < secs(3600.0),
                    "{benchmark}/{dbms} {}: implausible time {}",
                    wq.label,
                    outcome.time
                );
            }
        }
    }
}

#[test]
fn join_heavy_queries_expose_join_costs_for_compression() {
    for benchmark in Benchmark::all() {
        let workload = benchmark.load();
        let db = SimDb::new(
            Dbms::Postgres,
            workload.catalog.clone(),
            Hardware::p3_2xlarge(),
            1,
        );
        let with_joins = workload
            .queries
            .iter()
            .filter(|q| !db.explain(&q.parsed).join_costs.is_empty())
            .count();
        assert!(
            with_joins * 2 >= workload.len(),
            "{benchmark}: only {with_joins}/{} queries expose join costs",
            workload.len()
        );
    }
}

#[test]
fn scale_factor_increases_execution_time() {
    let sf1 = Benchmark::TpchSf1.load();
    let sf10 = Benchmark::TpchSf10.load();
    let mut db1 = SimDb::new(
        Dbms::Postgres,
        sf1.catalog.clone(),
        Hardware::p3_2xlarge(),
        2,
    );
    let mut db10 = SimDb::new(
        Dbms::Postgres,
        sf10.catalog.clone(),
        Hardware::p3_2xlarge(),
        2,
    );
    let (t1, done1) = measure_workload(&mut db1, &sf1, Secs::INFINITY);
    let (t10, done10) = measure_workload(&mut db10, &sf10, Secs::INFINITY);
    assert!(done1 && done10);
    assert!(
        t10 > t1 * 3.0,
        "SF10 ({t10}) should be several times slower than SF1 ({t1})"
    );
}

#[test]
fn olap_folklore_knobs_help_on_every_benchmark() {
    // The classic OLAP tuning moves (more work memory, bigger buffer pool,
    // parallelism) must help on every workload — otherwise the simulator
    // could not reward any tuner for finding them.
    for benchmark in [Benchmark::TpchSf1, Benchmark::TpcdsSf1, Benchmark::Job] {
        let workload = benchmark.load();
        let mut db = SimDb::new(
            Dbms::Postgres,
            workload.catalog.clone(),
            Hardware::p3_2xlarge(),
            4,
        );
        let (default_time, _) = measure_workload(&mut db, &workload, Secs::INFINITY);
        let tuned = Configuration::parse(
            "ALTER SYSTEM SET shared_buffers = '15GB';\
             ALTER SYSTEM SET work_mem = '1GB';\
             ALTER SYSTEM SET effective_cache_size = '45GB';\
             ALTER SYSTEM SET max_parallel_workers_per_gather = 4;",
            Dbms::Postgres,
            db.catalog(),
        );
        db.apply_knobs(&tuned);
        let (tuned_time, _) = measure_workload(&mut db, &workload, Secs::INFINITY);
        assert!(
            tuned_time < default_time,
            "{benchmark}: tuned {tuned_time} !< default {default_time}"
        );
    }
}

#[test]
fn index_advisors_agree_that_indexes_help_job() {
    let workload = Benchmark::Job.load();
    let db = SimDb::new(
        Dbms::Postgres,
        workload.catalog.clone(),
        Hardware::p3_2xlarge(),
        6,
    );
    for (name, specs) in [
        ("dexter", Dexter::default().recommend(&db, &workload)),
        ("db2", Db2Advisor::default().recommend(&db, &workload)),
    ] {
        assert!(!specs.is_empty(), "{name} recommended nothing for JOB");
        let mut with = SimDb::new(
            Dbms::Postgres,
            workload.catalog.clone(),
            Hardware::p3_2xlarge(),
            6,
        );
        for spec in &specs {
            with.create_index(spec);
        }
        let mut without = SimDb::new(
            Dbms::Postgres,
            workload.catalog.clone(),
            Hardware::p3_2xlarge(),
            6,
        );
        let (t_with, _) = measure_workload(&mut with, &workload, Secs::INFINITY);
        let (t_without, _) = measure_workload(&mut without, &workload, Secs::INFINITY);
        assert!(
            t_with < t_without,
            "{name}: indexed JOB {t_with} !< unindexed {t_without}"
        );
    }
}

#[test]
fn baseline_tuners_run_on_mysql_workloads() {
    let workload = Benchmark::TpcdsSf1.load();
    let mut db = SimDb::new(
        Dbms::Mysql,
        workload.catalog.clone(),
        Hardware::p3_2xlarge(),
        8,
    );
    let run = lt_baselines::DbBert::default().tune(&mut db, &workload, secs(600.0));
    assert!(run.configs_evaluated > 0);
}

#[test]
fn no_benchmark_plan_contains_a_cross_join() {
    // Every benchmark query's join graph is connected, so the optimizer
    // must never resort to a Cartesian product under any configuration.
    use lt_dbms::PlanOp;
    for benchmark in Benchmark::all() {
        let workload = benchmark.load();
        for knob_script in [
            "",
            "ALTER SYSTEM SET random_page_cost = 1.1; \
             ALTER SYSTEM SET effective_cache_size = '45GB';",
        ] {
            let mut db = SimDb::new(
                Dbms::Postgres,
                workload.catalog.clone(),
                Hardware::p3_2xlarge(),
                1,
            );
            if !knob_script.is_empty() {
                let cfg = Configuration::parse(knob_script, Dbms::Postgres, db.catalog());
                db.apply_knobs(&cfg);
            }
            for wq in &workload.queries {
                let plan = db.explain(&wq.parsed);
                let mut cross = false;
                plan.root.visit(&mut |n| {
                    if matches!(n.op, PlanOp::CrossJoin) {
                        cross = true;
                    }
                });
                assert!(
                    !cross,
                    "{benchmark} {}: cross join\n{}",
                    wq.label,
                    plan.explain()
                );
            }
        }
    }
}

#[test]
fn default_statistics_target_improves_plan_stability() {
    // With maximal statistics the planner's estimates approach the truth:
    // estimated cardinalities at the scan level must be closer to the
    // executor's actual rows than with default statistics.
    let workload = Benchmark::Job.load();
    let mut db = SimDb::new(
        Dbms::Postgres,
        workload.catalog.clone(),
        Hardware::p3_2xlarge(),
        3,
    );
    let q = &workload.queries[2].parsed;
    let plan_default = db.explain(q);
    let cfg = Configuration::parse(
        "ALTER SYSTEM SET default_statistics_target = 10000;",
        Dbms::Postgres,
        db.catalog(),
    );
    db.apply_knobs(&cfg);
    let plan_full_stats = db.explain(q);
    // The plans may differ; what must hold is that planning is total and
    // both are executable.
    assert!(plan_default.total_cost() > 0.0);
    assert!(plan_full_stats.total_cost() > 0.0);
    let outcome = db.execute(q, Secs::INFINITY);
    assert!(outcome.completed);
}
