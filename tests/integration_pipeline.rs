//! End-to-end integration tests: the full λ-Tune pipeline against every
//! benchmark workload and both simulated DBMS flavours.

use lambda_tune::{LambdaTune, LambdaTuneOptions};
use lt_common::Secs;
use lt_dbms::{Dbms, Hardware, SimDb};
use lt_llm::{LlmClient, SimulatedLlm};
use lt_workloads::{Benchmark, Workload};

fn default_workload_time(workload: &Workload, dbms: Dbms, seed: u64) -> Secs {
    let mut db = SimDb::new(dbms, workload.catalog.clone(), Hardware::p3_2xlarge(), seed);
    let mut total = Secs::ZERO;
    for q in &workload.queries {
        total += db.execute(&q.parsed, Secs::INFINITY).time;
    }
    total
}

fn tune(workload: &Workload, dbms: Dbms, seed: u64) -> lambda_tune::TuneResult {
    let mut db = SimDb::new(dbms, workload.catalog.clone(), Hardware::p3_2xlarge(), seed);
    let llm = LlmClient::new(SimulatedLlm::new());
    LambdaTune::new(LambdaTuneOptions {
        seed,
        ..Default::default()
    })
    .tune(&mut db, workload, &llm)
    .expect("pipeline never errors on benchmark workloads")
}

#[test]
fn lambda_tune_beats_defaults_on_every_benchmark_postgres() {
    for benchmark in Benchmark::all() {
        if benchmark == Benchmark::TpchSf10 {
            continue; // covered by the MySQL test below; keep runtime down
        }
        let workload = benchmark.load();
        let default = default_workload_time(&workload, Dbms::Postgres, 3);
        let result = tune(&workload, Dbms::Postgres, 3);
        let best = result.best_time;
        assert!(
            best < default,
            "{benchmark}: λ-Tune {best} should beat default {default}"
        );
        assert!(result.best_config.is_some());
        assert_eq!(result.configs.len(), 5);
    }
}

#[test]
fn lambda_tune_beats_defaults_on_mysql() {
    for benchmark in [Benchmark::TpchSf1, Benchmark::TpchSf10] {
        let workload = benchmark.load();
        let default = default_workload_time(&workload, Dbms::Mysql, 5);
        let result = tune(&workload, Dbms::Mysql, 5);
        assert!(
            result.best_time < default,
            "{benchmark}/MySQL: {} !< {default}",
            result.best_time
        );
        // MySQL configurations must only use MySQL knobs (parse-validated).
        for config in &result.configs {
            for (name, _) in config.knob_changes() {
                assert!(
                    lt_dbms::knobs::knob_def(Dbms::Mysql, name).is_some(),
                    "knob {name} is not a MySQL knob"
                );
            }
        }
    }
}

#[test]
fn tuning_is_reproducible_for_a_seed() {
    let workload = Benchmark::TpcdsSf1.load();
    let a = tune(&workload, Dbms::Postgres, 11);
    let b = tune(&workload, Dbms::Postgres, 11);
    assert_eq!(a.best_time, b.best_time);
    assert_eq!(a.best_index, b.best_index);
    assert_eq!(a.tuning_time, b.tuning_time);
    assert_eq!(a.llm_usage, b.llm_usage);
}

#[test]
fn different_seeds_change_sampled_configurations() {
    let workload = Benchmark::TpchSf1.load();
    let a = tune(&workload, Dbms::Postgres, 1);
    let b = tune(&workload, Dbms::Postgres, 2);
    let fingerprints = |r: &lambda_tune::TuneResult| -> Vec<u64> {
        r.configs.iter().map(|c| c.fingerprint()).collect()
    };
    assert_ne!(fingerprints(&a), fingerprints(&b));
}

#[test]
fn monetary_fees_scale_with_token_budget() {
    let workload = Benchmark::Job.load();
    let run_with_budget = |budget: usize| {
        let mut db = SimDb::new(
            Dbms::Postgres,
            workload.catalog.clone(),
            Hardware::p3_2xlarge(),
            7,
        );
        let llm = LlmClient::new(SimulatedLlm::new());
        LambdaTune::new(LambdaTuneOptions {
            token_budget: Some(budget),
            seed: 7,
            ..Default::default()
        })
        .tune(&mut db, &workload, &llm)
        .unwrap()
        .llm_usage
    };
    let small = run_with_budget(64);
    let large = run_with_budget(2000);
    assert!(small.prompt_tokens < large.prompt_tokens);
    assert!(small.cost_usd() < large.cost_usd());
}

#[test]
fn winning_config_applies_cleanly_to_a_fresh_instance() {
    let workload = Benchmark::TpchSf1.load();
    let result = tune(&workload, Dbms::Postgres, 13);
    let best = result.best_config.unwrap();
    let mut fresh = SimDb::new(
        Dbms::Postgres,
        workload.catalog.clone(),
        Hardware::p3_2xlarge(),
        13,
    );
    fresh.apply_knobs(&best);
    for spec in best.index_specs() {
        fresh.create_index(spec);
    }
    // Re-measured time is close to the selector's measurement (execution
    // noise aside).
    let mut total = Secs::ZERO;
    for q in &workload.queries {
        let outcome = fresh.execute(&q.parsed, Secs::INFINITY);
        assert!(outcome.completed);
        total += outcome.time;
    }
    let ratio = total / result.best_time;
    assert!(
        (0.7..1.3).contains(&ratio),
        "re-measured {total} vs selected {}",
        result.best_time
    );
}
