//! Integration tests for the paper's formal guarantees:
//!
//! * Theorem 4.3 — the selector's total query-evaluation time is
//!   O(k·α·C_best) for α ≥ 2,
//! * Theorem 5.2/5.3 — the DP query order is optimal under the expected
//!   index-cost model (checked against brute force),
//! * the compressor's ILP never loses to greedy selection and never
//!   exceeds its budget.

use lambda_tune::{
    expected_index_cost, find_optimal_order, ConfigSelector, Evaluator, SelectorOptions,
};
use lt_common::{secs, seeded_rng, Secs};
use lt_dbms::{Configuration, Dbms, Hardware, SimDb};
use lt_workloads::Benchmark;

fn db_for(benchmark: Benchmark, seed: u64) -> (SimDb, lt_workloads::Workload) {
    let w = benchmark.load();
    let db = SimDb::new(
        Dbms::Postgres,
        w.catalog.clone(),
        Hardware::p3_2xlarge(),
        seed,
    );
    (db, w)
}

/// Theorem 4.3 across benchmarks and α values: even with deliberately bad
/// configurations in the candidate set, total selector time stays within
/// the geometric bound (plus reconfiguration overheads, which the theorem
/// excludes).
#[test]
fn selector_time_is_bounded_by_k_alpha_c_best() {
    for (benchmark, alpha) in [(Benchmark::TpchSf1, 2.0), (Benchmark::TpcdsSf1, 4.0)] {
        let (mut db, workload) = db_for(benchmark, 17);
        let bad = Configuration::parse(
            "ALTER SYSTEM SET work_mem = '64kB';\
             ALTER SYSTEM SET shared_buffers = '128MB';\
             ALTER SYSTEM SET max_parallel_workers_per_gather = 0;",
            Dbms::Postgres,
            db.catalog(),
        );
        let good = Configuration::parse(
            "ALTER SYSTEM SET work_mem = '1GB';\
             ALTER SYSTEM SET shared_buffers = '15GB';\
             ALTER SYSTEM SET effective_cache_size = '45GB';\
             ALTER SYSTEM SET max_parallel_workers_per_gather = 4;",
            Dbms::Postgres,
            db.catalog(),
        );
        let configs = vec![bad.clone(), bad.clone(), good, bad];
        let options = SelectorOptions {
            alpha,
            ..Default::default()
        };
        let start = db.now();
        let result =
            ConfigSelector::new(options, Evaluator::default()).select(&mut db, &workload, &configs);
        let total = db.now() - start;
        let c_best = result.best_time;
        assert!(c_best.is_finite(), "{benchmark}: a configuration must win");
        let k = configs.len() as f64;
        let reconfig: Secs = result.metas.iter().map(|m| m.index_time).sum();
        // Last round ≤ k·α·C_best; prior rounds sum to ≤ the last round
        // (geometric, α ≥ 2); final pass ≤ k·C_best. Slack for the
        // per-round reconfigure/restart costs.
        let bound = c_best * (2.0 * k * alpha + k + 2.0) + reconfig + secs(120.0);
        assert!(
            total <= bound,
            "{benchmark} α={alpha}: selector took {total}, bound {bound} (C_best {c_best})"
        );
    }
}

/// The selector's winner is never worse than any fully-evaluated
/// candidate (it returns the measured optimum among completed configs).
#[test]
fn selector_returns_the_measured_optimum() {
    let (mut db, workload) = db_for(Benchmark::TpchSf1, 19);
    let scripts = [
        "ALTER SYSTEM SET work_mem = '64MB';",
        "ALTER SYSTEM SET work_mem = '1GB'; ALTER SYSTEM SET shared_buffers = '15GB';",
        "ALTER SYSTEM SET max_parallel_workers_per_gather = 4;",
    ];
    let configs: Vec<Configuration> = scripts
        .iter()
        .map(|s| Configuration::parse(s, Dbms::Postgres, db.catalog()))
        .collect();
    let result = ConfigSelector::default().select(&mut db, &workload, &configs);
    let best = result.best.expect("some config completes");
    for (i, meta) in result.metas.iter().enumerate() {
        if meta.is_complete && meta.completed.len() == workload.len() {
            assert!(
                result.metas[best].time <= meta.time,
                "config {i} measured faster than the returned winner"
            );
        }
    }
}

/// Theorems 5.2/5.3: the DP order matches exhaustive search over random
/// instances (randomized property check with a fixed seed).
#[test]
fn dp_order_is_optimal_on_random_instances() {
    let mut rng = seeded_rng(23);
    for _ in 0..50 {
        let n_items = rng.gen_range(1..=7usize);
        let n_slots = rng.gen_range(1..=5usize);
        let items: Vec<Vec<usize>> = (0..n_items)
            .map(|_| {
                let k = rng.gen_range(0..=n_slots);
                (0..k).map(|_| rng.gen_range(0..n_slots)).collect()
            })
            .collect();
        let costs: Vec<f64> = (0..n_slots).map(|_| rng.gen_range(0.1..20.0)).collect();

        let order = find_optimal_order(&items, &costs);
        let dp_cost = expected_index_cost(&order, &items, &costs);

        // Brute force.
        let mut best = f64::INFINITY;
        let mut perm: Vec<usize> = (0..n_items).collect();
        permute(&mut perm, 0, &mut |p| {
            let c = expected_index_cost(p, &items, &costs);
            if c < best {
                best = c;
            }
        });
        assert!(
            (dp_cost - best).abs() < 1e-9,
            "items={items:?} costs={costs:?}: dp {dp_cost} vs brute {best}"
        );
    }
}

fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

/// The evaluator never re-executes completed queries across selector
/// rounds (paper §4 "Avoiding Redundancy").
#[test]
fn selector_avoids_redundant_executions() {
    let (mut db, workload) = db_for(Benchmark::TpcdsSf1, 29);
    let configs: Vec<Configuration> = (0..3)
        .map(|i| {
            Configuration::parse(
                &format!("ALTER SYSTEM SET work_mem = '{}MB';", 128 << i),
                Dbms::Postgres,
                db.catalog(),
            )
        })
        .collect();
    let result = ConfigSelector::default().select(&mut db, &workload, &configs);
    let completed: u64 = result.metas.iter().map(|m| m.completed.len() as u64).sum();
    let interrupted_allowance = (result.rounds as u64 + 1) * configs.len() as u64;
    assert!(
        db.queries_executed() <= completed + interrupted_allowance,
        "{} executions for {completed} completions in {} rounds",
        db.queries_executed(),
        result.rounds
    );
}
