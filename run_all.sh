#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation (§6).
# Results are printed and also written as JSON under results/.
#
#   LT_TRIALS=3 ./run_all.sh     # paper's trial count (slow)
#   LT_TRIALS=1 ./run_all.sh     # quick pass
set -euo pipefail
cd "$(dirname "$0")"

export LT_TRIALS="${LT_TRIALS:-3}"
export LT_SEED="${LT_SEED:-42}"

cargo build --release -p lt-bench

for target in table3 table4 table5 fig3 fig4 fig5 fig6 fig7 fig8; do
    echo "================================================================"
    echo "== $target"
    echo "================================================================"
    cargo run --release -p lt-bench --bin "$target"
    echo
done

echo "JSON results written to results/"
