#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation (§6).
# Results are printed and also written as JSON under results/.
#
#   LT_TRIALS=3 ./run_all.sh     # paper's trial count (slow)
#   LT_TRIALS=1 ./run_all.sh     # quick pass
#   LT_SMOKE=1 ./run_all.sh      # CI smoke: fig6 + table4 only, one trial
#   LT_TRACE=1 ./run_all.sh      # also write results/<bin>.trace.json
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${LT_SMOKE:-0}" == "1" ]]; then
    export LT_TRIALS="${LT_TRIALS:-1}"
    targets=(fig6 table4)
else
    export LT_TRIALS="${LT_TRIALS:-3}"
    targets=(table3 table4 table5 fig3 fig4 fig5 fig6 fig7 fig8)
fi
export LT_SEED="${LT_SEED:-42}"

cargo build --release -p lt-bench

for target in "${targets[@]}"; do
    echo "================================================================"
    echo "== $target"
    echo "================================================================"
    cargo run --release -p lt-bench --bin "$target"
    echo
done

echo "JSON results written to results/"
